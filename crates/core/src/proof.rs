//! Proof-carrying repair (§6 hardened): evidence artifacts minted per
//! [`RepairPlan`] and re-validated before commit.
//!
//! The paper's repair loop reverts a root cause but ships no evidence
//! that the revert is correct. [`RepairProof`] is that evidence:
//!
//! * the **HBG provenance path** from the root-cause leaf down to the
//!   problematic FIB event, each hop carrying a content digest of the
//!   captured event it names;
//! * a **hash chain** over those digests ([`cpvr_types::hash::chain`]),
//!   so flipping any byte of any hop — or reordering hops — breaks
//!   every downstream link and the gate returns ERROR, never Applied;
//! * the **predicted post-repair EC behaviors**: the behavior-class
//!   map (the §6 "<15 classes at 100K prefixes" notion that
//!   [`crate::predict`] learns templates over) of the shadow state
//!   after the repair, plus the root cause's FIB-consequence template
//!   from [`crate::predict::fib_template`];
//! * a **deterministic replay transcript** derived from the (time,id)
//!   fold: undo steps that revert the root cause's FIB consequences
//!   and redo steps that reproduce them, with the base violations and
//!   a FIB footprint digest pinning the state the transcript was
//!   minted against.
//!
//! [`gate_repair`] re-validates all of it against the resident
//! verifier's shadow state and returns the
//! REPRODUCED/DIVERGED/ERROR verdict the control loop blocks on. The
//! whole artifact round-trips through `cpvr_types::json`
//! (externally-tagged, human-auditable) and through the v3-style
//! binary codec ([`RepairProof::encode_binary`]) that the collector
//! journals and federation peers exchange.

use std::collections::{BTreeMap, BTreeSet};

use crate::hbg::Hbg;
use crate::predict::fib_template;
use crate::provenance::provenance_path;
use crate::repair::RepairPlan;
use cpvr_dataplane::{FibAction, FibUpdate, UpdateKind};
use cpvr_sim::{EventId, IoKind, Trace};
use cpvr_types::hash;
use cpvr_types::json::{self, FromJson};
use cpvr_types::{varint, Ipv4Prefix, RouterId, SimTime};
use cpvr_verify::{
    violation_sigs, IncrementalVerifier, ReplayGate, ReplayTranscript, ReplayVerdict,
};

/// One hop of the provenance path, with a content digest of the
/// captured event it names (FNV-1a over the event's canonical JSON).
#[derive(Clone, Debug, PartialEq)]
pub struct ProvenanceHop {
    /// The event at this hop.
    pub event: EventId,
    /// Where it happened.
    pub router: RouterId,
    /// When it happened.
    pub time: SimTime,
    /// FNV-1a 64 digest of the event's canonical compact JSON.
    pub digest: u64,
}

/// One predicted post-repair behavior class: the per-router forwarding
/// behavior signature and the prefixes it covers.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictedBehavior {
    /// The behavior signature (one rendered action per router).
    pub behavior: Vec<String>,
    /// Prefixes forwarded with this behavior.
    pub prefixes: Vec<Ipv4Prefix>,
}

/// The evidence artifact minted for one repair plan.
#[derive(Clone, Debug, PartialEq)]
pub struct RepairProof {
    /// The plan this proof justifies.
    pub plan: RepairPlan,
    /// The problematic FIB event the provenance walk started from.
    pub target: EventId,
    /// The confidence threshold the provenance was walked at.
    pub min_confidence: f64,
    /// The widest provenance path, root-cause leaf first, target last.
    pub provenance: Vec<ProvenanceHop>,
    /// Running hash chain over the hop digests: `chain[i]` commits to
    /// hops `0..=i` in order.
    pub chain: Vec<u64>,
    /// Predicted post-repair behavior classes (shadow state after the
    /// undo steps).
    pub predicted: Vec<PredictedBehavior>,
    /// The root cause's FIB-consequence template from
    /// [`crate::predict::fib_template`] — the final action per router
    /// among the consequences the repair reverts.
    pub template: Vec<(RouterId, Option<FibAction>)>,
    /// The deterministic replay transcript the gate re-executes.
    pub transcript: ReplayTranscript,
}

/// Recomputes the hash chain committed to by `hops`, in order.
pub fn chain_over(hops: &[ProvenanceHop]) -> Vec<u64> {
    let mut out = Vec::with_capacity(hops.len());
    let mut link = hash::FNV_OFFSET;
    for h in hops {
        link = hash::chain(link, h.digest);
        out.push(link);
    }
    out
}

impl RepairProof {
    /// The chain tip — the single digest that commits to the whole
    /// provenance path. Zero for an empty path.
    pub fn chain_tip(&self) -> u64 {
        self.chain.last().copied().unwrap_or(0)
    }

    /// A stable identifier for this proof: the FNV-1a digest of its
    /// binary encoding. Journal records for every lifecycle stage of
    /// one repair carry the same id.
    pub fn repair_id(&self) -> u64 {
        cpvr_types::fnv1a64(&self.encode_binary())
    }
}

/// Mints the proof for `plan` against the live verifier state.
///
/// `trace` and `hbg` must be the capture and graph the plan's root
/// cause was walked from; `target` is the problematic FIB event;
/// `verifier` is the resident verifier whose state the transcript's
/// base digest pins. The transcript is derived purely from the
/// (time,id)-ordered FIB events of the trace, so minting is
/// deterministic: the same inputs always produce the same proof bytes.
pub fn prove(
    trace: &Trace,
    hbg: &Hbg,
    verifier: &IncrementalVerifier,
    plan: &RepairPlan,
    target: EventId,
    min_confidence: f64,
) -> RepairProof {
    let horizon = trace
        .events
        .get(target.index())
        .map(|e| e.time)
        .unwrap_or(SimTime::MAX);
    // Provenance path + per-hop content digests + chain.
    let path = provenance_path(hbg, plan.root.event, target, min_confidence);
    let provenance: Vec<ProvenanceHop> = path
        .iter()
        .filter_map(|id| trace.events.get(id.index()))
        .map(|e| ProvenanceHop {
            event: e.id,
            router: e.router,
            time: e.time,
            digest: cpvr_types::fnv1a64(json::to_string_compact(e).as_bytes()),
        })
        .collect();
    let chain = chain_over(&provenance);

    // The FIB consequences of the root cause, in (time,id) fold order,
    // plus the pre-consequence state of every touched (router, prefix)
    // pair — reconstructed by walking the whole captured FIB stream so
    // the removal steps know which action they removed.
    let consequences: BTreeSet<EventId> = std::iter::once(plan.root.event)
        .chain(hbg.descendants(plan.root.event, min_confidence))
        .collect();
    let mut fib_events: Vec<_> = trace
        .events
        .iter()
        .filter(|e| {
            e.time <= horizon
                && matches!(e.kind, IoKind::FibInstall { .. } | IoKind::FibRemove { .. })
        })
        .collect();
    fib_events.sort_by_key(|e| (e.time, e.id));
    let mut state: BTreeMap<(RouterId, Ipv4Prefix), (FibAction, SimTime)> = BTreeMap::new();
    let mut pre: BTreeMap<(RouterId, Ipv4Prefix), Option<(FibAction, SimTime)>> = BTreeMap::new();
    let mut redo: Vec<FibUpdate> = Vec::new();
    for e in fib_events {
        let (prefix, install_action) = match &e.kind {
            IoKind::FibInstall { prefix, action } => (*prefix, Some(*action)),
            IoKind::FibRemove { prefix } => (*prefix, None),
            _ => unreachable!("filtered to FIB events"),
        };
        let key = (e.router, prefix);
        if consequences.contains(&e.id) {
            pre.entry(key).or_insert_with(|| state.get(&key).copied());
            redo.push(match install_action {
                Some(action) => FibUpdate {
                    router: e.router,
                    prefix,
                    kind: UpdateKind::Install,
                    action,
                    at: e.time,
                },
                None => FibUpdate {
                    router: e.router,
                    prefix,
                    kind: UpdateKind::Remove,
                    // The removed action, when the stream recorded one;
                    // removing an absent entry is a no-op either way.
                    action: state.get(&key).map(|(a, _)| *a).unwrap_or(FibAction::Drop),
                    at: e.time,
                },
            });
        }
        match install_action {
            Some(action) => {
                state.insert(key, (action, e.time));
            }
            None => {
                state.remove(&key);
            }
        }
    }
    // Undo: restore every touched pair to its pre-consequence state, in
    // deterministic pair order.
    let undo: Vec<FibUpdate> = pre
        .iter()
        .map(|(&(router, prefix), prior)| match prior {
            Some((action, at)) => FibUpdate {
                router,
                prefix,
                kind: UpdateKind::Install,
                action: *action,
                at: *at,
            },
            None => FibUpdate {
                router,
                prefix,
                kind: UpdateKind::Remove,
                action: state
                    .get(&(router, prefix))
                    .map(|(a, _)| *a)
                    .unwrap_or(FibAction::Drop),
                at: horizon,
            },
        })
        .collect();

    let transcript = ReplayTranscript {
        base_violations: violation_sigs(&verifier.report().violations),
        base_digest: 0,
        undo,
        redo,
    };
    let transcript = ReplayTranscript {
        base_digest: transcript.digest_on(verifier.dataplane()),
        ..transcript
    };

    // Predicted post-repair EC behaviors: the behavior-class map of the
    // shadow state after the undo steps.
    let mut shadow = verifier.clone();
    for u in &transcript.undo {
        shadow.apply(u);
    }
    let predicted = behaviors_of(&mut shadow);

    RepairProof {
        plan: plan.clone(),
        target,
        min_confidence,
        provenance,
        chain,
        predicted,
        template: fib_template_of(trace, hbg, plan.root.event, horizon, min_confidence),
        transcript,
    }
}

/// The behavior-class map of `v`, in canonical (sorted) order.
fn behaviors_of(v: &mut IncrementalVerifier) -> Vec<PredictedBehavior> {
    v.behavior_classes()
        .into_iter()
        .map(|(behavior, prefixes)| PredictedBehavior { behavior, prefixes })
        .collect()
}

/// [`fib_template`] keyed by event id, tolerating ids outside the
/// trace (yields an empty template rather than panicking).
fn fib_template_of(
    trace: &Trace,
    hbg: &Hbg,
    root: EventId,
    horizon: SimTime,
    min_conf: f64,
) -> Vec<(RouterId, Option<FibAction>)> {
    match trace.events.get(root.index()) {
        Some(e) => fib_template(trace, hbg, e, horizon, min_conf),
        None => Vec::new(),
    }
}

/// Re-validates `proof` against the resident verifier and returns the
/// verdict the control loop blocks on.
///
/// Checks, in order: the hash chain over the provenance hops (any
/// tampering — a flipped byte in a digest, a reordered or dropped hop,
/// an edited chain link — is ERROR: the evidence is structurally
/// unsound and nothing is replayed); then the deterministic replay via
/// [`ReplayGate`] on a shadow clone; then, for a reproduced replay,
/// the predicted post-repair behavior classes against a fresh shadow.
/// Only REPRODUCED may commit; the shadow is discarded on every path,
/// which *is* the rollback of the tentative apply.
pub fn gate_repair(verifier: &IncrementalVerifier, proof: &RepairProof) -> ReplayVerdict {
    if proof.provenance.is_empty() {
        return ReplayVerdict::Error("empty provenance path: no evidence to validate".into());
    }
    if chain_over(&proof.provenance) != proof.chain {
        return ReplayVerdict::Error(
            "hash chain does not match the provenance hops: evidence tampered or corrupted".into(),
        );
    }
    // A provenance *path* never revisits an event — a self-loop or
    // cycle means the walk was forged, even if the chain was recomputed
    // over the looped hops and is internally consistent.
    let mut seen = BTreeSet::new();
    for h in &proof.provenance {
        if !seen.insert(h.event) {
            return ReplayVerdict::Error(format!(
                "provenance path revisits event {}: self-loop or cycle in the evidence",
                h.event.0
            ));
        }
    }
    let verdict = ReplayGate::execute(verifier, &proof.transcript);
    if !verdict.is_reproduced() {
        return verdict;
    }
    // The replay reproduced; the predicted post-repair behaviors must
    // match what the repair would actually produce.
    let mut shadow = verifier.clone();
    for u in &proof.transcript.undo {
        shadow.apply(u);
    }
    if behaviors_of(&mut shadow) != proof.predicted {
        return ReplayVerdict::Diverged(
            "predicted post-repair behavior classes differ from the shadow replay".into(),
        );
    }
    ReplayVerdict::Reproduced
}

// ---------------------------------------------------------------------
// Binary codec (v3 wire style: varints + length-prefixed bytes).
// ---------------------------------------------------------------------

/// Version byte heading every binary-encoded proof — matches the v3
/// binary wire generation it ships in.
pub const PROOF_CODEC_VERSION: u8 = 3;

fn write_str(out: &mut Vec<u8>, s: &str) {
    varint::write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(buf: &[u8], pos: &mut usize) -> Result<String, String> {
    let len = varint::read_u64(buf, pos).ok_or("truncated string length")? as usize;
    let end = pos.checked_add(len).filter(|&e| e <= buf.len());
    let end = end.ok_or("string length overruns buffer")?;
    let s = std::str::from_utf8(&buf[*pos..end]).map_err(|_| "invalid utf-8".to_string())?;
    *pos = end;
    Ok(s.to_string())
}

fn write_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u64_le(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let end = pos.checked_add(8).filter(|&e| e <= buf.len());
    let end = end.ok_or("truncated u64")?;
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(b))
}

fn write_prefix(out: &mut Vec<u8>, p: &Ipv4Prefix) {
    varint::write_u32(out, p.bits());
    out.push(p.len());
}

fn read_prefix(buf: &[u8], pos: &mut usize) -> Result<Ipv4Prefix, String> {
    let bits = varint::read_u32(buf, pos).ok_or("truncated prefix bits")?;
    let len = *buf.get(*pos).ok_or("truncated prefix length")?;
    *pos += 1;
    if len > 32 {
        return Err(format!("prefix length {len} out of range"));
    }
    Ok(Ipv4Prefix::from_bits(bits, len))
}

fn write_action(out: &mut Vec<u8>, a: &FibAction) {
    match a {
        FibAction::Forward(l) => {
            out.push(0);
            varint::write_u32(out, l.0);
        }
        FibAction::Exit(p) => {
            out.push(1);
            varint::write_u32(out, p.0);
        }
        FibAction::Local => out.push(2),
        FibAction::Drop => out.push(3),
    }
}

fn read_action(buf: &[u8], pos: &mut usize) -> Result<FibAction, String> {
    let tag = *buf.get(*pos).ok_or("truncated action tag")?;
    *pos += 1;
    Ok(match tag {
        0 => FibAction::Forward(cpvr_topo::LinkId(
            varint::read_u32(buf, pos).ok_or("truncated link id")?,
        )),
        1 => FibAction::Exit(cpvr_topo::ExtPeerId(
            varint::read_u32(buf, pos).ok_or("truncated peer id")?,
        )),
        2 => FibAction::Local,
        3 => FibAction::Drop,
        t => return Err(format!("unknown action tag {t}")),
    })
}

fn write_update(out: &mut Vec<u8>, u: &FibUpdate) {
    varint::write_u32(out, u.router.0);
    write_prefix(out, &u.prefix);
    out.push(match u.kind {
        UpdateKind::Install => 0,
        UpdateKind::Remove => 1,
    });
    write_action(out, &u.action);
    varint::write_u64(out, u.at.as_nanos());
}

fn read_update(buf: &[u8], pos: &mut usize) -> Result<FibUpdate, String> {
    let router = RouterId(varint::read_u32(buf, pos).ok_or("truncated router id")?);
    let prefix = read_prefix(buf, pos)?;
    let kind = match *buf.get(*pos).ok_or("truncated update kind")? {
        0 => UpdateKind::Install,
        1 => UpdateKind::Remove,
        k => return Err(format!("unknown update kind {k}")),
    };
    *pos += 1;
    let action = read_action(buf, pos)?;
    let at = SimTime::from_nanos(varint::read_u64(buf, pos).ok_or("truncated update time")?);
    Ok(FibUpdate {
        router,
        prefix,
        kind,
        action,
        at,
    })
}

impl RepairProof {
    /// Encodes the proof in the v3 binary wire style: a version byte,
    /// then varint-framed fields with fixed 8-byte digests. The plan
    /// (which carries the arbitrarily-structured config change) rides
    /// as length-prefixed canonical JSON — the same layering the wire
    /// codec uses for structured payloads inside binary envelopes.
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut out = vec![PROOF_CODEC_VERSION];
        write_str(&mut out, &json::to_string_compact(&self.plan));
        varint::write_u32(&mut out, self.target.0);
        write_u64_le(&mut out, self.min_confidence.to_bits());
        varint::write_u64(&mut out, self.provenance.len() as u64);
        for h in &self.provenance {
            varint::write_u32(&mut out, h.event.0);
            varint::write_u32(&mut out, h.router.0);
            varint::write_u64(&mut out, h.time.as_nanos());
            write_u64_le(&mut out, h.digest);
        }
        varint::write_u64(&mut out, self.chain.len() as u64);
        for link in &self.chain {
            write_u64_le(&mut out, *link);
        }
        varint::write_u64(&mut out, self.predicted.len() as u64);
        for b in &self.predicted {
            varint::write_u64(&mut out, b.behavior.len() as u64);
            for s in &b.behavior {
                write_str(&mut out, s);
            }
            varint::write_u64(&mut out, b.prefixes.len() as u64);
            for p in &b.prefixes {
                write_prefix(&mut out, p);
            }
        }
        varint::write_u64(&mut out, self.template.len() as u64);
        for (r, act) in &self.template {
            varint::write_u32(&mut out, r.0);
            match act {
                Some(a) => {
                    out.push(1);
                    write_action(&mut out, a);
                }
                None => out.push(0),
            }
        }
        let t = &self.transcript;
        varint::write_u64(&mut out, t.base_violations.len() as u64);
        for v in &t.base_violations {
            varint::write_u64(&mut out, v.policy_idx as u64);
            varint::write_u32(&mut out, v.ingress.0);
            write_str(&mut out, &v.representative);
            write_str(&mut out, &v.observed);
        }
        write_u64_le(&mut out, t.base_digest);
        varint::write_u64(&mut out, t.undo.len() as u64);
        for u in &t.undo {
            write_update(&mut out, u);
        }
        varint::write_u64(&mut out, t.redo.len() as u64);
        for u in &t.redo {
            write_update(&mut out, u);
        }
        out
    }

    /// Decodes a binary proof. Every malformation — truncation, a bad
    /// version byte, an unknown tag, invalid UTF-8 or JSON — is a
    /// clean `Err`, never a panic.
    pub fn decode_binary(buf: &[u8]) -> Result<RepairProof, String> {
        let pos = &mut 0usize;
        let version = *buf.first().ok_or("empty proof buffer")?;
        *pos = 1;
        if version != PROOF_CODEC_VERSION {
            return Err(format!("unsupported proof codec version {version}"));
        }
        let plan_json = read_str(buf, pos)?;
        let plan_value = json::parse(&plan_json).map_err(|e| e.to_string())?;
        let plan = RepairPlan::from_json(&plan_value).map_err(|e| e.to_string())?;
        let target = EventId(varint::read_u32(buf, pos).ok_or("truncated target")?);
        let min_confidence = f64::from_bits(read_u64_le(buf, pos)?);
        let n = varint::read_u64(buf, pos).ok_or("truncated provenance count")? as usize;
        let mut provenance = Vec::new();
        for _ in 0..n {
            provenance.push(ProvenanceHop {
                event: EventId(varint::read_u32(buf, pos).ok_or("truncated hop event")?),
                router: RouterId(varint::read_u32(buf, pos).ok_or("truncated hop router")?),
                time: SimTime::from_nanos(varint::read_u64(buf, pos).ok_or("truncated hop time")?),
                digest: read_u64_le(buf, pos)?,
            });
        }
        let n = varint::read_u64(buf, pos).ok_or("truncated chain count")? as usize;
        let mut chain = Vec::new();
        for _ in 0..n {
            chain.push(read_u64_le(buf, pos)?);
        }
        let n = varint::read_u64(buf, pos).ok_or("truncated predicted count")? as usize;
        let mut predicted = Vec::new();
        for _ in 0..n {
            let bn = varint::read_u64(buf, pos).ok_or("truncated behavior count")? as usize;
            let mut behavior = Vec::new();
            for _ in 0..bn {
                behavior.push(read_str(buf, pos)?);
            }
            let pn = varint::read_u64(buf, pos).ok_or("truncated prefix count")? as usize;
            let mut prefixes = Vec::new();
            for _ in 0..pn {
                prefixes.push(read_prefix(buf, pos)?);
            }
            predicted.push(PredictedBehavior { behavior, prefixes });
        }
        let n = varint::read_u64(buf, pos).ok_or("truncated template count")? as usize;
        let mut template = Vec::new();
        for _ in 0..n {
            let r = RouterId(varint::read_u32(buf, pos).ok_or("truncated template router")?);
            let has = *buf.get(*pos).ok_or("truncated template option")?;
            *pos += 1;
            let act = match has {
                0 => None,
                1 => Some(read_action(buf, pos)?),
                t => return Err(format!("bad option tag {t}")),
            };
            template.push((r, act));
        }
        let n = varint::read_u64(buf, pos).ok_or("truncated violation count")? as usize;
        let mut base_violations = Vec::new();
        for _ in 0..n {
            base_violations.push(cpvr_verify::ViolationSig {
                policy_idx: varint::read_u64(buf, pos).ok_or("truncated policy idx")? as usize,
                ingress: RouterId(varint::read_u32(buf, pos).ok_or("truncated ingress")?),
                representative: read_str(buf, pos)?,
                observed: read_str(buf, pos)?,
            });
        }
        let base_digest = read_u64_le(buf, pos)?;
        let n = varint::read_u64(buf, pos).ok_or("truncated undo count")? as usize;
        let mut undo = Vec::new();
        for _ in 0..n {
            undo.push(read_update(buf, pos)?);
        }
        let n = varint::read_u64(buf, pos).ok_or("truncated redo count")? as usize;
        let mut redo = Vec::new();
        for _ in 0..n {
            redo.push(read_update(buf, pos)?);
        }
        if *pos != buf.len() {
            return Err(format!(
                "{} trailing bytes after proof payload",
                buf.len() - *pos
            ));
        }
        Ok(RepairProof {
            plan,
            target,
            min_confidence,
            provenance,
            chain,
            predicted,
            template,
            transcript: ReplayTranscript {
                base_violations,
                base_digest,
                undo,
                redo,
            },
        })
    }
}

cpvr_types::impl_json_struct!(ProvenanceHop {
    event,
    router,
    time,
    digest,
});
cpvr_types::impl_json_struct!(PredictedBehavior { behavior, prefixes });
cpvr_types::impl_json_struct!(RepairProof {
    plan,
    target,
    min_confidence,
    provenance,
    chain,
    predicted,
    template,
    transcript,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::{RootCause, RootCauseKind};
    use crate::repair::RepairAction;
    use cpvr_topo::LinkId;

    fn sample_proof() -> RepairProof {
        let root = RootCause {
            event: EventId(0),
            router: RouterId(1),
            time: SimTime::from_millis(5),
            kind: RootCauseKind::ConfigChange {
                change: Some(cpvr_bgp::ConfigChange::SetAddPath(true)),
                inverse: Some(cpvr_bgp::ConfigChange::SetAddPath(false)),
            },
            confidence: 0.9,
        };
        let plan = RepairPlan {
            router: RouterId(1),
            action: RepairAction::RevertConfig(cpvr_bgp::ConfigChange::SetAddPath(false)),
            root,
            rationale: "test \"rationale\" with\nescapes \u{202e}".into(),
        };
        let hops = vec![
            ProvenanceHop {
                event: EventId(0),
                router: RouterId(1),
                time: SimTime::from_millis(5),
                digest: 0xdead_beef_cafe_f00d,
            },
            ProvenanceHop {
                event: EventId(3),
                router: RouterId(2),
                time: SimTime::from_millis(9),
                digest: 0x0123_4567_89ab_cdef,
            },
        ];
        let chain = chain_over(&hops);
        RepairProof {
            plan,
            target: EventId(3),
            min_confidence: 0.8,
            provenance: hops,
            chain,
            predicted: vec![PredictedBehavior {
                behavior: vec!["fwd(L2)".into(), "drop".into()],
                prefixes: vec!["8.8.8.0/24".parse().unwrap()],
            }],
            template: vec![
                (RouterId(0), Some(FibAction::Forward(LinkId(2)))),
                (RouterId(1), None),
            ],
            transcript: ReplayTranscript {
                base_violations: vec![cpvr_verify::ViolationSig {
                    policy_idx: 0,
                    ingress: RouterId(0),
                    representative: "8.8.8.8".into(),
                    observed: "exited via Ext0".into(),
                }],
                base_digest: 0x1111_2222_3333_4444,
                undo: vec![FibUpdate {
                    router: RouterId(0),
                    prefix: "8.8.8.0/24".parse().unwrap(),
                    kind: UpdateKind::Install,
                    action: FibAction::Forward(LinkId(2)),
                    at: SimTime::from_millis(1),
                }],
                redo: vec![FibUpdate {
                    router: RouterId(0),
                    prefix: "8.8.8.0/24".parse().unwrap(),
                    kind: UpdateKind::Remove,
                    action: FibAction::Forward(LinkId(2)),
                    at: SimTime::from_millis(7),
                }],
            },
        }
    }

    #[test]
    fn json_roundtrip() {
        let proof = sample_proof();
        let text = json::to_string_compact(&proof);
        let back = RepairProof::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, proof);
    }

    #[test]
    fn binary_roundtrip() {
        let proof = sample_proof();
        let bytes = proof.encode_binary();
        let back = RepairProof::decode_binary(&bytes).unwrap();
        assert_eq!(back, proof);
    }

    #[test]
    fn binary_truncation_is_a_clean_error() {
        let bytes = sample_proof().encode_binary();
        for cut in 0..bytes.len() {
            assert!(
                RepairProof::decode_binary(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn repair_id_is_stable_and_content_sensitive() {
        let proof = sample_proof();
        assert_eq!(proof.repair_id(), proof.repair_id());
        let mut other = proof.clone();
        other.target = EventId(4);
        assert_ne!(proof.repair_id(), other.repair_id());
    }
}
