//! Provenance: tracing problematic I/Os back to their root causes (§6,
//! Fig. 4).
//!
//! "By traversing the HBG starting from a problematic FIB update, we can
//! determine the sequence of I/Os that led to the policy violation. Any
//! leaf nodes we encounter represent the root cause(s) of the event."

use crate::hbg::Hbg;
use cpvr_bgp::{ConfigChange, PeerRef};
use cpvr_sim::{EventId, IoKind, Trace};
use cpvr_topo::{ExtPeerId, LinkId};
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use std::fmt;

/// Classification of a root-cause event.
#[derive(Clone, Debug, PartialEq)]
pub enum RootCauseKind {
    /// An operator configuration change — revertible if the inverse is
    /// known.
    ConfigChange {
        /// The change, when structured information was captured.
        change: Option<ConfigChange>,
        /// Its inverse against the pre-change configuration.
        inverse: Option<ConfigChange>,
    },
    /// A hardware status change.
    Hardware {
        /// New state.
        up: bool,
        /// Affected internal link, if any.
        link: Option<LinkId>,
        /// Affected uplink, if any.
        peer: Option<ExtPeerId>,
    },
    /// A route learned from outside the domain (nothing to revert — the
    /// Internet did it).
    ExternalRoute {
        /// The announcing peer.
        peer: Option<ExtPeerId>,
        /// The prefix.
        prefix: Option<Ipv4Prefix>,
        /// Whether it was a withdrawal.
        withdraw: bool,
    },
    /// Protocol startup (synthetic boot root).
    ProtocolStart,
    /// A leaf that should have had antecedents — usually a sign of
    /// imperfect HBR inference or lost capture records.
    Unexplained,
}

/// One root cause of a traced event.
#[derive(Clone, Debug, PartialEq)]
pub struct RootCause {
    /// The leaf event.
    pub event: EventId,
    /// Where it happened.
    pub router: RouterId,
    /// When it happened.
    pub time: SimTime,
    /// What it was.
    pub kind: RootCauseKind,
    /// Bottleneck confidence of the best path from this leaf to the
    /// traced event (1.0 when every HBR on the path is a rule match).
    pub confidence: f64,
}

impl fmt::Display for RootCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            RootCauseKind::ConfigChange { change, .. } => match change {
                Some(c) => format!("config change: {c}"),
                None => "config change".to_string(),
            },
            RootCauseKind::Hardware { up, link, peer } => {
                let target = match (link, peer) {
                    (Some(l), _) => l.to_string(),
                    (_, Some(p)) => p.to_string(),
                    _ => "?".to_string(),
                };
                format!("hardware: {target} {}", if *up { "up" } else { "down" })
            }
            RootCauseKind::ExternalRoute {
                peer,
                prefix,
                withdraw,
            } => format!(
                "external {} of {} from {}",
                if *withdraw { "withdrawal" } else { "route" },
                prefix.map(|p| p.to_string()).unwrap_or_else(|| "?".into()),
                peer.map(|p| p.to_string()).unwrap_or_else(|| "?".into()),
            ),
            RootCauseKind::ProtocolStart => "protocol start".to_string(),
            RootCauseKind::Unexplained => "unexplained leaf".to_string(),
        };
        write!(
            f,
            "{} @{} on {}: {} (conf {:.2})",
            self.event, self.time, self.router, what, self.confidence
        )
    }
}

/// Classifies a trace event as a root-cause kind.
fn classify(kind: &IoKind) -> RootCauseKind {
    match kind {
        IoKind::ConfigChange {
            change, inverse, ..
        } => match change {
            Some(_) => RootCauseKind::ConfigChange {
                change: change.clone(),
                inverse: inverse.clone(),
            },
            None => RootCauseKind::ProtocolStart,
        },
        IoKind::LinkStatus { up, link, peer, .. } => RootCauseKind::Hardware {
            up: *up,
            link: *link,
            peer: *peer,
        },
        IoKind::RecvAdvert { prefix, from, .. } => RootCauseKind::ExternalRoute {
            peer: match from {
                Some(PeerRef::External(p)) => Some(*p),
                _ => None,
            },
            prefix: *prefix,
            withdraw: false,
        },
        IoKind::RecvWithdraw { prefix, from, .. } => RootCauseKind::ExternalRoute {
            peer: match from {
                Some(PeerRef::External(p)) => Some(*p),
                _ => None,
            },
            prefix: *prefix,
            withdraw: true,
        },
        _ => RootCauseKind::Unexplained,
    }
}

/// Traces the root causes of `from` through the HBG, classifying each
/// leaf. Results are sorted by descending confidence, then by time
/// (most recent first) — the likeliest culprits lead.
pub fn root_causes(trace: &Trace, hbg: &Hbg, from: EventId, min_conf: f64) -> Vec<RootCause> {
    let leaves = hbg.root_ancestors(from, min_conf);
    let mut out: Vec<RootCause> = leaves
        .into_iter()
        .map(|leaf| {
            let e = &trace.events[leaf.index()];
            RootCause {
                event: leaf,
                router: e.router,
                time: e.time,
                kind: classify(&e.kind),
                confidence: bottleneck_confidence(hbg, leaf, from, min_conf),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.time.cmp(&a.time))
    });
    out
}

/// The widest-path (maximum bottleneck) confidence from `leaf` down to
/// `target`, considering only edges ≥ `min_conf`. Returns 0.0 if no path
/// exists (shouldn't happen for a reported leaf), 1.0 when
/// `leaf == target`.
pub fn bottleneck_confidence(hbg: &Hbg, leaf: EventId, target: EventId, min_conf: f64) -> f64 {
    match widest_path(hbg, leaf, target, min_conf) {
        Some((conf, _)) => conf,
        None => 0.0,
    }
}

/// The widest-path node sequence from `leaf` down to `target`
/// (inclusive on both ends), considering only edges ≥ `min_conf` — the
/// provenance path a repair proof carries as evidence.
///
/// Defined for every input, never panicking: `leaf == target` yields
/// the one-node path `[leaf]` (a self-loop provenance path carries no
/// edges), an out-of-range id or an unreachable target yields an empty
/// path.
pub fn provenance_path(hbg: &Hbg, leaf: EventId, target: EventId, min_conf: f64) -> Vec<EventId> {
    match widest_path(hbg, leaf, target, min_conf) {
        Some((_, path)) => path,
        None => Vec::new(),
    }
}

/// Widest-path (maximum bottleneck) search from `leaf` to `target`:
/// the shared engine behind [`bottleneck_confidence`] and
/// [`provenance_path`]. Returns the bottleneck confidence and the node
/// sequence, or `None` when no path exists or an id is out of range.
fn widest_path(
    hbg: &Hbg,
    leaf: EventId,
    target: EventId,
    min_conf: f64,
) -> Option<(f64, Vec<EventId>)> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f64, EventId);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    let n = hbg.num_events();
    if leaf.index() >= n || target.index() >= n {
        return None;
    }
    let mut best = vec![0.0f64; n];
    let mut prev: Vec<Option<EventId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    best[leaf.index()] = 1.0;
    heap.push(Entry(1.0, leaf));
    while let Some(Entry(conf, node)) = heap.pop() {
        if node == target {
            let mut path = vec![target];
            let mut cur = target;
            while cur != leaf {
                cur = prev[cur.index()]?;
                path.push(cur);
            }
            path.reverse();
            return Some((conf, path));
        }
        if conf < best[node.index()] {
            continue;
        }
        for child in hbg.children(node, min_conf) {
            // Edge confidence: find it.
            let edge_conf = hbg
                .edges()
                .iter()
                .filter(|h| h.from == node && h.to == child)
                .map(|h| h.confidence)
                .fold(0.0f64, f64::max);
            let nc = conf.min(edge_conf);
            if nc > best[child.index()] {
                best[child.index()] = nc;
                prev[child.index()] = Some(node);
                heap.push(Entry(nc, child));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbg::{Hbr, HbrSource};
    use cpvr_sim::IoEvent;

    fn mk_trace(kinds: Vec<IoKind>) -> Trace {
        let mut t = Trace::default();
        for (i, kind) in kinds.into_iter().enumerate() {
            t.events.push(IoEvent {
                id: EventId(i as u32),
                router: RouterId(i as u32 % 3),
                time: SimTime::from_millis(i as u64),
                arrived_at: Some(SimTime::from_millis(i as u64)),
                kind,
            });
        }
        t
    }

    fn fib(p: &str) -> IoKind {
        IoKind::FibInstall {
            prefix: p.parse().unwrap(),
            action: cpvr_dataplane::FibAction::Drop,
        }
    }

    #[test]
    fn fig4_shape_config_change_is_the_root() {
        // e0 config change (R1) → e1 soft reconfig → e2 rib → e3 fib.
        let trace = mk_trace(vec![
            IoKind::ConfigChange {
                desc: "lp 10".into(),
                change: Some(ConfigChange::SetAddPath(true)),
                inverse: Some(ConfigChange::SetAddPath(false)),
            },
            IoKind::SoftReconfig {
                desc: "lp 10".into(),
            },
            IoKind::RibInstall {
                proto: cpvr_sim::Proto::Bgp,
                prefix: "8.8.8.0/24".parse().unwrap(),
                route: None,
            },
            fib("8.8.8.0/24"),
        ]);
        let mut g = Hbg::new(4);
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3)] {
            g.add(Hbr {
                from: EventId(a),
                to: EventId(b),
                confidence: 1.0,
                source: HbrSource::Rule("t"),
            });
        }
        let causes = root_causes(&trace, &g, EventId(3), 0.5);
        assert_eq!(causes.len(), 1);
        assert!(matches!(
            causes[0].kind,
            RootCauseKind::ConfigChange {
                inverse: Some(ConfigChange::SetAddPath(false)),
                ..
            }
        ));
        assert_eq!(causes[0].confidence, 1.0);
    }

    #[test]
    fn external_and_hardware_roots_classified() {
        let trace = mk_trace(vec![
            IoKind::RecvAdvert {
                proto: cpvr_sim::Proto::Bgp,
                prefix: Some("8.8.8.0/24".parse().unwrap()),
                from: Some(PeerRef::External(ExtPeerId(1))),
                route: None,
            },
            IoKind::LinkStatus {
                desc: "L0 down".into(),
                up: false,
                link: Some(LinkId(0)),
                peer: None,
            },
            fib("8.8.8.0/24"),
        ]);
        let mut g = Hbg::new(3);
        g.add(Hbr {
            from: EventId(0),
            to: EventId(2),
            confidence: 1.0,
            source: HbrSource::Rule("t"),
        });
        g.add(Hbr {
            from: EventId(1),
            to: EventId(2),
            confidence: 1.0,
            source: HbrSource::Rule("t"),
        });
        let causes = root_causes(&trace, &g, EventId(2), 0.5);
        assert_eq!(causes.len(), 2);
        assert!(causes.iter().any(|c| matches!(
            c.kind,
            RootCauseKind::ExternalRoute {
                peer: Some(ExtPeerId(1)),
                withdraw: false,
                ..
            }
        )));
        assert!(causes.iter().any(|c| matches!(
            c.kind,
            RootCauseKind::Hardware {
                up: false,
                link: Some(LinkId(0)),
                ..
            }
        )));
    }

    #[test]
    fn confidence_is_bottleneck_of_best_path() {
        // Two paths from leaf 0 to target 3: via 1 (min 0.9) and via 2
        // (min 0.4). Report 0.9.
        let trace = mk_trace(vec![
            IoKind::SoftReconfig {
                desc: "root".into(),
            },
            IoKind::SoftReconfig { desc: "a".into() },
            IoKind::SoftReconfig { desc: "b".into() },
            fib("8.8.8.0/24"),
        ]);
        let mut g = Hbg::new(4);
        g.add(Hbr {
            from: EventId(0),
            to: EventId(1),
            confidence: 0.9,
            source: HbrSource::Pattern,
        });
        g.add(Hbr {
            from: EventId(1),
            to: EventId(3),
            confidence: 0.95,
            source: HbrSource::Pattern,
        });
        g.add(Hbr {
            from: EventId(0),
            to: EventId(2),
            confidence: 0.4,
            source: HbrSource::Pattern,
        });
        g.add(Hbr {
            from: EventId(2),
            to: EventId(3),
            confidence: 1.0,
            source: HbrSource::Pattern,
        });
        let causes = root_causes(&trace, &g, EventId(3), 0.1);
        assert_eq!(causes.len(), 1);
        assert!((causes[0].confidence - 0.9).abs() < 1e-9);
    }

    #[test]
    fn rootless_target_is_its_own_cause() {
        let trace = mk_trace(vec![IoKind::ConfigChange {
            desc: "boot".into(),
            change: None,
            inverse: None,
        }]);
        let g = Hbg::new(1);
        let causes = root_causes(&trace, &g, EventId(0), 0.5);
        assert_eq!(causes.len(), 1);
        assert_eq!(causes[0].kind, RootCauseKind::ProtocolStart);
        assert_eq!(causes[0].confidence, 1.0);
    }

    #[test]
    fn low_confidence_edges_ignored_at_threshold() {
        let trace = mk_trace(vec![
            IoKind::SoftReconfig {
                desc: "weak root".into(),
            },
            fib("8.8.8.0/24"),
        ]);
        let mut g = Hbg::new(2);
        g.add(Hbr {
            from: EventId(0),
            to: EventId(1),
            confidence: 0.2,
            source: HbrSource::Pattern,
        });
        let causes = root_causes(&trace, &g, EventId(1), 0.5);
        // At threshold 0.5 the edge vanishes: the FIB event is its own
        // (unexplained) root.
        assert_eq!(causes.len(), 1);
        assert_eq!(causes[0].event, EventId(1));
        assert_eq!(causes[0].kind, RootCauseKind::Unexplained);
    }
}

cpvr_types::impl_json_enum!(RootCauseKind {
    ConfigChange { change, inverse },
    Hardware { up, link, peer },
    ExternalRoute { peer, prefix, withdraw },
    ProtocolStart,
    Unexplained,
});
cpvr_types::impl_json_struct!(RootCause {
    event,
    router,
    time,
    kind,
    confidence,
});
