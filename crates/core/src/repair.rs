//! Repairing policy violations (§6).
//!
//! The paper's first-line repair is "reverting the root cause event,
//! prior to installing any problematic FIB updates": walk the HBG to the
//! leaves, and if a leaf is a configuration change, apply its inverse and
//! report it to the operator. Some root causes are *not* revertible —
//! an external withdrawal because a provider link died cannot be undone
//! (§8's first limitation) — so plans distinguish revertible actions from
//! operator notifications.
//!
//! The module also quantifies why the naive alternative — blocking FIB
//! updates — is dangerous: [`blocking_divergence`] measures the
//! control/data-plane gap that blocking creates (the Fig. 2b hazard).

use crate::provenance::{RootCause, RootCauseKind};
use cpvr_bgp::ConfigChange;
use cpvr_dataplane::DataPlane;
use cpvr_sim::{IoKind, Trace};
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use std::fmt;

/// What the repair engine wants done about one root cause.
#[derive(Clone, Debug, PartialEq)]
pub enum RepairAction {
    /// Apply this (inverse) configuration change on the router.
    RevertConfig(ConfigChange),
    /// Nothing can be reverted; tell the operator what happened. Used
    /// for hardware events, external routes, and config changes whose
    /// inverse is unknown.
    NotifyOperator(String),
}

/// A proposed repair for one root cause.
#[derive(Clone, Debug, PartialEq)]
pub struct RepairPlan {
    /// The router to act on.
    pub router: RouterId,
    /// The action.
    pub action: RepairAction,
    /// The root cause being addressed.
    pub root: RootCause,
    /// Why this plan follows from the root cause.
    pub rationale: String,
}

impl RepairPlan {
    /// True if the plan actually changes the network (vs. notifying).
    pub fn is_actionable(&self) -> bool {
        matches!(self.action, RepairAction::RevertConfig(_))
    }
}

impl fmt::Display for RepairPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.action {
            RepairAction::RevertConfig(c) => {
                write!(
                    f,
                    "on {}: revert via `{c}` — {}",
                    self.router, self.rationale
                )
            }
            RepairAction::NotifyOperator(msg) => {
                write!(f, "notify operator about {}: {msg}", self.router)
            }
        }
    }
}

/// The outcome of turning root causes into plans: the plans, plus every
/// cause that was *not* planned because its confidence fell below the
/// threshold. Skipped causes used to be dropped silently, which left
/// operators unable to tell "no cause found" from "cause found but too
/// uncertain to act on" — now they ride along for reporting and feed
/// the `cpvr_repair_skipped_low_confidence_total` metric.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RepairReport {
    /// Actionable and notify plans, most-confident cause first.
    pub plans: Vec<RepairPlan>,
    /// Causes below the confidence threshold, in input order.
    pub skipped_low_confidence: Vec<RootCause>,
}

/// Turns root causes into repair plans, most-confident first. Root
/// causes below `min_confidence` are skipped (the §4.2 plan: only act
/// when confidence is high enough) — but surfaced, not swallowed.
pub fn propose_repairs_report(causes: &[RootCause], min_confidence: f64) -> RepairReport {
    let mut report = RepairReport::default();
    let out = &mut report.plans;
    for root in causes {
        if root.confidence < min_confidence {
            report.skipped_low_confidence.push(root.clone());
            continue;
        }
        let plan = match &root.kind {
            RootCauseKind::ConfigChange { change, inverse } => match inverse {
                Some(inv) => RepairPlan {
                    router: root.router,
                    action: RepairAction::RevertConfig(inv.clone()),
                    root: root.clone(),
                    rationale: format!(
                        "configuration change `{}` is the root cause; rolling back",
                        change
                            .as_ref()
                            .map(|c| c.to_string())
                            .unwrap_or_else(|| "?".into())
                    ),
                },
                None => RepairPlan {
                    router: root.router,
                    action: RepairAction::NotifyOperator(
                        "root cause is a configuration change with no recorded inverse".into(),
                    ),
                    root: root.clone(),
                    rationale: "no version-system entry to roll back to".into(),
                },
            },
            RootCauseKind::Hardware { up, link, peer } => RepairPlan {
                router: root.router,
                action: RepairAction::NotifyOperator(format!(
                    "hardware event ({}{} went {}) cannot be reverted in software",
                    link.map(|l| l.to_string()).unwrap_or_default(),
                    peer.map(|p| p.to_string()).unwrap_or_default(),
                    if *up { "up" } else { "down" },
                )),
                root: root.clone(),
                rationale: "blocking a withdrawal caused by a dead link would blackhole traffic anyway (§8)".into(),
            },
            RootCauseKind::ExternalRoute { peer, prefix, withdraw } => RepairPlan {
                router: root.router,
                action: RepairAction::NotifyOperator(format!(
                    "external {} for {} from {} — outside our control",
                    if *withdraw { "withdrawal" } else { "announcement" },
                    prefix.map(|p| p.to_string()).unwrap_or_else(|| "?".into()),
                    peer.map(|p| p.to_string()).unwrap_or_else(|| "?".into()),
                )),
                root: root.clone(),
                rationale: "the Internet changed; adapt policy if intended".into(),
            },
            RootCauseKind::ProtocolStart | RootCauseKind::Unexplained => RepairPlan {
                router: root.router,
                action: RepairAction::NotifyOperator(
                    "root cause could not be attributed to an operator action".into(),
                ),
                root: root.clone(),
                rationale: "boot-time or unexplained provenance".into(),
            },
        };
        out.push(plan);
    }
    report
}

/// Compatibility wrapper over [`propose_repairs_report`] returning the
/// plans alone.
pub fn propose_repairs(causes: &[RootCause], min_confidence: f64) -> Vec<RepairPlan> {
    propose_repairs_report(causes, min_confidence).plans
}

/// Measures the control-plane/data-plane divergence created by blocking:
/// entries where the *intended* FIB (what the control plane believes,
/// reconstructed from all captured FIB events up to `horizon` by event
/// time) differs from the *live* hardware FIB. Each divergent
/// `(router, prefix)` is a place where the Fig. 2b hazard is armed.
///
/// Defined (and non-panicking) on every input: an empty trace yields a
/// divergence entry per live FIB entry (the control plane believes in
/// an empty network), and trace events referencing routers the live
/// plane doesn't cover are diffed against an empty FIB rather than
/// indexing out of range.
pub fn blocking_divergence(
    trace: &Trace,
    live: &DataPlane,
    horizon: SimTime,
) -> Vec<(RouterId, Ipv4Prefix)> {
    let mut events: Vec<&cpvr_sim::IoEvent> = trace.events.iter().collect();
    events.sort_by_key(|e| (e.time, e.id));
    // Cover every router either side mentions: captured FIB events may
    // reference routers the live snapshot doesn't carry (partial
    // capture), and those entries are divergent by definition.
    let n = events
        .iter()
        .filter(|e| {
            e.time <= horizon
                && matches!(e.kind, IoKind::FibInstall { .. } | IoKind::FibRemove { .. })
        })
        .map(|e| e.router.index() + 1)
        .chain([live.num_routers()])
        .max()
        .unwrap_or(0);
    let mut intended = DataPlane::new(n);
    for e in events {
        if e.time > horizon {
            break;
        }
        match &e.kind {
            IoKind::FibInstall { prefix, action } => {
                intended.fib_mut(e.router).install(
                    *prefix,
                    cpvr_dataplane::FibEntry {
                        action: *action,
                        installed_at: e.time,
                    },
                );
            }
            IoKind::FibRemove { prefix } => {
                intended.fib_mut(e.router).remove(prefix);
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    for r in 0..n as u32 {
        let rid = RouterId(r);
        let mut prefixes: Vec<Ipv4Prefix> = intended.fib(rid).prefixes();
        if rid.index() < live.num_routers() {
            prefixes.extend(live.fib(rid).prefixes());
        }
        prefixes.sort();
        prefixes.dedup();
        for p in prefixes {
            let want = intended.fib(rid).get(&p).map(|e| e.action);
            let have = (rid.index() < live.num_routers())
                .then(|| live.fib(rid).get(&p).map(|e| e.action))
                .flatten();
            if want != have {
                out.push((rid, p));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_dataplane::{FibAction, FibEntry};
    use cpvr_sim::{EventId, IoEvent};

    fn root(kind: RootCauseKind, conf: f64) -> RootCause {
        RootCause {
            event: EventId(0),
            router: RouterId(1),
            time: SimTime::from_millis(5),
            kind,
            confidence: conf,
        }
    }

    #[test]
    fn config_root_yields_revert_plan() {
        let causes = vec![root(
            RootCauseKind::ConfigChange {
                change: Some(ConfigChange::SetAddPath(true)),
                inverse: Some(ConfigChange::SetAddPath(false)),
            },
            1.0,
        )];
        let plans = propose_repairs(&causes, 0.5);
        assert_eq!(plans.len(), 1);
        assert!(plans[0].is_actionable());
        assert_eq!(
            plans[0].action,
            RepairAction::RevertConfig(ConfigChange::SetAddPath(false))
        );
        assert_eq!(plans[0].router, RouterId(1));
    }

    #[test]
    fn hardware_and_external_roots_notify() {
        let causes = vec![
            root(
                RootCauseKind::Hardware {
                    up: false,
                    link: None,
                    peer: Some(cpvr_topo::ExtPeerId(1)),
                },
                1.0,
            ),
            root(
                RootCauseKind::ExternalRoute {
                    peer: Some(cpvr_topo::ExtPeerId(0)),
                    prefix: Some("8.8.8.0/24".parse().unwrap()),
                    withdraw: true,
                },
                1.0,
            ),
        ];
        let plans = propose_repairs(&causes, 0.5);
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|p| !p.is_actionable()));
    }

    #[test]
    fn low_confidence_roots_skipped() {
        let causes = vec![root(
            RootCauseKind::ConfigChange {
                change: Some(ConfigChange::SetAddPath(true)),
                inverse: Some(ConfigChange::SetAddPath(false)),
            },
            0.3,
        )];
        assert!(propose_repairs(&causes, 0.5).is_empty());
        assert_eq!(propose_repairs(&causes, 0.2).len(), 1);
    }

    #[test]
    fn skipped_causes_are_surfaced_not_swallowed() {
        let causes = vec![
            root(
                RootCauseKind::ConfigChange {
                    change: Some(ConfigChange::SetAddPath(true)),
                    inverse: Some(ConfigChange::SetAddPath(false)),
                },
                0.9,
            ),
            root(RootCauseKind::Unexplained, 0.3),
            root(RootCauseKind::ProtocolStart, 0.1),
        ];
        let report = propose_repairs_report(&causes, 0.5);
        assert_eq!(report.plans.len(), 1);
        assert_eq!(report.skipped_low_confidence.len(), 2);
        assert_eq!(report.skipped_low_confidence[0].confidence, 0.3);
        assert_eq!(report.skipped_low_confidence[1].confidence, 0.1);
        // The wrapper stays equivalent to the plans half.
        assert_eq!(propose_repairs(&causes, 0.5), report.plans);
    }

    #[test]
    fn missing_inverse_degrades_to_notification() {
        let causes = vec![root(
            RootCauseKind::ConfigChange {
                change: Some(ConfigChange::SetAddPath(true)),
                inverse: None,
            },
            1.0,
        )];
        let plans = propose_repairs(&causes, 0.5);
        assert!(!plans[0].is_actionable());
    }

    #[test]
    fn divergence_detects_blocked_updates() {
        let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
        let mut trace = Trace::default();
        trace.events.push(IoEvent {
            id: EventId(0),
            router: RouterId(0),
            time: SimTime::from_millis(10),
            arrived_at: Some(SimTime::from_millis(10)),
            kind: IoKind::FibInstall {
                prefix: p,
                action: FibAction::Drop,
            },
        });
        // Live data plane never got the update (it was blocked).
        let live = DataPlane::new(1);
        let div = blocking_divergence(&trace, &live, SimTime::from_millis(100));
        assert_eq!(div, vec![(RouterId(0), p)]);
        // With the update applied, no divergence.
        let mut live2 = DataPlane::new(1);
        live2.fib_mut(RouterId(0)).install(
            p,
            FibEntry {
                action: FibAction::Drop,
                installed_at: SimTime::from_millis(10),
            },
        );
        assert!(blocking_divergence(&trace, &live2, SimTime::from_millis(100)).is_empty());
    }

    #[test]
    fn divergence_on_empty_trace_is_defined() {
        // Empty provenance: no captured FIB events at all. The verdict
        // is defined — every live entry diverges from the (empty)
        // intended plane — and nothing panics.
        let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
        let trace = Trace::default();
        let empty_live = DataPlane::new(2);
        assert!(blocking_divergence(&trace, &empty_live, SimTime::from_millis(100)).is_empty());
        let mut live = DataPlane::new(2);
        live.fib_mut(RouterId(1)).install(
            p,
            FibEntry {
                action: FibAction::Drop,
                installed_at: SimTime::ZERO,
            },
        );
        let div = blocking_divergence(&trace, &live, SimTime::from_millis(100));
        assert_eq!(div, vec![(RouterId(1), p)]);
    }

    #[test]
    fn divergence_with_out_of_range_router_is_defined() {
        // A captured FIB event on a router the live plane doesn't cover
        // (partial capture) must not panic: the entry diverges against
        // an empty FIB.
        let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
        let mut trace = Trace::default();
        trace.events.push(IoEvent {
            id: EventId(0),
            router: RouterId(7),
            time: SimTime::from_millis(10),
            arrived_at: Some(SimTime::from_millis(10)),
            kind: IoKind::FibInstall {
                prefix: p,
                action: FibAction::Drop,
            },
        });
        let live = DataPlane::new(1);
        let div = blocking_divergence(&trace, &live, SimTime::from_millis(100));
        assert_eq!(div, vec![(RouterId(7), p)]);
    }

    #[test]
    fn divergence_respects_horizon() {
        let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
        let mut trace = Trace::default();
        trace.events.push(IoEvent {
            id: EventId(0),
            router: RouterId(0),
            time: SimTime::from_millis(500),
            arrived_at: Some(SimTime::from_millis(500)),
            kind: IoKind::FibInstall {
                prefix: p,
                action: FibAction::Drop,
            },
        });
        let live = DataPlane::new(1);
        assert!(blocking_divergence(&trace, &live, SimTime::from_millis(100)).is_empty());
    }
}

cpvr_types::impl_json_enum!(RepairAction {
    RevertConfig(change),
    NotifyOperator(msg),
});
cpvr_types::impl_json_struct!(RepairPlan {
    router,
    action,
    root,
    rationale,
});
