//! Protocol rule matching (§4.1 + §4.2 "Rule matching").
//!
//! The paper lists generic happens-before rules that all common routing
//! protocols obey, plus protocol-specific ones:
//!
//! * `[R recv C advert P] → [R install P in C RIB]`
//! * `[R install P in C RIB] → [R install P in FIB]`
//! * BGP: `[R install P in BGP RIB] → [R send BGP advert P]`
//! * EIGRP: `[R install P in FIB] → [R send EIGRP advert P]`
//! * `[R' send C advert P to R] → [R recv C advert P from R']`
//! * `[R config change] → [R soft reconfiguration] → outputs`
//! * `[R hardware status change] → outputs`
//!
//! Given an I/O that matches a rule's right-hand side, the matcher
//! searches the timestamp- and prefix-filtered stream for the most recent
//! I/O matching the left-hand side (the paper's prefix and timestamp
//! techniques are exactly these filters — necessary but not sufficient,
//! so they only scope the search). The implementation is a single
//! forward sweep over the time-sorted trace with nearest-match maps, so
//! inference is O(events).

use crate::hbg::{Hbr, HbrSource};
use cpvr_bgp::PeerRef;
use cpvr_sim::{EventId, IoEvent, IoKind, Proto, Trace};
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use std::collections::HashMap;

/// Coarse event classes used by rule matching and pattern mining.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum KindClass {
    /// Configuration input.
    Config,
    /// Soft-reconfiguration marker.
    Soft,
    /// Hardware status input.
    Link,
    /// Received advertisement.
    RecvAd,
    /// Received withdrawal.
    RecvWd,
    /// RIB install/update.
    RibIn,
    /// RIB removal.
    RibRm,
    /// FIB install/update.
    FibIn,
    /// FIB removal.
    FibRm,
    /// Sent advertisement.
    SendAd,
    /// Sent withdrawal.
    SendWd,
}

/// The (class, protocol) signature of an event.
pub fn sig(e: &IoEvent) -> (KindClass, Option<Proto>) {
    match &e.kind {
        IoKind::ConfigChange { .. } => (KindClass::Config, None),
        IoKind::SoftReconfig { .. } => (KindClass::Soft, None),
        IoKind::LinkStatus { .. } => (KindClass::Link, None),
        IoKind::RecvAdvert { proto, .. } => (KindClass::RecvAd, Some(*proto)),
        IoKind::RecvWithdraw { proto, .. } => (KindClass::RecvWd, Some(*proto)),
        IoKind::RibInstall { proto, .. } => (KindClass::RibIn, Some(*proto)),
        IoKind::RibRemove { proto, .. } => (KindClass::RibRm, Some(*proto)),
        IoKind::FibInstall { .. } => (KindClass::FibIn, None),
        IoKind::FibRemove { .. } => (KindClass::FibRm, None),
        IoKind::SendAdvert { proto, .. } => (KindClass::SendAd, Some(*proto)),
        IoKind::SendWithdraw { proto, .. } => (KindClass::SendWd, Some(*proto)),
    }
}

/// A "most recent occurrence" cell: all event ids sharing the latest
/// timestamp for a key (batched I/Os share timestamps, e.g. the
/// announcements of one BGP update message).
#[derive(Clone, Debug, Default)]
struct Latest {
    time: SimTime,
    ids: Vec<EventId>,
}

impl Latest {
    fn note(&mut self, id: EventId, t: SimTime) {
        if self.ids.is_empty() || t > self.time {
            self.time = t;
            self.ids = vec![id];
        } else if t == self.time {
            self.ids.push(id);
        }
    }
}

/// Nearest-match state maintained during the sweep.
#[derive(Clone, Default)]
struct Maps {
    /// (router, proto, prefix?) → latest recv (advert or withdraw).
    recv: HashMap<(RouterId, Proto, Option<Ipv4Prefix>), Latest>,
    /// (router, proto) → latest recv of any prefix (for OSPF-style and
    /// fallback matching).
    recv_any: HashMap<(RouterId, Proto), Latest>,
    /// (router, proto, prefix) → latest RIB event.
    rib: HashMap<(RouterId, Proto, Ipv4Prefix), Latest>,
    /// router → latest IGP RIB event of any prefix (BGP next-hop
    /// resolution fallback).
    igp_rib_any: HashMap<RouterId, Latest>,
    /// (router, prefix) → latest FIB event.
    fib: HashMap<(RouterId, Ipv4Prefix), Latest>,
    /// (sender, addressee, proto, prefix?) → latest send.
    send: HashMap<(RouterId, RouterId, Proto, Option<Ipv4Prefix>), Latest>,
    /// router → latest soft reconfiguration.
    soft: HashMap<RouterId, Latest>,
    /// router → latest hardware status change.
    link: HashMap<RouterId, Latest>,
    /// router → latest configuration input.
    config: HashMap<RouterId, Latest>,
}

/// One candidate antecedent set with the rule that proposed it.
struct Candidate {
    time: SimTime,
    ids: Vec<EventId>,
    rule: &'static str,
}

fn push_candidate(
    out: &mut Vec<Candidate>,
    cell: Option<&Latest>,
    rule: &'static str,
    before: SimTime,
) {
    if let Some(l) = cell {
        if !l.ids.is_empty() && l.time <= before {
            out.push(Candidate {
                time: l.time,
                ids: l.ids.clone(),
                rule,
            });
        }
    }
}

/// Which rule classes a [`RuleSweep`] applies — the knob that makes rule
/// matching shardable.
///
/// Every rule except send→recv relates two events *on the same router*
/// (all its candidate maps are keyed by the consequent's router and
/// populated only by that router's events). The send→recv rule is the
/// sole cross-router rule, and it is the *only* rule that ever fires for
/// a recv consequent. Splitting on that line lets per-router shards and
/// per-(proto, prefix) shards each reproduce their half of the sequential
/// output exactly — including the proximate-cause filter, which never
/// mixes candidates across the two halves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RuleScope {
    /// Apply every rule (the sequential batch and incremental paths).
    All,
    /// Router-local rules only; the send→recv rule is skipped. Feed one
    /// router's events.
    LocalOnly,
    /// The send→recv rule only. Feed the send/recv events of one
    /// (proto, prefix) group — the send map is keyed by
    /// `(sender, addressee, proto, prefix)`, so lookups never leave the
    /// group.
    CrossOnly,
}

/// A resumable rule-matching sweep.
///
/// Feed events in `(time, id)` order via [`step`](RuleSweep::step); each
/// call appends the HBRs whose consequent is that event. This is the one
/// code path shared by [`match_rules`] (batch), the parallel shards of
/// [`infer_hbg_parallel`](crate::infer::infer_hbg_parallel), and the
/// incremental [`HbgBuilder`](crate::builder::HbgBuilder).
#[derive(Clone, Default)]
pub struct RuleSweep {
    maps: Maps,
}

impl RuleSweep {
    /// A fresh sweep with empty nearest-match state.
    pub fn new() -> Self {
        RuleSweep::default()
    }

    /// Processes one event: appends the matched HBRs (consequent `e`) to
    /// `out`, then folds `e` into the nearest-match maps. Events must be
    /// fed in `(time, id)` order.
    pub fn step(&mut self, e: &IoEvent, scope: RuleScope, out: &mut Vec<Hbr>) {
        let maps = &self.maps;
        let mut cands: Vec<Candidate> = Vec::new();
        let r = e.router;
        let t = e.time;
        let local = scope != RuleScope::CrossOnly;
        let cross = scope != RuleScope::LocalOnly;
        match &e.kind {
            IoKind::ConfigChange { .. } | IoKind::LinkStatus { .. } => {
                // Inputs from outside the control plane: roots.
            }
            IoKind::SoftReconfig { .. } if local => {
                push_candidate(&mut cands, maps.config.get(&r), "config->soft", t);
            }
            IoKind::RecvAdvert {
                proto,
                prefix,
                from,
                ..
            }
            | IoKind::RecvWithdraw {
                proto,
                prefix,
                from,
                ..
            } if cross => {
                // [R' send P to R] → [R recv P from R'].
                if let Some(PeerRef::Internal(sender)) = from {
                    push_candidate(
                        &mut cands,
                        maps.send.get(&(*sender, r, *proto, *prefix)),
                        "send->recv",
                        t,
                    );
                }
            }
            IoKind::RibInstall { proto, prefix, .. } | IoKind::RibRemove { proto, prefix }
                if local =>
            {
                // [recv advert P] → [install P in RIB], plus the
                // non-message triggers: soft reconfig, hardware change,
                // and (for BGP) IGP RIB changes that re-resolve next hops.
                push_candidate(
                    &mut cands,
                    maps.recv.get(&(r, *proto, Some(*prefix))),
                    "recv->rib",
                    t,
                );
                if *proto != Proto::Bgp {
                    // Link-state and DV protocols update many prefixes per
                    // message; the message is not per-prefix (OSPF) or may
                    // batch (RIP/EIGRP).
                    push_candidate(&mut cands, maps.recv_any.get(&(r, *proto)), "recv*->rib", t);
                }
                push_candidate(&mut cands, maps.soft.get(&r), "soft->rib", t);
                push_candidate(&mut cands, maps.link.get(&r), "link->rib", t);
                push_candidate(&mut cands, maps.config.get(&r), "config->rib", t);
                if *proto == Proto::Bgp {
                    push_candidate(&mut cands, maps.igp_rib_any.get(&r), "igprib->bgprib", t);
                }
            }
            IoKind::FibInstall { prefix, .. } | IoKind::FibRemove { prefix } if local => {
                // [install P in RIB] → [install P in FIB], any protocol.
                for proto in [Proto::Bgp, Proto::Ospf, Proto::Rip, Proto::Eigrp] {
                    push_candidate(
                        &mut cands,
                        maps.rib.get(&(r, proto, *prefix)),
                        "rib->fib",
                        t,
                    );
                }
            }
            IoKind::SendAdvert { proto, prefix, .. }
            | IoKind::SendWithdraw { proto, prefix, .. }
                if local =>
            {
                match proto {
                    Proto::Eigrp => {
                        // EIGRP: [install P in FIB] → [send P] (§4.1).
                        if let Some(p) = prefix {
                            push_candidate(&mut cands, maps.fib.get(&(r, *p)), "fib->send", t);
                        }
                        push_candidate(
                            &mut cands,
                            maps.recv_any.get(&(r, Proto::Eigrp)),
                            "recv*->send",
                            t,
                        );
                    }
                    Proto::Bgp => {
                        // BGP: [install P in BGP RIB] → [send P].
                        if let Some(p) = prefix {
                            push_candidate(
                                &mut cands,
                                maps.rib.get(&(r, Proto::Bgp, *p)),
                                "rib->send",
                                t,
                            );
                            push_candidate(
                                &mut cands,
                                maps.recv.get(&(r, Proto::Bgp, Some(*p))),
                                "recv->send",
                                t,
                            );
                        }
                        push_candidate(&mut cands, maps.soft.get(&r), "soft->send", t);
                    }
                    Proto::Ospf | Proto::Rip => {
                        if let Some(p) = prefix {
                            push_candidate(
                                &mut cands,
                                maps.rib.get(&(r, *proto, *p)),
                                "rib->send",
                                t,
                            );
                        }
                        // Flooding: a send is usually triggered directly
                        // by the message (or hardware event) that carried
                        // the news.
                        push_candidate(
                            &mut cands,
                            maps.recv_any.get(&(r, *proto)),
                            "recv*->send",
                            t,
                        );
                        push_candidate(&mut cands, maps.link.get(&r), "link->send", t);
                        push_candidate(&mut cands, maps.config.get(&r), "config->send", t);
                    }
                }
            }
            _ => {}
        }
        // The most recent candidate class wins (causes are proximate);
        // ties across classes all count.
        if let Some(best_t) = cands.iter().map(|c| c.time).max() {
            for c in cands.into_iter().filter(|c| c.time == best_t) {
                for id in c.ids {
                    if id != e.id {
                        out.push(Hbr {
                            from: id,
                            to: e.id,
                            confidence: 1.0,
                            source: HbrSource::Rule(c.rule),
                        });
                    }
                }
            }
        }
        // Update the maps with this event.
        let maps = &mut self.maps;
        let id = e.id;
        match &e.kind {
            IoKind::ConfigChange { .. } => maps.config.entry(r).or_default().note(id, t),
            IoKind::SoftReconfig { .. } => maps.soft.entry(r).or_default().note(id, t),
            IoKind::LinkStatus { .. } => maps.link.entry(r).or_default().note(id, t),
            IoKind::RecvAdvert { proto, prefix, .. }
            | IoKind::RecvWithdraw { proto, prefix, .. } => {
                maps.recv
                    .entry((r, *proto, *prefix))
                    .or_default()
                    .note(id, t);
                maps.recv_any.entry((r, *proto)).or_default().note(id, t);
            }
            IoKind::RibInstall { proto, prefix, .. } | IoKind::RibRemove { proto, prefix } => {
                maps.rib
                    .entry((r, *proto, *prefix))
                    .or_default()
                    .note(id, t);
                if *proto != Proto::Bgp {
                    maps.igp_rib_any.entry(r).or_default().note(id, t);
                }
            }
            IoKind::FibInstall { prefix, .. } | IoKind::FibRemove { prefix } => {
                maps.fib.entry((r, *prefix)).or_default().note(id, t);
            }
            IoKind::SendAdvert {
                proto, prefix, to, ..
            }
            | IoKind::SendWithdraw { proto, prefix, to } => {
                if let Some(PeerRef::Internal(addressee)) = to {
                    maps.send
                        .entry((r, *addressee, *proto, *prefix))
                        .or_default()
                        .note(id, t);
                }
            }
        }
    }
}

/// Runs rule matching over a set of events (must be from the same trace;
/// typically either all events or only those that have arrived at the
/// verifier). Returns the inferred HBRs.
pub fn match_rules(events: &[&IoEvent]) -> Vec<Hbr> {
    let mut sorted: Vec<&IoEvent> = events.to_vec();
    sorted.sort_by_key(|e| (e.time, e.id));
    let mut sweep = RuleSweep::new();
    let mut out = Vec::new();
    for e in &sorted {
        sweep.step(e, RuleScope::All, &mut out);
    }
    out
}

/// Convenience: rule matching over a whole trace.
pub fn match_rules_on(trace: &Trace) -> Vec<Hbr> {
    let refs: Vec<&IoEvent> = trace.events.iter().collect();
    match_rules(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_sim::IoEvent;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    struct TB {
        events: Vec<IoEvent>,
    }

    impl TB {
        fn new() -> Self {
            TB { events: Vec::new() }
        }
        fn ev(&mut self, router: u32, t_us: u64, kind: IoKind) -> EventId {
            let id = EventId(self.events.len() as u32);
            self.events.push(IoEvent {
                id,
                router: RouterId(router),
                time: SimTime::from_micros(t_us),
                arrived_at: Some(SimTime::from_micros(t_us)),
                kind,
            });
            id
        }
        fn run(&self) -> Vec<Hbr> {
            let refs: Vec<&IoEvent> = self.events.iter().collect();
            match_rules(&refs)
        }
    }

    fn has_edge(hbrs: &[Hbr], from: EventId, to: EventId) -> bool {
        hbrs.iter().any(|h| h.from == from && h.to == to)
    }

    #[test]
    fn recv_to_rib_to_fib_to_send_chain() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        let recv = b.ev(
            0,
            0,
            IoKind::RecvAdvert {
                proto: Proto::Bgp,
                prefix: Some(p),
                from: Some(PeerRef::Internal(RouterId(1))),
                route: None,
            },
        );
        let rib = b.ev(
            0,
            10,
            IoKind::RibInstall {
                proto: Proto::Bgp,
                prefix: p,
                route: None,
            },
        );
        let fib = b.ev(
            0,
            20,
            IoKind::FibInstall {
                prefix: p,
                action: cpvr_dataplane::FibAction::Drop,
            },
        );
        let send = b.ev(
            0,
            30,
            IoKind::SendAdvert {
                proto: Proto::Bgp,
                prefix: Some(p),
                to: Some(PeerRef::Internal(RouterId(2))),
                route: None,
            },
        );
        let hbrs = b.run();
        assert!(has_edge(&hbrs, recv, rib));
        assert!(has_edge(&hbrs, rib, fib));
        assert!(has_edge(&hbrs, rib, send), "BGP sends after RIB install");
        assert!(
            !has_edge(&hbrs, fib, send),
            "BGP send must not hang off the FIB"
        );
    }

    #[test]
    fn eigrp_send_hangs_off_fib() {
        let mut b = TB::new();
        let p = pfx("10.0.0.0/8");
        let _rib = b.ev(
            0,
            10,
            IoKind::RibInstall {
                proto: Proto::Eigrp,
                prefix: p,
                route: None,
            },
        );
        let fib = b.ev(
            0,
            20,
            IoKind::FibInstall {
                prefix: p,
                action: cpvr_dataplane::FibAction::Local,
            },
        );
        let send = b.ev(
            0,
            30,
            IoKind::SendAdvert {
                proto: Proto::Eigrp,
                prefix: Some(p),
                to: Some(PeerRef::Internal(RouterId(1))),
                route: None,
            },
        );
        let hbrs = b.run();
        assert!(
            has_edge(&hbrs, fib, send),
            "EIGRP advertises after the FIB install (§4.1)"
        );
    }

    #[test]
    fn cross_router_send_recv() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        let send = b.ev(
            1,
            0,
            IoKind::SendAdvert {
                proto: Proto::Bgp,
                prefix: Some(p),
                to: Some(PeerRef::Internal(RouterId(0))),
                route: None,
            },
        );
        let recv = b.ev(
            0,
            8000,
            IoKind::RecvAdvert {
                proto: Proto::Bgp,
                prefix: Some(p),
                from: Some(PeerRef::Internal(RouterId(1))),
                route: None,
            },
        );
        let hbrs = b.run();
        assert!(has_edge(&hbrs, send, recv));
    }

    #[test]
    fn external_recv_is_root() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        let recv = b.ev(
            0,
            0,
            IoKind::RecvAdvert {
                proto: Proto::Bgp,
                prefix: Some(p),
                from: Some(PeerRef::External(cpvr_topo::ExtPeerId(0))),
                route: None,
            },
        );
        let hbrs = b.run();
        assert!(
            hbrs.iter().all(|h| h.to != recv),
            "external recv has no antecedent"
        );
    }

    #[test]
    fn config_soft_rib_chain() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        let cfg = b.ev(
            1,
            0,
            IoKind::ConfigChange {
                desc: "lp".into(),
                change: None,
                inverse: None,
            },
        );
        let soft = b.ev(1, 25_000_000, IoKind::SoftReconfig { desc: "lp".into() });
        let rib = b.ev(
            1,
            25_004_000,
            IoKind::RibInstall {
                proto: Proto::Bgp,
                prefix: p,
                route: None,
            },
        );
        let hbrs = b.run();
        assert!(has_edge(&hbrs, cfg, soft));
        assert!(has_edge(&hbrs, soft, rib));
        assert!(
            !has_edge(&hbrs, cfg, rib),
            "rib hangs off the soft reconfig, not the config"
        );
    }

    #[test]
    fn proximate_cause_beats_stale_recv() {
        // An old recv for P exists, but a fresher soft-reconfig is the
        // proximate trigger of the RIB change.
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        let old_recv = b.ev(
            0,
            0,
            IoKind::RecvAdvert {
                proto: Proto::Bgp,
                prefix: Some(p),
                from: Some(PeerRef::External(cpvr_topo::ExtPeerId(0))),
                route: None,
            },
        );
        let soft = b.ev(0, 1_000_000, IoKind::SoftReconfig { desc: "x".into() });
        let rib = b.ev(
            0,
            1_004_000,
            IoKind::RibInstall {
                proto: Proto::Bgp,
                prefix: p,
                route: None,
            },
        );
        let hbrs = b.run();
        assert!(has_edge(&hbrs, soft, rib));
        assert!(!has_edge(&hbrs, old_recv, rib));
    }

    #[test]
    fn batched_recvs_share_the_edge() {
        // Withdraw + announce in one update (same timestamp) both parent
        // the RIB change.
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        let wd = b.ev(
            0,
            100,
            IoKind::RecvWithdraw {
                proto: Proto::Bgp,
                prefix: Some(p),
                from: Some(PeerRef::Internal(RouterId(1))),
            },
        );
        let ad = b.ev(
            0,
            100,
            IoKind::RecvAdvert {
                proto: Proto::Bgp,
                prefix: Some(p),
                from: Some(PeerRef::Internal(RouterId(1))),
                route: None,
            },
        );
        let rib = b.ev(
            0,
            110,
            IoKind::RibInstall {
                proto: Proto::Bgp,
                prefix: p,
                route: None,
            },
        );
        let hbrs = b.run();
        assert!(has_edge(&hbrs, wd, rib));
        assert!(has_edge(&hbrs, ad, rib));
    }

    #[test]
    fn ospf_rib_matches_prefixless_recv() {
        let mut b = TB::new();
        let p = pfx("10.255.0.2/32");
        let recv = b.ev(
            0,
            0,
            IoKind::RecvAdvert {
                proto: Proto::Ospf,
                prefix: None,
                from: Some(PeerRef::Internal(RouterId(1))),
                route: None,
            },
        );
        let rib = b.ev(
            0,
            10,
            IoKind::RibInstall {
                proto: Proto::Ospf,
                prefix: p,
                route: None,
            },
        );
        let hbrs = b.run();
        assert!(has_edge(&hbrs, recv, rib));
    }

    #[test]
    fn antecedent_must_not_be_later() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        let rib = b.ev(
            0,
            0,
            IoKind::RibInstall {
                proto: Proto::Bgp,
                prefix: p,
                route: None,
            },
        );
        let _late_recv = b.ev(
            0,
            10,
            IoKind::RecvAdvert {
                proto: Proto::Bgp,
                prefix: Some(p),
                from: Some(PeerRef::Internal(RouterId(1))),
                route: None,
            },
        );
        let hbrs = b.run();
        assert!(hbrs.iter().all(|h| h.to != rib));
    }
}
