//! Shard assignment for the partitioned merger fold.
//!
//! The collector's sharded pipeline partitions verification state across
//! worker threads. A [`ShardPlan`] is the single deterministic routing
//! authority all parties agree on:
//!
//! - **Routers** are assigned round-robin ([`of_router`](ShardPlan::of_router)):
//!   a router's export stream is FIFO and the tracker's arrival clamp
//!   couples every record of the stream, so a stream is indivisible and
//!   must live whole on one shard.
//! - **Conversations** (send→recv pairs, the only cross-router coupling
//!   in the fold) are assigned by **prefix range**
//!   ([`of_prefix`](ShardPlan::of_prefix)): the address space is split
//!   into `shards` contiguous ranges, either uniformly or balanced over
//!   the prefixes observed in a
//!   [`PrefixTrie`](cpvr_types::PrefixTrie) (e.g. the data plane's
//!   union trie). Conversations with no prefix fall back to the
//!   addressee router's shard — EC affinity, so repeated traffic for one
//!   equivalence class lands on one shard.
//!
//! The plan is pure data (a boundary table); every thread can hold a
//! copy and route without coordination.

use cpvr_types::{Ipv4Prefix, PrefixTrie, RouterId};

/// Deterministic shard routing for routers, prefixes, and conversations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    shards: u32,
    /// Upper bounds (exclusive) of each shard's address range, as
    /// `u64` so the final bound `1 << 32` is representable.
    bounds: Vec<u64>,
}

impl ShardPlan {
    /// A plan splitting the IPv4 address space into `shards` equal
    /// contiguous ranges. `shards` is clamped to at least 1.
    pub fn uniform(shards: u32) -> Self {
        let shards = shards.max(1);
        let bounds = (1..=shards as u64)
            .map(|k| (k << 32) / shards as u64)
            .collect();
        ShardPlan { shards, bounds }
    }

    /// A plan whose range boundaries balance the given observed
    /// prefixes: each shard owns (as close as possible) an equal count
    /// of them. Falls back to [`uniform`](Self::uniform) when fewer
    /// prefixes than shards are given.
    pub fn from_prefixes(prefixes: &[Ipv4Prefix], shards: u32) -> Self {
        let shards = shards.max(1);
        let mut addrs: Vec<u64> = prefixes.iter().map(|p| p.bits() as u64).collect();
        addrs.sort_unstable();
        addrs.dedup();
        if addrs.len() < shards as usize {
            return Self::uniform(shards);
        }
        let mut bounds: Vec<u64> = Vec::with_capacity(shards as usize);
        for k in 1..shards as u64 {
            // First address of shard k: the boundary is exclusive for
            // shard k-1.
            let idx = (k as usize * addrs.len()) / shards as usize;
            bounds.push(addrs[idx]);
        }
        bounds.push(1 << 32);
        ShardPlan { shards, bounds }
    }

    /// A plan balanced over the prefixes present in a union trie (the
    /// collector uses the data plane's
    /// [`prefix_union`](cpvr_dataplane::DataPlane::prefix_union)).
    pub fn from_union_trie<V>(trie: &PrefixTrie<V>, shards: u32) -> Self {
        Self::from_prefixes(&trie.prefixes(), shards)
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning a router's export stream.
    pub fn of_router(&self, r: RouterId) -> u32 {
        r.index() as u32 % self.shards
    }

    /// The shard owning a prefix (by its network address range).
    pub fn of_prefix(&self, p: &Ipv4Prefix) -> u32 {
        let addr = p.bits() as u64;
        self.bounds.partition_point(|b| *b <= addr) as u32
    }

    /// The shard owning a conversation `(sender, addressee, proto,
    /// prefix)`: by prefix range when the conversation carries a
    /// prefix, otherwise the addressee router's shard (EC affinity).
    pub fn of_conv(&self, key: &crate::snapshot::ConvKey) -> u32 {
        match &key.3 {
            Some(p) => self.of_prefix(p),
            None => self.of_router(key.1),
        }
    }
}

/// Ownership routing for a *federation* of collector processes: the
/// cross-process analogue of [`ShardPlan`]. Member `k` of an `members`-way
/// federation owns exactly the routers and conversations the inner plan
/// assigns to shard `k` — the same indivisible-stream and
/// conversation-affinity arguments apply, only the "shards" are now
/// separate collectors exchanging peer frames over TCP instead of worker
/// threads exchanging messages over channels.
///
/// Every member holds an identical copy (it is pure data), so routing
/// decisions — which member a router's stream belongs to, which member
/// judges a conversation — never need coordination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FederationPlan {
    inner: ShardPlan,
}

impl FederationPlan {
    /// A federation of `members` collectors splitting the address space
    /// uniformly. `members` is clamped to at least 1.
    pub fn uniform(members: u32) -> Self {
        FederationPlan {
            inner: ShardPlan::uniform(members),
        }
    }

    /// A federation whose conversation ranges balance the given observed
    /// prefixes (see [`ShardPlan::from_prefixes`]).
    pub fn from_prefixes(prefixes: &[Ipv4Prefix], members: u32) -> Self {
        FederationPlan {
            inner: ShardPlan::from_prefixes(prefixes, members),
        }
    }

    /// Number of members in the federation.
    pub fn members(&self) -> u32 {
        self.inner.shards()
    }

    /// The member owning a router's export stream.
    pub fn of_router(&self, r: RouterId) -> u32 {
        self.inner.of_router(r)
    }

    /// The member owning (judging) a conversation.
    pub fn of_conv(&self, key: &crate::snapshot::ConvKey) -> u32 {
        self.inner.of_conv(key)
    }

    /// The underlying shard plan — what a member hands to its
    /// [`TrackerSlice`](crate::snapshot::TrackerSlice), whose slice
    /// index is the member index.
    pub fn as_shard_plan(&self) -> &ShardPlan {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn uniform_covers_whole_space() {
        for shards in [1u32, 2, 3, 4, 8] {
            let plan = ShardPlan::uniform(shards);
            assert_eq!(plan.of_prefix(&pfx("0.0.0.0/0")), 0);
            assert_eq!(plan.of_prefix(&pfx("255.255.255.255/32")), shards - 1);
            // Every assignment is in range.
            for a in [0u32, 1 << 16, 1 << 24, u32::MAX / 3, u32::MAX] {
                let p = Ipv4Prefix::from_bits(a, 32);
                assert!(plan.of_prefix(&p) < shards);
            }
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        let plan = ShardPlan::uniform(1);
        assert_eq!(plan.of_router(RouterId(17)), 0);
        assert_eq!(plan.of_prefix(&pfx("203.0.113.0/24")), 0);
    }

    #[test]
    fn from_prefixes_balances_counts() {
        let prefixes: Vec<Ipv4Prefix> = (0..64u32)
            .map(|i| Ipv4Prefix::from_bits(i << 24, 24))
            .collect();
        let plan = ShardPlan::from_prefixes(&prefixes, 4);
        let mut per = [0usize; 4];
        for p in &prefixes {
            per[plan.of_prefix(p) as usize] += 1;
        }
        assert_eq!(per, [16, 16, 16, 16]);
    }

    #[test]
    fn conv_without_prefix_uses_addressee() {
        let plan = ShardPlan::uniform(4);
        let key = (RouterId(0), RouterId(3), cpvr_sim::Proto::Bgp, None);
        assert_eq!(plan.of_conv(&key), plan.of_router(RouterId(3)));
    }

    #[test]
    fn federation_plan_mirrors_its_shard_plan() {
        let fed = FederationPlan::uniform(3);
        let shards = ShardPlan::uniform(3);
        assert_eq!(fed.members(), 3);
        for r in 0..12u32 {
            assert_eq!(fed.of_router(RouterId(r)), shards.of_router(RouterId(r)));
        }
        for a in [0u32, 1 << 20, u32::MAX / 2, u32::MAX] {
            let key = (
                RouterId(0),
                RouterId(1),
                cpvr_sim::Proto::Bgp,
                Some(Ipv4Prefix::from_bits(a, 32)),
            );
            assert_eq!(fed.of_conv(&key), shards.of_conv(&key));
        }
        assert_eq!(fed.as_shard_plan(), &shards);
    }
}
