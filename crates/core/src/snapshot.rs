//! Consistent data-plane snapshots (§5).
//!
//! A distributed snapshot of the FIBs is *consistent* when it reflects
//! the entries a packet could encounter at one instant: "if a FIB
//! snapshot from one router R was taken after applying a route update U,
//! then the FIB snapshot from every other router that had previously
//! received U must also have been taken after applying U."
//!
//! Operationally, the verifier only ever sees the I/O records that have
//! *arrived* (each router exports its log in order, but with skew — the
//! Fig. 1c problem). The check here is causal closure of the arrived set:
//! every arrived `recv` from an in-domain router must be matched by the
//! arrived `send` that produced it. Because per-router export is FIFO,
//! having the send means having everything the sender did before it —
//! including the FIB update the paper's walk looks for. An orphan recv is
//! exactly the §7 signature ("the HBG on R3 contains a route via R1 that
//! has not been announced in the HBG received from R1"), and the verifier
//! answers by *waiting* for the named routers instead of raising a false
//! alarm.

use cpvr_bgp::PeerRef;
use cpvr_dataplane::{DataPlane, FibAction, FibUpdate, UpdateKind};
use cpvr_sim::{IoEvent, IoKind, Proto, Trace};
use cpvr_topo::Topology;
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use cpvr_verify::{verify, Policy, VerifyReport};
use std::collections::BTreeMap;

/// The verdict on a snapshot horizon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotStatus {
    /// The arrived events are causally closed; the snapshot is safe to
    /// verify.
    Consistent,
    /// Records from these routers are outstanding; the verifier should
    /// wait for them before judging the data plane.
    WaitFor(Vec<RouterId>),
}

impl SnapshotStatus {
    /// True when consistent.
    pub fn is_consistent(&self) -> bool {
        matches!(self, SnapshotStatus::Consistent)
    }
}

/// Checks causal closure of the events that have arrived by `horizon`.
pub fn consistency_check(trace: &Trace, horizon: SimTime) -> SnapshotStatus {
    let arrived = trace.arrived_by(horizon);
    consistency_check_events(&arrived)
}

/// [`consistency_check`] over an explicit arrived-event set.
pub fn consistency_check_events(arrived: &[&IoEvent]) -> SnapshotStatus {
    type Key = (RouterId, RouterId, Proto, Option<Ipv4Prefix>);
    let mut sends: BTreeMap<Key, Vec<SimTime>> = BTreeMap::new();
    let mut recvs: BTreeMap<Key, Vec<SimTime>> = BTreeMap::new();
    for e in arrived {
        match &e.kind {
            IoKind::SendAdvert { proto, prefix, to: Some(PeerRef::Internal(to)), .. }
            | IoKind::SendWithdraw { proto, prefix, to: Some(PeerRef::Internal(to)), .. } => {
                sends.entry((e.router, *to, *proto, *prefix)).or_default().push(e.time);
            }
            IoKind::RecvAdvert { proto, prefix, from: Some(PeerRef::Internal(from)), .. }
            | IoKind::RecvWithdraw { proto, prefix, from: Some(PeerRef::Internal(from)), .. } => {
                recvs.entry((*from, e.router, *proto, *prefix)).or_default().push(e.time);
            }
            _ => {}
        }
    }
    let mut missing: Vec<RouterId> = Vec::new();
    for (key, mut rs) in recvs {
        rs.sort();
        let mut ss = sends.remove(&key).unwrap_or_default();
        ss.sort();
        // The i-th recv (in time order) needs at least i+1 sends no later
        // than it.
        for (i, rt) in rs.iter().enumerate() {
            let avail = ss.iter().filter(|st| *st <= rt).count();
            if avail < i + 1 {
                missing.push(key.0);
                break;
            }
        }
    }
    missing.sort();
    missing.dedup();
    if missing.is_empty() {
        SnapshotStatus::Consistent
    } else {
        SnapshotStatus::WaitFor(missing)
    }
}

/// Assembles the FIB state from the FIB events that arrived by `horizon`
/// — the naive snapshot a data-plane verifier without HBG support would
/// use.
pub fn snapshot_arrived_by(trace: &Trace, n_routers: usize, horizon: SimTime) -> DataPlane {
    let mut arrived = trace.arrived_by(horizon);
    arrived.sort_by_key(|e| (e.time, e.id));
    let mut dp = DataPlane::new(n_routers);
    for e in arrived {
        match &e.kind {
            IoKind::FibInstall { prefix, action } => dp.apply(&FibUpdate {
                router: e.router,
                prefix: *prefix,
                kind: UpdateKind::Install,
                action: *action,
                at: e.time,
            }),
            IoKind::FibRemove { prefix } => dp.apply(&FibUpdate {
                router: e.router,
                prefix: *prefix,
                kind: UpdateKind::Remove,
                action: FibAction::Drop,
                at: e.time,
            }),
            _ => {}
        }
        dp.set_taken_at(e.router, e.time.max(dp.taken_at(e.router)));
    }
    dp
}

/// The HBG-gated snapshot: `Ok(dataplane)` when the horizon is causally
/// closed, `Err(routers to wait for)` otherwise.
pub fn consistent_snapshot(
    trace: &Trace,
    n_routers: usize,
    horizon: SimTime,
) -> Result<DataPlane, Vec<RouterId>> {
    match consistency_check(trace, horizon) {
        SnapshotStatus::Consistent => Ok(snapshot_arrived_by(trace, n_routers, horizon)),
        SnapshotStatus::WaitFor(rs) => Err(rs),
    }
}

/// Verifies at `horizon` the naive way: whatever arrived is the truth.
/// This is what produces Fig. 1c's false loop alarm.
pub fn naive_verify_at(
    trace: &Trace,
    topo: &Topology,
    policies: &[Policy],
    horizon: SimTime,
) -> VerifyReport {
    let dp = snapshot_arrived_by(trace, topo.num_routers(), horizon);
    verify(topo, &dp, policies)
}

/// Verifies the HBG-gated way: if the horizon is not causally closed,
/// advance it by `step` (waiting for more records) up to `max_horizon`.
/// Returns the horizon actually verified at and the report, or `None` if
/// consistency was never reached (e.g. records were lost).
pub fn verify_when_consistent(
    trace: &Trace,
    topo: &Topology,
    policies: &[Policy],
    mut horizon: SimTime,
    max_horizon: SimTime,
    step: SimTime,
) -> Option<(SimTime, VerifyReport)> {
    loop {
        match consistent_snapshot(trace, topo.num_routers(), horizon) {
            Ok(dp) => return Some((horizon, verify(topo, &dp, policies))),
            Err(_) => {
                if horizon >= max_horizon {
                    return None;
                }
                horizon = (horizon + step).min(max_horizon);
            }
        }
    }
}


/// A sweep of the data plane's true state across an interval: one
/// verification after every FIB change.
#[derive(Clone, Debug, Default)]
pub struct TransientReport {
    /// FIB-change checkpoints examined.
    pub checkpoints: usize,
    /// Checkpoints at which at least one policy was violated:
    /// `(time, violation count)`.
    pub violating: Vec<(SimTime, usize)>,
}

impl TransientReport {
    /// True if no checkpoint violated.
    pub fn ok(&self) -> bool {
        self.violating.is_empty()
    }

    /// The total time spent in violation, approximated as the span from
    /// each violating checkpoint to the next checkpoint.
    pub fn first_violation(&self) -> Option<SimTime> {
        self.violating.first().map(|(t, _)| *t)
    }
}

/// Verifies the *sequence* of data-plane states across `[from, to]`:
/// replay every FIB event in (event-time) order and verify after each
/// one. §5's goal — "the verifier detects all transient and persistent
/// violations" — needs exactly this: a single converged check misses
/// windows where the network was briefly broken.
///
/// Uses the completed trace's event times, i.e. the *true* succession of
/// global FIB states, so transients found here are real (no capture-skew
/// artifacts).
pub fn verify_throughout(
    trace: &Trace,
    topo: &Topology,
    policies: &[Policy],
    from: SimTime,
    to: SimTime,
) -> TransientReport {
    let mut events: Vec<&IoEvent> = trace.events.iter().collect();
    events.sort_by_key(|e| (e.time, e.id));
    let n = topo.num_routers();
    let mut dp = DataPlane::new(n);
    let mut report = TransientReport::default();
    for e in events {
        let (prefix, update) = match &e.kind {
            IoKind::FibInstall { prefix, action } => (
                *prefix,
                FibUpdate {
                    router: e.router,
                    prefix: *prefix,
                    kind: UpdateKind::Install,
                    action: *action,
                    at: e.time,
                },
            ),
            IoKind::FibRemove { prefix } => (
                *prefix,
                FibUpdate {
                    router: e.router,
                    prefix: *prefix,
                    kind: UpdateKind::Remove,
                    action: FibAction::Drop,
                    at: e.time,
                },
            ),
            _ => continue,
        };
        if e.time > to {
            break;
        }
        dp.apply(&update);
        if e.time < from {
            continue;
        }
        report.checkpoints += 1;
        let vr = cpvr_verify::verify_incremental(topo, &dp, policies, &[prefix]);
        if !vr.ok() {
            report.violating.push((e.time, vr.violations.len()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_sim::EventId;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    struct TB {
        trace: Trace,
    }

    impl TB {
        fn new() -> Self {
            TB { trace: Trace::default() }
        }
        fn ev(&mut self, router: u32, t_ms: u64, arrived_ms: Option<u64>, kind: IoKind) -> EventId {
            let id = EventId(self.trace.events.len() as u32);
            self.trace.events.push(IoEvent {
                id,
                router: RouterId(router),
                time: SimTime::from_millis(t_ms),
                arrived_at: arrived_ms.map(SimTime::from_millis),
                kind,
            });
            id
        }
    }

    fn send(to: u32, p: Ipv4Prefix) -> IoKind {
        IoKind::SendAdvert {
            proto: Proto::Bgp,
            prefix: Some(p),
            to: Some(PeerRef::Internal(RouterId(to))),
            route: None,
        }
    }

    fn recv(from: u32, p: Ipv4Prefix) -> IoKind {
        IoKind::RecvAdvert {
            proto: Proto::Bgp,
            prefix: Some(p),
            from: Some(PeerRef::Internal(RouterId(from))),
            route: None,
        }
    }

    #[test]
    fn matched_send_recv_is_consistent() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        b.ev(1, 10, Some(11), send(0, p));
        b.ev(0, 18, Some(19), recv(1, p));
        assert_eq!(
            consistency_check(&b.trace, SimTime::from_millis(100)),
            SnapshotStatus::Consistent
        );
    }

    #[test]
    fn orphan_recv_names_the_sender() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        // R2's send record is delayed beyond the horizon; R1's recv
        // arrived. This is the paper's §7 inconsistency signature.
        b.ev(1, 10, Some(500), send(0, p));
        b.ev(0, 18, Some(19), recv(1, p));
        assert_eq!(
            consistency_check(&b.trace, SimTime::from_millis(100)),
            SnapshotStatus::WaitFor(vec![RouterId(1)])
        );
        // Waiting long enough resolves it.
        assert!(consistency_check(&b.trace, SimTime::from_millis(600)).is_consistent());
    }

    #[test]
    fn counting_matches_repeated_updates() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        // Two sends, two recvs: consistent. One send arrived, two recvs:
        // not.
        b.ev(1, 10, Some(11), send(0, p));
        b.ev(0, 18, Some(19), recv(1, p));
        b.ev(1, 30, Some(200), send(0, p));
        b.ev(0, 38, Some(39), recv(1, p));
        assert_eq!(
            consistency_check(&b.trace, SimTime::from_millis(100)),
            SnapshotStatus::WaitFor(vec![RouterId(1)])
        );
        assert!(consistency_check(&b.trace, SimTime::from_millis(300)).is_consistent());
    }

    #[test]
    fn external_recvs_do_not_require_sends() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        b.ev(0, 5, Some(6), IoKind::RecvAdvert {
            proto: Proto::Bgp,
            prefix: Some(p),
            from: Some(PeerRef::External(cpvr_topo::ExtPeerId(0))),
            route: None,
        });
        assert!(consistency_check(&b.trace, SimTime::from_millis(100)).is_consistent());
    }

    #[test]
    fn lost_send_record_never_becomes_consistent() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        b.ev(1, 10, None, send(0, p));
        b.ev(0, 18, Some(19), recv(1, p));
        assert!(!consistency_check(&b.trace, SimTime::from_secs(10)).is_consistent());
    }

    #[test]
    fn snapshot_uses_arrivals_not_event_times() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        b.ev(0, 10, Some(100), IoKind::FibInstall { prefix: p, action: FibAction::Drop });
        let dp50 = snapshot_arrived_by(&b.trace, 1, SimTime::from_millis(50));
        assert!(dp50.fib(RouterId(0)).is_empty(), "record not arrived yet");
        let dp150 = snapshot_arrived_by(&b.trace, 1, SimTime::from_millis(150));
        assert_eq!(dp150.fib(RouterId(0)).len(), 1);
    }

    #[test]
    fn fifo_export_orders_a_routers_records() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        // Raw arrivals inverted (20ms event sampled to arrive before the
        // 10ms one); FIFO export must clamp the later event's arrival.
        b.ev(0, 10, Some(90), IoKind::FibInstall { prefix: p, action: FibAction::Drop });
        b.ev(0, 20, Some(30), IoKind::FibRemove { prefix: p });
        let dp = snapshot_arrived_by(&b.trace, 1, SimTime::from_millis(50));
        assert!(
            dp.fib(RouterId(0)).is_empty(),
            "neither record is visible: the remove cannot overtake the install"
        );
        let dp = snapshot_arrived_by(&b.trace, 1, SimTime::from_millis(95));
        assert!(dp.fib(RouterId(0)).is_empty(), "both visible: install then remove");
    }
}
