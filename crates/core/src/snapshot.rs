//! Consistent data-plane snapshots (§5).
//!
//! A distributed snapshot of the FIBs is *consistent* when it reflects
//! the entries a packet could encounter at one instant: "if a FIB
//! snapshot from one router R was taken after applying a route update U,
//! then the FIB snapshot from every other router that had previously
//! received U must also have been taken after applying U."
//!
//! Operationally, the verifier only ever sees the I/O records that have
//! *arrived* (each router exports its log in order, but with skew — the
//! Fig. 1c problem). The check here is causal closure of the arrived set:
//! every arrived `recv` from an in-domain router must be matched by the
//! arrived `send` that produced it. Because per-router export is FIFO,
//! having the send means having everything the sender did before it —
//! including the FIB update the paper's walk looks for. An orphan recv is
//! exactly the §7 signature ("the HBG on R3 contains a route via R1 that
//! has not been announced in the HBG received from R1"), and the verifier
//! answers by *waiting* for the named routers instead of raising a false
//! alarm.

use cpvr_bgp::PeerRef;
use cpvr_dataplane::{DataPlane, FibAction, FibUpdate, UpdateKind};
use cpvr_sim::{IoEvent, IoKind, Proto, Trace};
use cpvr_topo::Topology;
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use cpvr_verify::{verify, Policy, VerifyReport};
use std::collections::BTreeMap;

/// The verdict on a snapshot horizon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotStatus {
    /// The arrived events are causally closed; the snapshot is safe to
    /// verify.
    Consistent,
    /// Records from these routers are outstanding; the verifier should
    /// wait for them before judging the data plane.
    WaitFor(Vec<RouterId>),
}

impl SnapshotStatus {
    /// True when consistent.
    pub fn is_consistent(&self) -> bool {
        matches!(self, SnapshotStatus::Consistent)
    }
}

/// Checks causal closure of the events that have arrived by `horizon`.
pub fn consistency_check(trace: &Trace, horizon: SimTime) -> SnapshotStatus {
    let arrived = trace.arrived_by(horizon);
    consistency_check_events(&arrived)
}

/// [`consistency_check`] over an explicit arrived-event set.
pub fn consistency_check_events(arrived: &[&IoEvent]) -> SnapshotStatus {
    type Key = (RouterId, RouterId, Proto, Option<Ipv4Prefix>);
    let mut sends: BTreeMap<Key, Vec<SimTime>> = BTreeMap::new();
    let mut recvs: BTreeMap<Key, Vec<SimTime>> = BTreeMap::new();
    for e in arrived {
        match &e.kind {
            IoKind::SendAdvert {
                proto,
                prefix,
                to: Some(PeerRef::Internal(to)),
                ..
            }
            | IoKind::SendWithdraw {
                proto,
                prefix,
                to: Some(PeerRef::Internal(to)),
                ..
            } => {
                sends
                    .entry((e.router, *to, *proto, *prefix))
                    .or_default()
                    .push(e.time);
            }
            IoKind::RecvAdvert {
                proto,
                prefix,
                from: Some(PeerRef::Internal(from)),
                ..
            }
            | IoKind::RecvWithdraw {
                proto,
                prefix,
                from: Some(PeerRef::Internal(from)),
                ..
            } => {
                recvs
                    .entry((*from, e.router, *proto, *prefix))
                    .or_default()
                    .push(e.time);
            }
            _ => {}
        }
    }
    let mut missing: Vec<RouterId> = Vec::new();
    for (key, mut rs) in recvs {
        rs.sort();
        let mut ss = sends.remove(&key).unwrap_or_default();
        ss.sort();
        // The i-th recv (in time order) needs at least i+1 sends no later
        // than it.
        for (i, rt) in rs.iter().enumerate() {
            let avail = ss.iter().filter(|st| *st <= rt).count();
            if avail < i + 1 {
                missing.push(key.0);
                break;
            }
        }
    }
    missing.sort();
    missing.dedup();
    if missing.is_empty() {
        SnapshotStatus::Consistent
    } else {
        SnapshotStatus::WaitFor(missing)
    }
}

/// A send/recv conversation: `(sender, addressee, proto, prefix)`.
pub type ConvKey = (RouterId, RouterId, Proto, Option<Ipv4Prefix>);

/// Classifies an event as one side of an internal conversation:
/// `Some((key, is_send))` for internal send/recv advert/withdraw
/// events, `None` otherwise. This is the routing predicate the sharded
/// collector uses to decide which shard's conversation slice an event
/// must also reach.
pub fn classify_conv(e: &IoEvent) -> Option<(ConvKey, bool)> {
    match &e.kind {
        IoKind::SendAdvert {
            proto,
            prefix,
            to: Some(PeerRef::Internal(to)),
            ..
        }
        | IoKind::SendWithdraw {
            proto,
            prefix,
            to: Some(PeerRef::Internal(to)),
            ..
        } => Some(((e.router, *to, *proto, *prefix), true)),
        IoKind::RecvAdvert {
            proto,
            prefix,
            from: Some(PeerRef::Internal(from)),
            ..
        }
        | IoKind::RecvWithdraw {
            proto,
            prefix,
            from: Some(PeerRef::Internal(from)),
            ..
        } => Some(((*from, e.router, *proto, *prefix), false)),
        _ => None,
    }
}

/// What the tracker needs to remember about one event after ingest.
#[derive(Clone)]
enum Digest {
    Send(ConvKey),
    Recv(ConvKey),
    FibInstall(Ipv4Prefix, FibAction),
    FibRemove(Ipv4Prefix),
    Other,
}

/// One ingested record on a router's export stream.
#[derive(Clone)]
struct StreamRecord {
    time: SimTime,
    id: cpvr_sim::EventId,
    /// Raw sampled arrival; `None` = the record was lost.
    raw: Option<SimTime>,
    digest: Digest,
}

/// One router's export stream: records in `(time, id)` order plus the
/// consumption frontier.
#[derive(Clone, Default)]
struct RouterStream {
    records: Vec<StreamRecord>,
    /// Records before this index are consumed (arrived and applied) or
    /// permanently lost.
    next: usize,
    /// Running maximum of raw arrivals — the FIFO-export clamp of
    /// [`Trace::effective_arrivals`].
    high: Option<SimTime>,
}

/// Incremental consistency checking and snapshot assembly.
///
/// [`consistency_check`] + [`snapshot_arrived_by`] re-scan the whole
/// trace at every verification epoch. The tracker instead ingests each
/// [`IoEvent`] once (as the capture stream delivers it) and answers
/// [`advance`](Self::advance) in time proportional to the records that
/// *newly arrived* since the previous horizon.
///
/// Correctness rests on two monotonicity facts. First, capture delay is
/// non-negative, so a record's (FIFO-clamped) arrival is never before
/// its event time; combined with per-router FIFO export this makes the
/// arrived set of each router a *prefix* of its `(time, id)`-ordered
/// stream, so a per-router frontier pointer suffices — and because FIB
/// state and capture times are per-router, replaying each router's
/// prefix independently reconstructs exactly the
/// [`snapshot_arrived_by`] data plane. Second, both sides of a
/// conversation key live on a single router each, so per-key send/recv
/// time lists grow append-only and only keys that gained records need
/// their causal-closure verdict rechecked.
#[derive(Clone)]
pub struct ConsistencyTracker {
    streams: Vec<RouterStream>,
    sends: BTreeMap<ConvKey, Vec<SimTime>>,
    recvs: BTreeMap<ConvKey, Vec<SimTime>>,
    /// Keys that gained a record since their last recheck.
    dirty: std::collections::BTreeSet<ConvKey>,
    /// Keys currently failing causal closure.
    bad: std::collections::BTreeSet<ConvKey>,
    dp: DataPlane,
    /// FIB updates applied to `dp` since the last
    /// [`drain_applied`](Self::drain_applied) — the delta feed for an
    /// incremental verifier mirroring this tracker's data plane.
    applied: Vec<FibUpdate>,
    /// Consistent→waiting transitions seen by [`advance`](Self::advance):
    /// how many times the tracker chose to *wait* instead of raising a
    /// false alarm (the paper's Fig. 1c discipline, as a number).
    waits_issued: u64,
    /// Waiting→consistent transitions: waits that resolved once the
    /// missing messages arrived.
    waits_resolved: u64,
    /// Whether the last advance verdict was a wait.
    waiting: bool,
}

impl ConsistencyTracker {
    /// A tracker for a network of `n_routers`.
    pub fn new(n_routers: usize) -> Self {
        ConsistencyTracker {
            streams: vec![RouterStream::default(); n_routers],
            sends: BTreeMap::new(),
            recvs: BTreeMap::new(),
            dirty: std::collections::BTreeSet::new(),
            bad: std::collections::BTreeSet::new(),
            dp: DataPlane::new(n_routers),
            applied: Vec::new(),
            waits_issued: 0,
            waits_resolved: 0,
            waiting: false,
        }
    }

    /// Buffers one captured event (cheap; nothing is applied until its
    /// record *arrives*, i.e. until [`advance`](Self::advance) passes its
    /// arrival time). Events must be stamped after the last advanced
    /// horizon — the simulator guarantees this for a live tap, since
    /// everything stamped ≤ `t` has been emitted once the clock reaches
    /// `t`.
    pub fn ingest(&mut self, e: &IoEvent) {
        let digest = match &e.kind {
            IoKind::SendAdvert {
                proto,
                prefix,
                to: Some(PeerRef::Internal(to)),
                ..
            }
            | IoKind::SendWithdraw {
                proto,
                prefix,
                to: Some(PeerRef::Internal(to)),
                ..
            } => Digest::Send((e.router, *to, *proto, *prefix)),
            IoKind::RecvAdvert {
                proto,
                prefix,
                from: Some(PeerRef::Internal(from)),
                ..
            }
            | IoKind::RecvWithdraw {
                proto,
                prefix,
                from: Some(PeerRef::Internal(from)),
                ..
            } => Digest::Recv((*from, e.router, *proto, *prefix)),
            IoKind::FibInstall { prefix, action } => Digest::FibInstall(*prefix, *action),
            IoKind::FibRemove { prefix } => Digest::FibRemove(*prefix),
            _ => Digest::Other,
        };
        let stream = &mut self.streams[e.router.index()];
        let rec = StreamRecord {
            time: e.time,
            id: e.id,
            raw: e.arrived_at,
            digest,
        };
        let pos = stream
            .records
            .partition_point(|r| (r.time, r.id) < (rec.time, rec.id));
        debug_assert!(
            pos >= stream.next,
            "event {} at {} ingested behind the consumption frontier",
            e.id,
            e.time
        );
        stream.records.insert(pos, rec);
    }

    /// Advances the verification horizon: applies every record that has
    /// arrived by `horizon`, rechecks the conversations they touched, and
    /// returns the causal-closure verdict — identical to
    /// [`consistency_check`] over the same events.
    pub fn advance(&mut self, horizon: SimTime) -> SnapshotStatus {
        for (r, stream) in self.streams.iter_mut().enumerate() {
            let router = RouterId(r as u32);
            while let Some(rec) = stream.records.get(stream.next) {
                let Some(raw) = rec.raw else {
                    // Lost: never arrives, never clamps later records.
                    // Step over it permanently — but only once the
                    // horizon has passed its event time, so that a
                    // not-yet-ingested event with an earlier stamp (a
                    // future-stamped loss can precede one) cannot land
                    // behind the frontier. Nothing is missed by stopping:
                    // records after it are stamped even later, so none of
                    // them can have arrived by this horizon either.
                    if rec.time > horizon {
                        break;
                    }
                    stream.next += 1;
                    continue;
                };
                let eff = stream.high.map_or(raw, |h| h.max(raw));
                if eff > horizon {
                    // Effective arrivals are monotone along the stream,
                    // so nothing further has arrived either.
                    break;
                }
                stream.high = Some(eff);
                match &rec.digest {
                    Digest::Send(key) => {
                        self.sends.entry(*key).or_default().push(rec.time);
                        self.dirty.insert(*key);
                    }
                    Digest::Recv(key) => {
                        self.recvs.entry(*key).or_default().push(rec.time);
                        self.dirty.insert(*key);
                    }
                    Digest::FibInstall(prefix, action) => {
                        let u = FibUpdate {
                            router,
                            prefix: *prefix,
                            kind: UpdateKind::Install,
                            action: *action,
                            at: rec.time,
                        };
                        self.dp.apply(&u);
                        self.applied.push(u);
                    }
                    Digest::FibRemove(prefix) => {
                        let u = FibUpdate {
                            router,
                            prefix: *prefix,
                            kind: UpdateKind::Remove,
                            action: FibAction::Drop,
                            at: rec.time,
                        };
                        self.dp.apply(&u);
                        self.applied.push(u);
                    }
                    Digest::Other => {}
                }
                self.dp
                    .set_taken_at(router, rec.time.max(self.dp.taken_at(router)));
                stream.next += 1;
            }
        }
        self.recheck_dirty();
        let st = self.status();
        match (self.waiting, st.is_consistent()) {
            (false, false) => {
                self.waits_issued += 1;
                self.waiting = true;
            }
            (true, true) => {
                self.waits_resolved += 1;
                self.waiting = false;
            }
            _ => {}
        }
        st
    }

    /// `(issued, resolved)` wait transitions over this tracker's life:
    /// issued counts consistent→waiting flips of the
    /// [`advance`](Self::advance) verdict, resolved counts the flips
    /// back. `issued - resolved` is 1 while a wait is outstanding and 0
    /// otherwise.
    pub fn wait_stats(&self) -> (u64, u64) {
        (self.waits_issued, self.waits_resolved)
    }

    fn recheck_dirty(&mut self) {
        for key in std::mem::take(&mut self.dirty) {
            let rs = self.recvs.get(&key).map_or(&[][..], |v| &v[..]);
            let ss = self.sends.get(&key).map_or(&[][..], |v| &v[..]);
            // The i-th recv (time order) needs at least i+1 sends no
            // later than it. Both lists are append-only sorted.
            let mut avail = 0usize;
            let mut si = 0usize;
            let mut ok = true;
            for (i, rt) in rs.iter().enumerate() {
                while si < ss.len() && ss[si] <= *rt {
                    si += 1;
                    avail += 1;
                }
                if avail < i + 1 {
                    ok = false;
                    break;
                }
            }
            if ok {
                self.bad.remove(&key);
            } else {
                self.bad.insert(key);
            }
        }
    }

    /// The verdict at the current horizon, without advancing.
    pub fn status(&self) -> SnapshotStatus {
        if self.bad.is_empty() {
            SnapshotStatus::Consistent
        } else {
            let mut missing: Vec<RouterId> = self.bad.iter().map(|k| k.0).collect();
            missing.dedup(); // BTreeSet iteration is sorted by (sender, ..)
            SnapshotStatus::WaitFor(missing)
        }
    }

    /// The data plane assembled from the arrived FIB records — identical
    /// to [`snapshot_arrived_by`] at the current horizon.
    pub fn dataplane(&self) -> &DataPlane {
        &self.dp
    }

    /// Takes the FIB updates applied since the last drain, in application
    /// order. Replaying them against a mirror of the previous drain's
    /// data plane reproduces [`dataplane`](Self::dataplane) exactly,
    /// which is how the control loop feeds its incremental verifier.
    pub fn drain_applied(&mut self) -> Vec<FibUpdate> {
        std::mem::take(&mut self.applied)
    }

    /// Rebuilds a tracker from a durably logged history: ingests every
    /// event, then advances once to `horizon`. The verdict, data plane,
    /// and per-router frontiers come out identical to a tracker that
    /// processed the same events live with any interleaving of advances
    /// up to the same horizon — application order within one `advance`
    /// is the per-stream `(time, id)` order either way. The only live
    /// state *not* reproduced is the [`drain_applied`](Self::drain_applied)
    /// delta feed (a recovering verifier rebuilds from
    /// [`dataplane`](Self::dataplane) instead), so recovery drains and
    /// discards it.
    pub fn recover<'a, I>(n_routers: usize, events: I, horizon: SimTime) -> Self
    where
        I: IntoIterator<Item = &'a IoEvent>,
    {
        let mut t = Self::new(n_routers);
        for e in events {
            t.ingest(e);
        }
        t.advance(horizon);
        t.drain_applied();
        t
    }
}

/// One side of a conversation, observed on a router stream owned by
/// some shard and addressed to the shard owning the conversation.
///
/// The exchange of these digests at each watermark barrier is the whole
/// cross-shard interface of the sharded fold: everything else the
/// tracker computes is per-router (streams, FIBs, capture clamps) and
/// stays shard-local.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvDigest {
    /// The conversation.
    pub key: ConvKey,
    /// True for the send side, false for the recv side.
    pub is_send: bool,
    /// The record's canonical event time (already FIFO-clamp admitted
    /// by the owning stream, so the receiving slice appends it without
    /// re-deriving arrival order).
    pub time: SimTime,
}

// Hand-rolled (not `impl_json_struct!`) because `ConvKey` is a 4-tuple
// and the JSON layer only derives pairs; the key is flattened into the
// digest object. This is the wire form federation peers exchange in
// `BoundaryEdges` round batches.
impl cpvr_types::json::ToJson for ConvDigest {
    fn to_json(&self) -> cpvr_types::json::Value {
        use cpvr_types::json::Value;
        let (from, to, proto, prefix) = &self.key;
        Value::Object(vec![
            ("from".to_string(), from.to_json()),
            ("to".to_string(), to.to_json()),
            ("proto".to_string(), proto.to_json()),
            ("prefix".to_string(), prefix.to_json()),
            ("is_send".to_string(), self.is_send.to_json()),
            ("time".to_string(), self.time.to_json()),
        ])
    }
}

impl cpvr_types::json::FromJson for ConvDigest {
    fn from_json(v: &cpvr_types::json::Value) -> Result<Self, cpvr_types::json::JsonError> {
        use cpvr_types::json::FromJson;
        Ok(ConvDigest {
            key: (
                FromJson::from_json(v.field("from")?)?,
                FromJson::from_json(v.field("to")?)?,
                FromJson::from_json(v.field("proto")?)?,
                FromJson::from_json(v.field("prefix")?)?,
            ),
            is_send: FromJson::from_json(v.field("is_send")?)?,
            time: FromJson::from_json(v.field("time")?)?,
        })
    }
}

/// One shard's slice of a [`ConsistencyTracker`].
///
/// A slice owns a subset of router streams (whole streams — the FIFO
/// arrival clamp makes a stream indivisible) and a subset of
/// conversations (by [`ShardPlan::of_conv`](crate::shard::ShardPlan)).
/// [`advance_collect`](Self::advance_collect) replays the owned streams
/// exactly like [`ConsistencyTracker::advance`], but sends/recvs whose
/// conversation another shard owns are emitted into a per-destination
/// outbox instead of being applied; the destination slice applies them
/// via [`absorb`](Self::absorb) and re-judges via
/// [`recheck`](Self::recheck). Per conversation side, records originate
/// from exactly one stream and are delivered in stream order, so each
/// slice's send/recv lists are identical to the monolithic tracker's —
/// which makes the union of [`missing`](Self::missing) across slices
/// equal to the monolithic [`ConsistencyTracker::status`] verdict.
///
/// Wait-transition counting is deliberately absent: a wait is a verdict
/// on the *merged* missing set, so the coordinator counts transitions
/// on the merged sequence.
#[derive(Clone)]
pub struct TrackerSlice {
    shard: u32,
    plan: crate::shard::ShardPlan,
    streams: Vec<RouterStream>,
    sends: BTreeMap<ConvKey, Vec<SimTime>>,
    recvs: BTreeMap<ConvKey, Vec<SimTime>>,
    dirty: std::collections::BTreeSet<ConvKey>,
    bad: std::collections::BTreeSet<ConvKey>,
    dp: DataPlane,
}

impl TrackerSlice {
    /// Shard `shard`'s slice of a tracker for `n_routers` routers.
    pub fn new(n_routers: usize, plan: crate::shard::ShardPlan, shard: u32) -> Self {
        TrackerSlice {
            shard,
            plan,
            streams: vec![RouterStream::default(); n_routers],
            sends: BTreeMap::new(),
            recvs: BTreeMap::new(),
            dirty: std::collections::BTreeSet::new(),
            bad: std::collections::BTreeSet::new(),
            dp: DataPlane::new(n_routers),
        }
    }

    /// Buffers one captured event, exactly like
    /// [`ConsistencyTracker::ingest`]. The caller routes events so that
    /// `e.router` is owned by this slice's shard.
    pub fn ingest(&mut self, e: &IoEvent) {
        debug_assert_eq!(
            self.plan.of_router(e.router),
            self.shard,
            "event for router {:?} ingested into slice {}",
            e.router,
            self.shard
        );
        let digest = match classify_conv(e) {
            Some((key, true)) => Digest::Send(key),
            Some((key, false)) => Digest::Recv(key),
            None => match &e.kind {
                IoKind::FibInstall { prefix, action } => Digest::FibInstall(*prefix, *action),
                IoKind::FibRemove { prefix } => Digest::FibRemove(*prefix),
                _ => Digest::Other,
            },
        };
        let stream = &mut self.streams[e.router.index()];
        let rec = StreamRecord {
            time: e.time,
            id: e.id,
            raw: e.arrived_at,
            digest,
        };
        let pos = stream
            .records
            .partition_point(|r| (r.time, r.id) < (rec.time, rec.id));
        debug_assert!(
            pos >= stream.next,
            "event {} at {} ingested behind the consumption frontier",
            e.id,
            e.time
        );
        stream.records.insert(pos, rec);
    }

    /// Replays the owned streams up to `horizon` (the
    /// [`ConsistencyTracker::advance`] loop, including the lost-record
    /// and FIFO-clamp discipline), applying owned-conversation digests
    /// locally and pushing foreign ones into `outbox[owner]`.
    ///
    /// Callers follow with the barrier exchange, [`absorb`](Self::absorb)
    /// of delivered digests, and [`recheck`](Self::recheck).
    pub fn advance_collect(&mut self, horizon: SimTime, outbox: &mut [Vec<ConvDigest>]) {
        for (r, stream) in self.streams.iter_mut().enumerate() {
            let router = RouterId(r as u32);
            while let Some(rec) = stream.records.get(stream.next) {
                let Some(raw) = rec.raw else {
                    if rec.time > horizon {
                        break;
                    }
                    stream.next += 1;
                    continue;
                };
                let eff = stream.high.map_or(raw, |h| h.max(raw));
                if eff > horizon {
                    break;
                }
                stream.high = Some(eff);
                match &rec.digest {
                    Digest::Send(key) | Digest::Recv(key) => {
                        let is_send = matches!(rec.digest, Digest::Send(_));
                        let owner = self.plan.of_conv(key);
                        if owner == self.shard {
                            let side = if is_send {
                                self.sends.entry(*key).or_default()
                            } else {
                                self.recvs.entry(*key).or_default()
                            };
                            side.push(rec.time);
                            self.dirty.insert(*key);
                        } else {
                            outbox[owner as usize].push(ConvDigest {
                                key: *key,
                                is_send,
                                time: rec.time,
                            });
                        }
                    }
                    Digest::FibInstall(prefix, action) => {
                        self.dp.apply(&FibUpdate {
                            router,
                            prefix: *prefix,
                            kind: UpdateKind::Install,
                            action: *action,
                            at: rec.time,
                        });
                    }
                    Digest::FibRemove(prefix) => {
                        self.dp.apply(&FibUpdate {
                            router,
                            prefix: *prefix,
                            kind: UpdateKind::Remove,
                            action: FibAction::Drop,
                            at: rec.time,
                        });
                    }
                    Digest::Other => {}
                }
                self.dp
                    .set_taken_at(router, rec.time.max(self.dp.taken_at(router)));
                stream.next += 1;
            }
        }
    }

    /// Applies a digest delivered from another shard's
    /// [`advance_collect`](Self::advance_collect). Digests for one
    /// conversation side must be applied in origin-stream order; the
    /// barrier guarantees this by forwarding each origin's outbox as an
    /// ordered batch.
    pub fn absorb(&mut self, d: &ConvDigest) {
        debug_assert_eq!(self.plan.of_conv(&d.key), self.shard);
        let side = if d.is_send {
            self.sends.entry(d.key).or_default()
        } else {
            self.recvs.entry(d.key).or_default()
        };
        side.push(d.time);
        self.dirty.insert(d.key);
    }

    /// Re-judges causal closure for conversations that gained records
    /// this round — the same merge-walk as the monolithic tracker.
    pub fn recheck(&mut self) {
        for key in std::mem::take(&mut self.dirty) {
            let rs = self.recvs.get(&key).map_or(&[][..], |v| &v[..]);
            let ss = self.sends.get(&key).map_or(&[][..], |v| &v[..]);
            let mut avail = 0usize;
            let mut si = 0usize;
            let mut ok = true;
            for (i, rt) in rs.iter().enumerate() {
                while si < ss.len() && ss[si] <= *rt {
                    si += 1;
                    avail += 1;
                }
                if avail < i + 1 {
                    ok = false;
                    break;
                }
            }
            if ok {
                self.bad.remove(&key);
            } else {
                self.bad.insert(key);
            }
        }
    }

    /// Senders of this slice's failing conversations, sorted and
    /// deduplicated. Concatenating all slices' lists, sorting, and
    /// deduplicating yields exactly the monolithic
    /// [`SnapshotStatus::WaitFor`] list.
    pub fn missing(&self) -> Vec<RouterId> {
        let mut rs: Vec<RouterId> = self.bad.iter().map(|k| k.0).collect();
        rs.dedup();
        rs
    }

    /// The slice's data plane: only the owned routers' FIBs and capture
    /// times are ever touched, so the coordinator merges slices by
    /// copying per-router state from each owner.
    pub fn dataplane(&self) -> &DataPlane {
        &self.dp
    }
}

/// Assembles the FIB state from the FIB events that arrived by `horizon`
/// — the naive snapshot a data-plane verifier without HBG support would
/// use.
pub fn snapshot_arrived_by(trace: &Trace, n_routers: usize, horizon: SimTime) -> DataPlane {
    let mut arrived = trace.arrived_by(horizon);
    arrived.sort_by_key(|e| (e.time, e.id));
    let mut dp = DataPlane::new(n_routers);
    for e in arrived {
        match &e.kind {
            IoKind::FibInstall { prefix, action } => dp.apply(&FibUpdate {
                router: e.router,
                prefix: *prefix,
                kind: UpdateKind::Install,
                action: *action,
                at: e.time,
            }),
            IoKind::FibRemove { prefix } => dp.apply(&FibUpdate {
                router: e.router,
                prefix: *prefix,
                kind: UpdateKind::Remove,
                action: FibAction::Drop,
                at: e.time,
            }),
            _ => {}
        }
        dp.set_taken_at(e.router, e.time.max(dp.taken_at(e.router)));
    }
    dp
}

/// The HBG-gated snapshot: `Ok(dataplane)` when the horizon is causally
/// closed, `Err(routers to wait for)` otherwise.
pub fn consistent_snapshot(
    trace: &Trace,
    n_routers: usize,
    horizon: SimTime,
) -> Result<DataPlane, Vec<RouterId>> {
    match consistency_check(trace, horizon) {
        SnapshotStatus::Consistent => Ok(snapshot_arrived_by(trace, n_routers, horizon)),
        SnapshotStatus::WaitFor(rs) => Err(rs),
    }
}

/// Verifies at `horizon` the naive way: whatever arrived is the truth.
/// This is what produces Fig. 1c's false loop alarm.
pub fn naive_verify_at(
    trace: &Trace,
    topo: &Topology,
    policies: &[Policy],
    horizon: SimTime,
) -> VerifyReport {
    let dp = snapshot_arrived_by(trace, topo.num_routers(), horizon);
    verify(topo, &dp, policies)
}

/// Verifies the HBG-gated way: if the horizon is not causally closed,
/// advance it by `step` (waiting for more records) up to `max_horizon`.
/// Returns the horizon actually verified at and the report, or `None` if
/// consistency was never reached (e.g. records were lost).
pub fn verify_when_consistent(
    trace: &Trace,
    topo: &Topology,
    policies: &[Policy],
    mut horizon: SimTime,
    max_horizon: SimTime,
    step: SimTime,
) -> Option<(SimTime, VerifyReport)> {
    loop {
        match consistent_snapshot(trace, topo.num_routers(), horizon) {
            Ok(dp) => return Some((horizon, verify(topo, &dp, policies))),
            Err(_) => {
                if horizon >= max_horizon {
                    return None;
                }
                horizon = (horizon + step).min(max_horizon);
            }
        }
    }
}

/// A sweep of the data plane's true state across an interval: one
/// verification after every FIB change.
#[derive(Clone, Debug, Default)]
pub struct TransientReport {
    /// FIB-change checkpoints examined.
    pub checkpoints: usize,
    /// Checkpoints at which at least one policy was violated:
    /// `(time, violation count)`.
    pub violating: Vec<(SimTime, usize)>,
}

impl TransientReport {
    /// True if no checkpoint violated.
    pub fn ok(&self) -> bool {
        self.violating.is_empty()
    }

    /// The total time spent in violation, approximated as the span from
    /// each violating checkpoint to the next checkpoint.
    pub fn first_violation(&self) -> Option<SimTime> {
        self.violating.first().map(|(t, _)| *t)
    }
}

/// Verifies the *sequence* of data-plane states across `[from, to]`:
/// replay every FIB event in (event-time) order and verify after each
/// one. §5's goal — "the verifier detects all transient and persistent
/// violations" — needs exactly this: a single converged check misses
/// windows where the network was briefly broken.
///
/// Uses the completed trace's event times, i.e. the *true* succession of
/// global FIB states, so transients found here are real (no capture-skew
/// artifacts).
pub fn verify_throughout(
    trace: &Trace,
    topo: &Topology,
    policies: &[Policy],
    from: SimTime,
    to: SimTime,
) -> TransientReport {
    let mut events: Vec<&IoEvent> = trace.events.iter().collect();
    events.sort_by_key(|e| (e.time, e.id));
    let n = topo.num_routers();
    let mut dp = DataPlane::new(n);
    let mut report = TransientReport::default();
    for e in events {
        let (prefix, update) = match &e.kind {
            IoKind::FibInstall { prefix, action } => (
                *prefix,
                FibUpdate {
                    router: e.router,
                    prefix: *prefix,
                    kind: UpdateKind::Install,
                    action: *action,
                    at: e.time,
                },
            ),
            IoKind::FibRemove { prefix } => (
                *prefix,
                FibUpdate {
                    router: e.router,
                    prefix: *prefix,
                    kind: UpdateKind::Remove,
                    action: FibAction::Drop,
                    at: e.time,
                },
            ),
            _ => continue,
        };
        if e.time > to {
            break;
        }
        dp.apply(&update);
        if e.time < from {
            continue;
        }
        report.checkpoints += 1;
        let vr = cpvr_verify::verify_incremental(topo, &dp, policies, &[prefix]);
        if !vr.ok() {
            report.violating.push((e.time, vr.violations.len()));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_sim::EventId;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    struct TB {
        trace: Trace,
    }

    impl TB {
        fn new() -> Self {
            TB {
                trace: Trace::default(),
            }
        }
        fn ev(&mut self, router: u32, t_ms: u64, arrived_ms: Option<u64>, kind: IoKind) -> EventId {
            let id = EventId(self.trace.events.len() as u32);
            self.trace.events.push(IoEvent {
                id,
                router: RouterId(router),
                time: SimTime::from_millis(t_ms),
                arrived_at: arrived_ms.map(SimTime::from_millis),
                kind,
            });
            id
        }
    }

    fn send(to: u32, p: Ipv4Prefix) -> IoKind {
        IoKind::SendAdvert {
            proto: Proto::Bgp,
            prefix: Some(p),
            to: Some(PeerRef::Internal(RouterId(to))),
            route: None,
        }
    }

    fn recv(from: u32, p: Ipv4Prefix) -> IoKind {
        IoKind::RecvAdvert {
            proto: Proto::Bgp,
            prefix: Some(p),
            from: Some(PeerRef::Internal(RouterId(from))),
            route: None,
        }
    }

    #[test]
    fn matched_send_recv_is_consistent() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        b.ev(1, 10, Some(11), send(0, p));
        b.ev(0, 18, Some(19), recv(1, p));
        assert_eq!(
            consistency_check(&b.trace, SimTime::from_millis(100)),
            SnapshotStatus::Consistent
        );
    }

    #[test]
    fn orphan_recv_names_the_sender() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        // R2's send record is delayed beyond the horizon; R1's recv
        // arrived. This is the paper's §7 inconsistency signature.
        b.ev(1, 10, Some(500), send(0, p));
        b.ev(0, 18, Some(19), recv(1, p));
        assert_eq!(
            consistency_check(&b.trace, SimTime::from_millis(100)),
            SnapshotStatus::WaitFor(vec![RouterId(1)])
        );
        // Waiting long enough resolves it.
        assert!(consistency_check(&b.trace, SimTime::from_millis(600)).is_consistent());
    }

    #[test]
    fn counting_matches_repeated_updates() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        // Two sends, two recvs: consistent. One send arrived, two recvs:
        // not.
        b.ev(1, 10, Some(11), send(0, p));
        b.ev(0, 18, Some(19), recv(1, p));
        b.ev(1, 30, Some(200), send(0, p));
        b.ev(0, 38, Some(39), recv(1, p));
        assert_eq!(
            consistency_check(&b.trace, SimTime::from_millis(100)),
            SnapshotStatus::WaitFor(vec![RouterId(1)])
        );
        assert!(consistency_check(&b.trace, SimTime::from_millis(300)).is_consistent());
    }

    #[test]
    fn external_recvs_do_not_require_sends() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        b.ev(
            0,
            5,
            Some(6),
            IoKind::RecvAdvert {
                proto: Proto::Bgp,
                prefix: Some(p),
                from: Some(PeerRef::External(cpvr_topo::ExtPeerId(0))),
                route: None,
            },
        );
        assert!(consistency_check(&b.trace, SimTime::from_millis(100)).is_consistent());
    }

    #[test]
    fn lost_send_record_never_becomes_consistent() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        b.ev(1, 10, None, send(0, p));
        b.ev(0, 18, Some(19), recv(1, p));
        assert!(!consistency_check(&b.trace, SimTime::from_secs(10)).is_consistent());
    }

    #[test]
    fn snapshot_uses_arrivals_not_event_times() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        b.ev(
            0,
            10,
            Some(100),
            IoKind::FibInstall {
                prefix: p,
                action: FibAction::Drop,
            },
        );
        let dp50 = snapshot_arrived_by(&b.trace, 1, SimTime::from_millis(50));
        assert!(dp50.fib(RouterId(0)).is_empty(), "record not arrived yet");
        let dp150 = snapshot_arrived_by(&b.trace, 1, SimTime::from_millis(150));
        assert_eq!(dp150.fib(RouterId(0)).len(), 1);
    }

    fn dataplanes_equal(a: &DataPlane, b: &DataPlane) -> bool {
        a.num_routers() == b.num_routers()
            && (0..a.num_routers()).all(|i| {
                let r = RouterId(i as u32);
                a.fib(r).entries() == b.fib(r).entries() && a.taken_at(r) == b.taken_at(r)
            })
    }

    /// The tracker must agree with the batch check and batch snapshot at
    /// every horizon, on a skewed-capture trace where waits actually
    /// happen.
    #[test]
    fn tracker_matches_batch_across_horizons() {
        use cpvr_sim::scenario::paper_scenario;
        use cpvr_sim::{CaptureProfile, LatencyProfile};
        for seed in [1u64, 7, 42] {
            let mut s = paper_scenario(LatencyProfile::cisco(), CaptureProfile::syslog(), seed);
            s.sim.start();
            s.sim.run_to_quiescence(100_000);
            s.sim.schedule_ext_announce(
                s.sim.now() + SimTime::from_millis(5),
                s.ext_r1,
                &[s.prefix],
            );
            s.sim.schedule_ext_announce(
                s.sim.now() + SimTime::from_millis(100),
                s.ext_r2,
                &[s.prefix],
            );
            s.sim.run_to_quiescence(100_000);
            let trace = s.sim.trace().clone();
            let n = 3;
            let mut tracker = ConsistencyTracker::new(n);
            for e in &trace.events {
                tracker.ingest(e);
            }
            let end = trace.events.iter().map(|e| e.time).max().unwrap();
            let mut saw_wait = false;
            for step in 0..40 {
                let horizon = SimTime::from_nanos(end.as_nanos() / 40 * step + 1);
                let got = tracker.advance(horizon);
                let want = consistency_check(&trace, horizon);
                assert_eq!(got, want, "seed {seed} horizon {horizon}");
                saw_wait |= !got.is_consistent();
                assert!(
                    dataplanes_equal(
                        tracker.dataplane(),
                        &snapshot_arrived_by(&trace, n, horizon)
                    ),
                    "seed {seed} horizon {horizon}: snapshots diverge"
                );
            }
            assert!(
                saw_wait,
                "seed {seed}: skewed capture should force at least one wait"
            );
            // Syslog capture loses nothing, so once every record has
            // arrived the view must be consistent.
            assert!(tracker.advance(SimTime::MAX).is_consistent());
        }
    }

    /// Ingest may interleave with advances (the live-stream pattern) and
    /// lost records must neither block nor clamp later ones.
    #[test]
    fn tracker_handles_interleaving_and_loss() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        b.ev(1, 10, None, send(0, p)); // lost send
        b.ev(0, 18, Some(19), recv(1, p));
        b.ev(1, 30, Some(31), send(0, p));
        let mut tracker = ConsistencyTracker::new(2);
        tracker.ingest(&b.trace.events[0]);
        assert!(tracker.advance(SimTime::from_millis(15)).is_consistent());
        tracker.ingest(&b.trace.events[1]);
        assert_eq!(
            tracker.advance(SimTime::from_millis(25)),
            SnapshotStatus::WaitFor(vec![RouterId(1)]),
            "orphan recv: its send record was lost"
        );
        tracker.ingest(&b.trace.events[2]);
        // The later send arrives (the lost record does not clamp it), but
        // it is *after* the recv, so the key stays unsatisfied — matching
        // the batch verdict.
        assert_eq!(
            tracker.advance(SimTime::from_secs(10)),
            consistency_check(&b.trace, SimTime::from_secs(10))
        );
    }

    #[test]
    fn drain_applied_replays_to_the_tracker_dataplane() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        let q = pfx("9.9.9.0/24");
        b.ev(
            0,
            10,
            Some(11),
            IoKind::FibInstall {
                prefix: p,
                action: FibAction::Drop,
            },
        );
        b.ev(
            0,
            20,
            Some(21),
            IoKind::FibInstall {
                prefix: q,
                action: FibAction::Local,
            },
        );
        b.ev(0, 30, Some(90), IoKind::FibRemove { prefix: q });
        let mut tracker = ConsistencyTracker::new(1);
        for e in &b.trace.events {
            tracker.ingest(e);
        }
        let mut mirror = DataPlane::new(1);
        tracker.advance(SimTime::from_millis(50));
        let batch = tracker.drain_applied();
        assert_eq!(batch.len(), 2, "only the arrived installs");
        for u in &batch {
            mirror.fib_mut(u.router).apply(u);
        }
        assert_eq!(
            mirror.fib(RouterId(0)).entries(),
            tracker.dataplane().fib(RouterId(0)).entries()
        );
        // Drain is destructive; the next advance delivers only the rest.
        assert!(tracker.drain_applied().is_empty());
        tracker.advance(SimTime::from_millis(100));
        let rest = tracker.drain_applied();
        assert_eq!(rest.len(), 1);
        for u in &rest {
            mirror.fib_mut(u.router).apply(u);
        }
        assert_eq!(
            mirror.fib(RouterId(0)).entries(),
            tracker.dataplane().fib(RouterId(0)).entries()
        );
    }

    /// Sharded slices joined by the digest barrier must reproduce the
    /// monolithic tracker's verdict and data plane at every horizon —
    /// the §5 partitioning claim, as an executable oracle.
    #[test]
    fn sliced_tracker_matches_monolithic() {
        use crate::shard::ShardPlan;
        use cpvr_sim::scenario::paper_scenario;
        use cpvr_sim::{CaptureProfile, LatencyProfile};
        for seed in [1u64, 7] {
            let mut s = paper_scenario(LatencyProfile::cisco(), CaptureProfile::syslog(), seed);
            s.sim.start();
            s.sim.run_to_quiescence(100_000);
            s.sim.schedule_ext_announce(
                s.sim.now() + SimTime::from_millis(5),
                s.ext_r1,
                &[s.prefix],
            );
            s.sim.schedule_ext_announce(
                s.sim.now() + SimTime::from_millis(100),
                s.ext_r2,
                &[s.prefix],
            );
            s.sim.run_to_quiescence(100_000);
            let trace = s.sim.trace().clone();
            let n = 3;
            for shards in [2u32, 3] {
                let plan = ShardPlan::uniform(shards);
                let mut mono = ConsistencyTracker::new(n);
                let mut slices: Vec<TrackerSlice> = (0..shards)
                    .map(|k| TrackerSlice::new(n, plan.clone(), k))
                    .collect();
                for e in &trace.events {
                    mono.ingest(e);
                    slices[plan.of_router(e.router) as usize].ingest(e);
                }
                let end = trace.events.iter().map(|e| e.time).max().unwrap();
                for step in 1..=20u64 {
                    let horizon = SimTime::from_nanos(end.as_nanos() / 20 * step + 1);
                    // One barrier round.
                    let mut outboxes: Vec<Vec<Vec<ConvDigest>>> = Vec::new();
                    for slice in slices.iter_mut() {
                        let mut out = vec![Vec::new(); shards as usize];
                        slice.advance_collect(horizon, &mut out);
                        outboxes.push(out);
                    }
                    for outbox in &outboxes {
                        for (dest, digests) in outbox.iter().enumerate() {
                            for d in digests {
                                slices[dest].absorb(d);
                            }
                        }
                    }
                    let mut missing: Vec<RouterId> = Vec::new();
                    for slice in slices.iter_mut() {
                        slice.recheck();
                        missing.extend(slice.missing());
                    }
                    missing.sort();
                    missing.dedup();
                    let merged = if missing.is_empty() {
                        SnapshotStatus::Consistent
                    } else {
                        SnapshotStatus::WaitFor(missing)
                    };
                    assert_eq!(
                        merged,
                        mono.advance(horizon),
                        "seed {seed} shards {shards} horizon {horizon}"
                    );
                    for r in 0..n {
                        let router = RouterId(r as u32);
                        let owner = plan.of_router(router) as usize;
                        let sdp = slices[owner].dataplane();
                        let mdp = mono.dataplane();
                        assert_eq!(sdp.fib(router).entries(), mdp.fib(router).entries());
                        assert_eq!(sdp.taken_at(router), mdp.taken_at(router));
                    }
                }
            }
        }
    }

    #[test]
    fn fifo_export_orders_a_routers_records() {
        let mut b = TB::new();
        let p = pfx("8.8.8.0/24");
        // Raw arrivals inverted (20ms event sampled to arrive before the
        // 10ms one); FIFO export must clamp the later event's arrival.
        b.ev(
            0,
            10,
            Some(90),
            IoKind::FibInstall {
                prefix: p,
                action: FibAction::Drop,
            },
        );
        b.ev(0, 20, Some(30), IoKind::FibRemove { prefix: p });
        let dp = snapshot_arrived_by(&b.trace, 1, SimTime::from_millis(50));
        assert!(
            dp.fib(RouterId(0)).is_empty(),
            "neither record is visible: the remove cannot overtake the install"
        );
        let dp = snapshot_arrived_by(&b.trace, 1, SimTime::from_millis(95));
        assert!(
            dp.fib(RouterId(0)).is_empty(),
            "both visible: install then remove"
        );
    }
}
