//! What-if analysis by replay (§8 discussion).
//!
//! The paper notes its approach "cannot directly answer what-if
//! questions" and sketches the CrystalNet answer: run an emulated copy of
//! the network and inject faults. With a deterministic simulator that
//! copy is free: rebuild the same scenario (same seed ⇒ same baseline),
//! inject the hypothetical, and verify the outcome.

use cpvr_sim::Simulation;
use cpvr_verify::{verify, Policy, VerifyReport};

/// The result of one what-if run.
pub struct WhatIfResult {
    /// Verification of the live data plane after the injected events.
    pub report: VerifyReport,
    /// Captured events in the replayed run (baseline + hypothetical).
    pub trace_len: usize,
    /// The replayed simulation, for deeper inspection.
    pub sim: Simulation,
}

/// Replays a scenario with an extra hypothetical injected.
///
/// `build` must construct the baseline — typically the same scenario
/// constructor and seed as the live network, already run to the present.
/// `inject` schedules the hypothetical events. The function then runs to
/// quiescence and verifies.
pub fn what_if(
    build: impl FnOnce() -> Simulation,
    inject: impl FnOnce(&mut Simulation),
    policies: &[Policy],
    max_events: usize,
) -> WhatIfResult {
    let mut sim = build();
    inject(&mut sim);
    sim.run_to_quiescence(max_events);
    let report = verify(sim.topology(), sim.dataplane(), policies);
    WhatIfResult {
        report,
        trace_len: sim.trace().len(),
        sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_bgp::{ConfigChange, PeerRef, RouteMap, SetAction};
    use cpvr_sim::scenario::paper_scenario;
    use cpvr_sim::{CaptureProfile, LatencyProfile};
    use cpvr_types::{RouterId, SimTime};

    fn baseline(seed: u64) -> cpvr_sim::scenario::PaperScenario {
        let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), seed);
        s.sim.start();
        s.sim.run_to_quiescence(100_000);
        s.sim
            .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
        s.sim
            .schedule_ext_announce(s.sim.now() + SimTime::from_millis(5), s.ext_r2, &[s.prefix]);
        s.sim.run_to_quiescence(100_000);
        s
    }

    #[test]
    fn what_if_predicts_violation_before_deploying() {
        let s0 = baseline(40);
        let policy = Policy::PreferredExit {
            prefix: s0.prefix,
            primary: s0.ext_r2,
            backup: s0.ext_r1,
        };
        // Hypothetical: what if we set LP 10 on R2's uplink?
        let result = what_if(
            || baseline(40).sim,
            |sim| {
                let change = ConfigChange::SetImport {
                    peer: PeerRef::External(s0.ext_r2),
                    map: RouteMap::set_all(vec![SetAction::LocalPref(10)]),
                };
                sim.schedule_config(sim.now() + SimTime::from_millis(1), RouterId(1), change);
            },
            std::slice::from_ref(&policy),
            200_000,
        );
        assert!(
            !result.report.ok(),
            "the what-if must predict the Fig. 2 violation"
        );
        // And a benign change predicts compliance.
        let result = what_if(
            || baseline(40).sim,
            |sim| {
                let change = ConfigChange::SetImport {
                    peer: PeerRef::External(s0.ext_r2),
                    map: RouteMap::set_all(vec![SetAction::LocalPref(40)]),
                };
                sim.schedule_config(sim.now() + SimTime::from_millis(1), RouterId(1), change);
            },
            std::slice::from_ref(&policy),
            200_000,
        );
        assert!(result.report.ok());
    }

    #[test]
    fn what_if_link_failure() {
        let s0 = baseline(41);
        let policy = Policy::Reachable { prefix: s0.prefix };
        let ext = s0.ext_r2;
        // Both uplinks alive: failing R2's still leaves R1's.
        let result = what_if(
            || baseline(41).sim,
            |sim| sim.schedule_ext_peer_change(sim.now() + SimTime::from_millis(1), ext, false),
            std::slice::from_ref(&policy),
            200_000,
        );
        assert!(result.report.ok(), "{:?}", result.report.violations);
        assert!(result.trace_len > 0);
    }
}
