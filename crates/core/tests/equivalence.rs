//! Equivalence properties of the three HBG construction strategies.
//!
//! The parallel sharded path ([`infer_hbg_parallel`]) and the
//! incremental builder ([`HbgBuilder`]) both promise **bit-identical**
//! output to sequential batch inference ([`infer_hbg`]) — same edge set,
//! same confidences, same sources. These properties pin that promise
//! down on adversarial inputs: randomized traces with clustered
//! timestamps (plenty of ties), shared prefixes across routers, events
//! with and without prefixes, and every I/O kind — far messier than any
//! simulator run.

use cpvr_bgp::PeerRef;
use cpvr_core::builder::HbgBuilder;
use cpvr_core::infer::{infer_hbg, infer_hbg_parallel, InferConfig, PatternMiner};
use cpvr_core::Hbg;
use cpvr_dataplane::FibAction;
use cpvr_sim::scenario::two_exit_scenario;
use cpvr_sim::{CaptureProfile, EventId, IoEvent, IoKind, LatencyProfile, Proto, Trace};
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use proptest::prelude::*;

const ROUTERS: u32 = 4;

fn prefix_pool() -> Vec<Ipv4Prefix> {
    ["8.8.8.0/24", "10.0.0.0/8", "192.168.1.0/24"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect()
}

const PROTOS: [Proto; 4] = [Proto::Bgp, Proto::Ospf, Proto::Rip, Proto::Eigrp];

/// One random event row: `(router, time µs, kind, prefix idx, proto idx,
/// peer)`. Times are drawn from a small range so ties and near-ties are
/// common — the regime where ordering bugs live.
type Row = (u32, u64, usize, usize, usize, u32);

fn build_trace(rows: Vec<Row>) -> Trace {
    let pool = prefix_pool();
    let mut trace = Trace::default();
    for (i, (router, t_us, kind_sel, pidx, proto_idx, peer)) in rows.into_iter().enumerate() {
        let proto = PROTOS[proto_idx % PROTOS.len()];
        // Recv/send prefixes are optional on the wire (OSPF LSAs carry
        // none); index 2 maps to `None` to exercise that path.
        let opt_prefix = if pidx == 2 {
            None
        } else {
            Some(pool[pidx % pool.len()])
        };
        let prefix = pool[pidx % pool.len()];
        let from = Some(PeerRef::Internal(RouterId(peer % ROUTERS)));
        let kind = match kind_sel % 11 {
            0 => IoKind::ConfigChange {
                desc: "cfg".into(),
                change: None,
                inverse: None,
            },
            1 => IoKind::SoftReconfig {
                desc: "soft".into(),
            },
            2 => IoKind::LinkStatus {
                desc: "link".into(),
                up: kind_sel % 2 == 0,
                link: None,
                peer: None,
            },
            3 => IoKind::RecvAdvert {
                proto,
                prefix: opt_prefix,
                from,
                route: None,
            },
            4 => IoKind::RecvWithdraw {
                proto,
                prefix: opt_prefix,
                from,
            },
            5 => IoKind::RibInstall {
                proto,
                prefix,
                route: None,
            },
            6 => IoKind::RibRemove { proto, prefix },
            7 => IoKind::FibInstall {
                prefix,
                action: FibAction::Drop,
            },
            8 => IoKind::FibRemove { prefix },
            9 => IoKind::SendAdvert {
                proto,
                prefix: opt_prefix,
                to: from,
                route: None,
            },
            _ => IoKind::SendWithdraw {
                proto,
                prefix: opt_prefix,
                to: from,
            },
        };
        let time = SimTime::from_micros(t_us);
        trace.events.push(IoEvent {
            id: EventId(i as u32),
            router: RouterId(router % ROUTERS),
            time,
            arrived_at: Some(time),
            kind,
        });
    }
    trace
}

fn arb_rows(max_len: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (
            0u32..ROUTERS,
            0u64..2000,
            0usize..11,
            0usize..3,
            0usize..4,
            0u32..ROUTERS,
        ),
        0..max_len,
    )
}

fn assert_same(a: &Hbg, b: &Hbg, what: &str) {
    assert_eq!(a.canonical_edges(), b.canonical_edges(), "{what}");
}

/// Builds incrementally: ingest everything, then advance through
/// `steps` intermediate watermarks before the final infinite one.
fn incremental(trace: &Trace, cfg: &InferConfig<'_>, steps: u64) -> Hbg {
    let mut b = HbgBuilder::new(cfg);
    for e in &trace.events {
        b.ingest(e);
    }
    let end = trace
        .events
        .iter()
        .map(|e| e.time)
        .max()
        .unwrap_or(SimTime::ZERO);
    for i in 1..=steps {
        b.advance(SimTime::from_nanos(end.as_nanos() / steps * i));
    }
    b.advance(SimTime::MAX);
    assert_eq!(b.pending(), 0);
    assert_eq!(b.processed(), trace.len());
    b.hbg().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rules only: sequential, parallel at several thread counts, and
    /// incremental (single and stepped watermarks) all agree.
    #[test]
    fn rules_all_strategies_agree(rows in arb_rows(120)) {
        let trace = build_trace(rows);
        let cfg = InferConfig { rules: true, patterns: None, min_confidence: 0.0, proximate: false };
        let seq = infer_hbg(&trace, &cfg);
        for threads in [1usize, 2, 3, 8] {
            assert_same(&seq, &infer_hbg_parallel(&trace, &cfg, threads), "parallel");
        }
        assert_same(&seq, &incremental(&trace, &cfg, 1), "incremental");
        assert_same(&seq, &incremental(&trace, &cfg, 9), "incremental stepped");
    }

    /// Rules + mined patterns, with and without the proximate-cause
    /// filter: every strategy produces the same graph.
    #[test]
    fn patterns_all_strategies_agree(
        train in arb_rows(120),
        target in arb_rows(90),
        proximate in any::<bool>(),
    ) {
        let mut miner = PatternMiner::new(SimTime::from_micros(500), 2);
        miner.train(&build_trace(train));
        let trace = build_trace(target);
        let cfg = InferConfig {
            rules: true,
            patterns: Some(&miner),
            min_confidence: 0.3,
            proximate,
        };
        let seq = infer_hbg(&trace, &cfg);
        for threads in [1usize, 2, 3, 8] {
            assert_same(&seq, &infer_hbg_parallel(&trace, &cfg, threads), "parallel");
        }
        assert_same(&seq, &incremental(&trace, &cfg, 1), "incremental");
        assert_same(&seq, &incremental(&trace, &cfg, 7), "incremental stepped");
    }

    /// The builder is insensitive to *when* the watermark advances
    /// relative to ingestion, as long as events are delivered in stream
    /// order: advancing behind a live (time, id)-ordered delivery gives
    /// the same graph as one big advance at the end.
    #[test]
    fn interleaved_delivery_agrees(rows in arb_rows(100)) {
        let trace = build_trace(rows);
        let cfg = InferConfig { rules: true, patterns: None, min_confidence: 0.0, proximate: false };
        let seq = infer_hbg(&trace, &cfg);
        let mut b = HbgBuilder::new(&cfg);
        let mut sorted: Vec<&IoEvent> = trace.events.iter().collect();
        sorted.sort_by_key(|e| (e.time, e.id));
        let mut prev = SimTime::ZERO;
        for e in sorted {
            if e.time > prev {
                b.advance(prev);
                prev = e.time;
            }
            b.ingest(e);
        }
        b.advance(SimTime::MAX);
        assert_same(&seq, b.hbg(), "interleaved");
    }

    /// The same equivalences on real simulator traces (with the miner
    /// trained on a different seed), where event structure is causal
    /// rather than adversarial.
    #[test]
    fn real_traces_agree(seed in 0u64..12) {
        let run = |seed: u64| {
            let (mut sim, left, right) =
                two_exit_scenario(3, LatencyProfile::fast(), CaptureProfile::ideal(), seed);
            sim.start();
            sim.run_to_quiescence(200_000);
            let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
            sim.schedule_ext_announce(sim.now() + SimTime::from_millis(1), left, &[p]);
            sim.schedule_ext_announce(sim.now() + SimTime::from_millis(30), right, &[p]);
            sim.run_to_quiescence(200_000);
            sim.trace().clone()
        };
        let mut miner = PatternMiner::new(SimTime::from_millis(5), 3);
        miner.train(&run(seed + 100));
        let trace = run(seed);
        for (patterns, proximate) in [(None, false), (Some(&miner), false), (Some(&miner), true)] {
            let cfg = InferConfig { rules: true, patterns, min_confidence: 0.5, proximate };
            let seq = infer_hbg(&trace, &cfg);
            prop_assert!(
                patterns.is_none() || !seq.edges().is_empty(),
                "sanity: real traces must produce edges"
            );
            for threads in [2usize, 8] {
                assert_same(&seq, &infer_hbg_parallel(&trace, &cfg, threads), "parallel");
            }
            assert_same(&seq, &incremental(&trace, &cfg, 5), "incremental");
        }
    }
}
