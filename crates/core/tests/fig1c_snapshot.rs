//! The Fig. 1c experiment: skewed capture makes naive data-plane
//! snapshots lie; the HBG-gated verifier waits instead.
//!
//! Setup (paper §2/§7): the network has converged on the route via R1
//! (Fig. 1a); R2's uplink then announces P (Fig. 1b). During convergence,
//! R2's log records reach the verifier late. A naive verifier assembling
//! "whatever arrived" sees R1's *new* FIB (→ R2) combined with R2's
//! *old* FIB (→ R1) and reports a forwarding loop that never existed.
//! The consistency check spots the orphaned recv ("a route via R2 that
//! has not been announced in the HBG received from R2") and waits.

use cpvr_core::snapshot::{
    consistency_check, naive_verify_at, snapshot_arrived_by, verify_when_consistent,
};
use cpvr_dataplane::TraceOutcome;
use cpvr_sim::scenario::paper_scenario;
use cpvr_sim::{CaptureProfile, LatencyProfile, Simulation};
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use cpvr_verify::Policy;

const MAX_EVENTS: usize = 200_000;

/// Runs the Fig. 1a→1b transition with the given capture profile; returns
/// the simulation plus the window during which updates were in flight.
fn run_transition(
    capture: CaptureProfile,
    seed: u64,
) -> (Simulation, Ipv4Prefix, SimTime, SimTime) {
    let mut s = paper_scenario(LatencyProfile::cisco(), capture, seed);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(10),
        s.ext_r1,
        &[s.prefix],
    );
    s.sim.run_to_quiescence(MAX_EVENTS);
    let t_start = s.sim.now();
    s.sim
        .schedule_ext_announce(t_start + SimTime::from_millis(10), s.ext_r2, &[s.prefix]);
    s.sim.run_to_quiescence(MAX_EVENTS);
    let t_end = s.sim.now();
    (s.sim, s.prefix, t_start, t_end)
}

#[test]
fn naive_snapshot_reports_a_loop_that_never_existed() {
    // Sweep seeds until the skew produces the classic artifact; with
    // syslog-grade skew it shows up readily.
    let mut saw_false_loop = false;
    'seeds: for seed in 0..20u64 {
        let (sim, prefix, t_start, t_end) = run_transition(CaptureProfile::syslog(), seed);
        let policy = Policy::LoopFree { prefix };
        let mut t = t_start;
        while t <= t_end + SimTime::from_millis(200) {
            let report = naive_verify_at(
                sim.trace(),
                sim.topology(),
                std::slice::from_ref(&policy),
                t,
            );
            if !report.ok() {
                // The naive verifier claims a loop. Ground truth: the live
                // data plane never looped at any point (check the actual
                // event-time snapshot at this instant).
                let actual = sim.trace().fib_snapshot_at(3, t);
                let live_trace =
                    actual.trace(sim.topology(), RouterId(0), "8.8.8.8".parse().unwrap());
                assert!(
                    !matches!(live_trace.outcome, TraceOutcome::Loop(_)),
                    "seed {seed}: the real data plane must not loop"
                );
                saw_false_loop = true;
                break 'seeds;
            }
            t += SimTime::from_millis(5);
        }
    }
    assert!(
        saw_false_loop,
        "capture skew should produce at least one naive false alarm across seeds"
    );
}

#[test]
fn hbg_gated_verifier_never_false_alarms() {
    for seed in 0..10u64 {
        let (sim, prefix, t_start, t_end) = run_transition(CaptureProfile::syslog(), seed);
        let policy = Policy::LoopFree { prefix };
        let mut t = t_start;
        let max = t_end + SimTime::from_secs(2);
        while t <= t_end {
            if let Some((_at, report)) = verify_when_consistent(
                sim.trace(),
                sim.topology(),
                std::slice::from_ref(&policy),
                t,
                max,
                SimTime::from_millis(5),
            ) {
                assert!(
                    report.ok(),
                    "seed {seed}: HBG-gated verification must not report the phantom loop: {:?}",
                    report.violations
                );
            }
            t += SimTime::from_millis(20);
        }
    }
}

#[test]
fn consistency_check_names_the_laggard_router() {
    // Find a horizon that is inconsistent and confirm the verdict points
    // at a real router whose records are outstanding.
    for seed in 0..20u64 {
        let (sim, _prefix, t_start, t_end) = run_transition(CaptureProfile::syslog(), seed);
        let mut t = t_start;
        while t <= t_end + SimTime::from_millis(200) {
            if let cpvr_core::SnapshotStatus::WaitFor(rs) = consistency_check(sim.trace(), t) {
                assert!(!rs.is_empty());
                for r in &rs {
                    assert!(r.index() < 3);
                    // The named router really does have records that have
                    // not arrived yet.
                    let outstanding =
                        sim.trace()
                            .events
                            .iter()
                            .filter(|e| e.router == *r)
                            .any(|e| match e.arrived_at {
                                None => true,
                                Some(a) => a > t,
                            });
                    assert!(outstanding, "seed {seed}: {r} named but fully caught up");
                }
                return;
            }
            t += SimTime::from_millis(5);
        }
    }
    panic!("no inconsistent horizon found across seeds");
}

#[test]
fn ideal_capture_is_always_consistent_after_quiescence() {
    let (sim, prefix, _t0, t_end) = run_transition(CaptureProfile::ideal(), 3);
    assert!(consistency_check(sim.trace(), t_end).is_consistent());
    let dp = snapshot_arrived_by(sim.trace(), 3, t_end);
    // And the snapshot agrees with the live hardware.
    for r in 0..3u32 {
        let a = dp.fib(RouterId(r)).entries();
        let b = sim.dataplane().fib(RouterId(r)).entries();
        let ka: Vec<_> = a.iter().map(|(p, e)| (*p, e.action)).collect();
        let kb: Vec<_> = b.iter().map(|(p, e)| (*p, e.action)).collect();
        assert_eq!(ka, kb, "R{}", r + 1);
    }
    let _ = prefix;
}

#[test]
fn false_positive_rates_naive_vs_hbg() {
    // The quantitative version (experiment E2): count alarm horizons for
    // both verifiers across the transition window, multiple seeds. Naive
    // must false-alarm on some; HBG-gated on none.
    let mut naive_alarms = 0usize;
    let mut hbg_alarms = 0usize;
    let mut horizons = 0usize;
    for seed in 0..8u64 {
        let (sim, prefix, t_start, t_end) = run_transition(CaptureProfile::syslog(), seed);
        let policy = Policy::LoopFree { prefix };
        let max = t_end + SimTime::from_secs(2);
        let mut t = t_start;
        while t <= t_end + SimTime::from_millis(100) {
            horizons += 1;
            if !naive_verify_at(
                sim.trace(),
                sim.topology(),
                std::slice::from_ref(&policy),
                t,
            )
            .ok()
            {
                naive_alarms += 1;
            }
            if let Some((_, rep)) = verify_when_consistent(
                sim.trace(),
                sim.topology(),
                std::slice::from_ref(&policy),
                t,
                max,
                SimTime::from_millis(5),
            ) {
                if !rep.ok() {
                    hbg_alarms += 1;
                }
            }
            t += SimTime::from_millis(10);
        }
    }
    assert!(
        naive_alarms > 0,
        "expected naive false alarms over {horizons} horizons"
    );
    assert_eq!(hbg_alarms, 0, "HBG-gated verifier must never false-alarm");
}
