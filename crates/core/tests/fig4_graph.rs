//! Structural fidelity test for Fig. 4: the inferred happens-before
//! graph of the Fig. 2 scenario must contain the exact causal chain the
//! paper draws, vertex kinds and edges included:
//!
//! ```text
//! R2 config change
//!   → (soft reconfiguration)
//!   → R2 update P, LP=10 in BGP RIB
//!   → R2 send iBGP ad (to R1 and R3)
//!   → R1/R3 recv iBGP ad
//!   → R1 update BGP RIB
//!   → R1 install P → Ext in FIB        (the fault)
//! ```
//!
//! All edges below are *inferred by rule matching from the captured
//! log*; the simulator's ground truth is never consulted.

use cpvr_bgp::{ConfigChange, PeerRef, RouteMap, SetAction};
use cpvr_core::infer::{infer_hbg, InferConfig};
use cpvr_core::Hbg;
use cpvr_dataplane::FibAction;
use cpvr_sim::scenario::paper_scenario;
use cpvr_sim::{CaptureProfile, EventId, IoKind, LatencyProfile, Proto, Trace};
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};

fn setup() -> (Trace, Hbg, Ipv4Prefix, SimTime) {
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), 17);
    s.sim.start();
    s.sim.run_to_quiescence(300_000);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(50),
        s.ext_r2,
        &[s.prefix],
    );
    s.sim.run_to_quiescence(300_000);
    let t_change = s.sim.now() + SimTime::from_millis(10);
    let change = ConfigChange::SetImport {
        peer: PeerRef::External(s.ext_r2),
        map: RouteMap::set_all(vec![SetAction::LocalPref(10)]),
    };
    s.sim.schedule_config(t_change, RouterId(1), change);
    s.sim.run_to_quiescence(300_000);
    let trace = s.sim.trace().clone();
    let hbg = infer_hbg(
        &trace,
        &InferConfig {
            rules: true,
            patterns: None,
            min_confidence: 0.0,
            proximate: false,
        },
    );
    (trace, hbg, s.prefix, t_change)
}

fn find(trace: &Trace, t0: SimTime, pred: impl Fn(&cpvr_sim::IoEvent) -> bool) -> EventId {
    trace
        .events
        .iter()
        .filter(|e| e.time >= t0)
        .find(|e| pred(e))
        .unwrap_or_else(|| panic!("expected event not found"))
        .id
}

fn has_edge(h: &Hbg, a: EventId, b: EventId) -> bool {
    h.parents(b, 0.5).contains(&a)
}

#[test]
fn inferred_graph_contains_the_fig4_chain() {
    let (trace, hbg, p, t0) = setup();
    let r1 = RouterId(0);
    let r2 = RouterId(1);
    let r3 = RouterId(2);

    // Vertex 1: "cause — R2 config change".
    let config = find(&trace, t0, |e| {
        e.router == r2
            && matches!(
                &e.kind,
                IoKind::ConfigChange {
                    change: Some(_),
                    ..
                }
            )
    });
    // (Our capture also logs the soft-reconfiguration marker between the
    // console event and its consequences, as in Fig. 5.)
    let soft = find(&trace, t0, |e| {
        e.router == r2 && matches!(e.kind, IoKind::SoftReconfig { .. })
    });
    // Vertex 2: "R2 update P -> Ext, LP=10 in BGP RIB".
    let r2_rib = find(&trace, t0, |e| {
        e.router == r2
            && matches!(&e.kind,
                IoKind::RibInstall { proto: Proto::Bgp, prefix, route: Some(r) }
                    if *prefix == p && r.local_pref == 10)
    });
    // Vertex 3: "R2 send iBGP ad P -> R2, LP=10" (to R1 and to R3).
    let r2_send_r1 = find(&trace, t0, |e| {
        e.router == r2
            && matches!(&e.kind,
                IoKind::SendAdvert { proto: Proto::Bgp, prefix: Some(px), to: Some(PeerRef::Internal(to)), route: Some(r) }
                    if *px == p && *to == r1 && r.local_pref == 10)
    });
    let r2_send_r3 = find(&trace, t0, |e| {
        e.router == r2
            && matches!(&e.kind,
                IoKind::SendAdvert { proto: Proto::Bgp, prefix: Some(px), to: Some(PeerRef::Internal(to)), route: Some(r) }
                    if *px == p && *to == r3 && r.local_pref == 10)
    });
    // Vertices 4/5: "R1/R3 recv iBGP ad P -> R2, LP=10".
    let r1_recv = find(&trace, t0, |e| {
        e.router == r1
            && matches!(&e.kind,
                IoKind::RecvAdvert { proto: Proto::Bgp, prefix: Some(px), from: Some(PeerRef::Internal(f)), route: Some(r) }
                    if *px == p && *f == r2 && r.local_pref == 10)
    });
    let r3_recv = find(&trace, t0, |e| {
        e.router == r3
            && matches!(&e.kind,
                IoKind::RecvAdvert { proto: Proto::Bgp, prefix: Some(px), from: Some(PeerRef::Internal(f)), route: Some(r) }
                    if *px == p && *f == r2 && r.local_pref == 10)
    });
    // Vertex 6: "R1 update P in BGP RIB" (its own LP-20 route wins now).
    let r1_rib = find(&trace, t0, |e| {
        e.router == r1
            && matches!(&e.kind,
                IoKind::RibInstall { proto: Proto::Bgp, prefix, route: Some(r) }
                    if *prefix == p && r.local_pref == 20)
    });
    // Vertex 7 (the fault): "R1 install P -> Ext in FIB".
    let r1_fib = find(&trace, t0, |e| {
        e.router == r1
            && matches!(&e.kind,
                IoKind::FibInstall { prefix, action: FibAction::Exit(_) } if *prefix == p)
    });

    // The edges, exactly as drawn (with the soft-reconfig hop).
    assert!(has_edge(&hbg, config, soft), "config → soft reconfig");
    assert!(
        has_edge(&hbg, soft, r2_rib),
        "soft reconfig → R2 RIB update"
    );
    assert!(has_edge(&hbg, r2_rib, r2_send_r1), "R2 RIB → send to R1");
    assert!(has_edge(&hbg, r2_rib, r2_send_r3), "R2 RIB → send to R3");
    assert!(has_edge(&hbg, r2_send_r1, r1_recv), "R2 send → R1 recv");
    assert!(has_edge(&hbg, r2_send_r3, r3_recv), "R2 send → R3 recv");
    assert!(has_edge(&hbg, r1_recv, r1_rib), "R1 recv → R1 RIB update");
    assert!(
        has_edge(&hbg, r1_rib, r1_fib),
        "R1 RIB → R1 FIB install (fault)"
    );

    // And the figure's punchline: walking up from the fault reaches the
    // config change.
    let anc = hbg.ancestors(r1_fib, 0.5);
    assert!(
        anc.contains(&config),
        "the fault's ancestry must contain the root cause"
    );
}

#[test]
fn fig4_chain_matches_ground_truth_edges() {
    // Every edge asserted above must also be a true dependency — the
    // inferred chain is not merely plausible, it is correct.
    let (trace, hbg, p, t0) = setup();
    let r1_fib = trace
        .events
        .iter()
        .filter(|e| e.router == RouterId(0) && e.time >= t0)
        .find(|e| matches!(&e.kind, IoKind::FibInstall { prefix, action: FibAction::Exit(_) } if *prefix == p))
        .unwrap()
        .id;
    let inferred_anc = hbg.ancestors(r1_fib, 0.5);
    let true_anc = trace.truth_ancestors(r1_fib);
    // The inferred ancestry of the fault must contain all true ancestors
    // concerning the prefix-P causal chain after the change.
    for a in &true_anc {
        let e = &trace.events[a.index()];
        if e.time >= t0 {
            assert!(
                inferred_anc.contains(a),
                "true ancestor missing from inferred ancestry: {e}"
            );
        }
    }
}
