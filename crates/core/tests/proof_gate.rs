//! The gate oracle from the proof-carrying repair design: a proof minted
//! against the live violating state must gate REPRODUCED; any tampering
//! with its hash chain must gate ERROR; a proof re-gated after the world
//! moved on must gate DIVERGED. In every non-REPRODUCED case the live
//! verifier state stays bit-identical to never-applied — the tentative
//! apply is confined to a discarded shadow clone.

use cpvr_core::{
    gate_repair, infer_hbg, propose_repairs, prove, root_causes, InferConfig, RepairProof,
};
use cpvr_core::{ConsistencyTracker, RepairPlan};
use cpvr_sim::scenario::paper_scenario;
use cpvr_sim::{CaptureProfile, IoKind, LatencyProfile, Simulation};
use cpvr_types::json::FromJson;
use cpvr_types::{RouterId, SimTime};
use cpvr_verify::{IncrementalVerifier, Policy};

/// Drives the Fig. 2 misconfiguration to its settled violating state and
/// mints a real proof against it, exactly as the control loop would.
struct Minted {
    sim: Simulation,
    policies: Vec<Policy>,
    verifier: IncrementalVerifier,
    plan: RepairPlan,
    proof: RepairProof,
}

fn mint(seed: u64) -> Minted {
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), seed);
    s.sim.start();
    s.sim.run_to_quiescence(100_000);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(5), s.ext_r2, &[s.prefix]);
    s.sim.run_to_quiescence(100_000);
    // The ill-considered change (Fig. 2a): prefer the backup uplink.
    let change = cpvr_bgp::ConfigChange::SetImport {
        peer: cpvr_bgp::PeerRef::External(s.ext_r2),
        map: cpvr_bgp::RouteMap::set_all(vec![cpvr_bgp::SetAction::LocalPref(10)]),
    };
    s.sim
        .schedule_config(s.sim.now() + SimTime::from_millis(20), RouterId(1), change);
    s.sim.run_to_quiescence(100_000);

    let policies = vec![Policy::PreferredExit {
        prefix: s.prefix,
        primary: s.ext_r2,
        backup: s.ext_r1,
    }];
    let horizon = s.sim.now();
    let n = s.sim.topology().num_routers();
    let tracker = ConsistencyTracker::recover(n, s.sim.trace().events.iter(), horizon);
    let verifier = IncrementalVerifier::new(
        s.sim.topology().clone(),
        tracker.dataplane().clone(),
        policies.clone(),
    );
    let report = verifier.report();
    assert!(
        !report.ok(),
        "the scenario must actually violate the policy"
    );

    // Locate the problematic FIB update the same way the guard does.
    let violated: Vec<_> = report
        .violations
        .iter()
        .map(|v| v.policy.prefix())
        .collect();
    let arrived = s.sim.trace().arrived_by(horizon);
    let bad_fib = arrived
        .iter()
        .filter(|e| {
            matches!(
                &e.kind,
                IoKind::FibInstall { prefix, .. } | IoKind::FibRemove { prefix }
                    if violated.iter().any(|vp| vp.overlaps(prefix))
            )
        })
        .max_by_key(|e| (e.time, e.id))
        .expect("a violating state implies a FIB event")
        .id;

    let cfg = InferConfig {
        rules: true,
        patterns: None,
        min_confidence: 0.8,
        proximate: false,
    };
    let hbg = infer_hbg(s.sim.trace(), &cfg);
    let causes = root_causes(s.sim.trace(), &hbg, bad_fib, 0.8);
    let plan = propose_repairs(&causes, 0.8)
        .into_iter()
        .find(|p| matches!(p.action, cpvr_core::repair::RepairAction::RevertConfig(_)))
        .expect("the misconfiguration must yield a revertible plan");
    let proof = prove(s.sim.trace(), &hbg, &verifier, &plan, bad_fib, 0.8);
    Minted {
        sim: s.sim,
        policies,
        verifier,
        plan,
        proof,
    }
}

#[test]
fn untampered_proof_gates_reproduced() {
    let m = mint(21);
    assert!(!m.proof.provenance.is_empty(), "proof carries its HBG path");
    assert_eq!(m.proof.chain.len(), m.proof.provenance.len());
    assert!(
        !m.proof.transcript.undo.is_empty(),
        "proof carries a replay"
    );
    let verdict = gate_repair(&m.verifier, &m.proof);
    assert!(
        verdict.is_reproduced(),
        "fresh proof against live state: {verdict:?}"
    );
}

#[test]
fn tampered_chain_gates_error_and_never_applies() {
    let m = mint(21);
    let before = m.proof.transcript.digest_on(m.verifier.dataplane());
    assert_eq!(before, m.proof.transcript.base_digest);
    for i in 0..m.proof.chain.len() {
        let mut forged = m.proof.clone();
        forged.chain[i] ^= 1; // one flipped bit anywhere in the chain
        let verdict = gate_repair(&m.verifier, &forged);
        assert_eq!(verdict.label(), "error", "chain[{i}] tamper: {verdict:?}");
        assert!(!verdict.is_reproduced());
    }
    // A forged provenance hop breaks the recomputed chain too.
    let mut forged = m.proof.clone();
    forged.provenance[0].digest ^= 0x8000_0000_0000_0000;
    assert_eq!(gate_repair(&m.verifier, &forged).label(), "error");
    // The gate only ever touched shadow clones: the live data plane is
    // bit-identical to never-applied.
    assert_eq!(m.proof.transcript.digest_on(m.verifier.dataplane()), before);
    assert!(!m.verifier.report().ok(), "violation still present");
}

#[test]
fn binary_byte_flip_in_chain_gates_error() {
    let m = mint(21);
    let bytes = m.proof.encode_binary();
    // Locate the chain's byte range by diffing against a re-encoding
    // with one chain digest flipped — digests are fixed-width, so the
    // encodings differ only inside that digest's 8 bytes.
    let mut flipped = m.proof.clone();
    flipped.chain[0] ^= 1;
    let flipped_bytes = flipped.encode_binary();
    assert_eq!(bytes.len(), flipped_bytes.len());
    let at = bytes
        .iter()
        .zip(&flipped_bytes)
        .position(|(a, b)| a != b)
        .expect("the tampered chain must change the wire image");
    let mut wire = bytes.clone();
    wire[at] ^= 1;
    let forged = RepairProof::decode_binary(&wire).expect("structurally valid");
    let verdict = gate_repair(&m.verifier, &forged);
    assert_eq!(verdict.label(), "error", "wire tamper: {verdict:?}");
    assert!(!verdict.is_reproduced(), "tampered proof must never apply");
}

#[test]
fn stale_proof_gates_diverged() {
    let mut m = mint(21);
    // The world moves on: the inverse config is applied and the network
    // reconverges, so the proof's base state no longer matches.
    let cpvr_core::repair::RepairAction::RevertConfig(inv) = &m.plan.action else {
        panic!("mint() only returns revertible plans");
    };
    m.sim
        .schedule_config(m.sim.now(), m.plan.router, inv.clone());
    m.sim.run_to_quiescence(100_000);
    let horizon = m.sim.now();
    let n = m.sim.topology().num_routers();
    let tracker = ConsistencyTracker::recover(n, m.sim.trace().events.iter(), horizon);
    let live = IncrementalVerifier::new(
        m.sim.topology().clone(),
        tracker.dataplane().clone(),
        m.policies.clone(),
    );
    assert!(live.report().ok(), "the repair fixed the network");
    let verdict = gate_repair(&live, &m.proof);
    assert_eq!(verdict.label(), "diverged", "stale proof: {verdict:?}");
    assert!(!verdict.is_reproduced());
}

#[test]
fn empty_provenance_gates_error() {
    let m = mint(21);
    let mut hollow = m.proof.clone();
    hollow.provenance.clear();
    hollow.chain.clear();
    assert_eq!(gate_repair(&m.verifier, &hollow).label(), "error");
}

#[test]
fn self_loop_provenance_gates_error() {
    let m = mint(21);
    // A path that revisits a hop with the original chain kept is plain
    // tampering: the chain no longer matches the hops.
    let mut looped = m.proof.clone();
    let first = looped.provenance[0].clone();
    looped.provenance.push(first);
    assert_eq!(gate_repair(&m.verifier, &looped).label(), "error");
    // Even with the chain recomputed over the looped path — internally
    // consistent — a provenance walk never revisits an event, so the
    // gate must still refuse with a defined verdict, never apply.
    looped.chain = cpvr_core::chain_over(&looped.provenance);
    let verdict = gate_repair(&m.verifier, &looped);
    assert_eq!(verdict.label(), "error", "self-loop: {verdict:?}");
    assert!(!verdict.is_reproduced());
}

#[test]
fn minted_proof_roundtrips_both_codecs() {
    let m = mint(21);
    // Hand-rolled JSON.
    let json = cpvr_types::json::to_string_compact(&m.proof);
    let parsed = cpvr_types::json::parse(&json).expect("valid JSON");
    let back = RepairProof::from_json(&parsed).expect("decodes");
    assert_eq!(back, m.proof);
    // v3 binary.
    let wire = m.proof.encode_binary();
    let back = RepairProof::decode_binary(&wire).expect("decodes");
    assert_eq!(back, m.proof);
    assert_eq!(back.repair_id(), m.proof.repair_id());
}
