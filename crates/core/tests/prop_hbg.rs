//! Property-based tests of the happens-before graph and of rule
//! inference on randomized (but causally valid) traces.

use cpvr_core::hbg::{Hbg, Hbr, HbrSource};
use cpvr_core::infer::{evaluate, infer_hbg, InferConfig};
use cpvr_core::provenance::bottleneck_confidence;
use cpvr_sim::scenario::two_exit_scenario;
use cpvr_sim::{CaptureProfile, EventId, LatencyProfile};
use cpvr_types::{RouterId, SimTime};
use proptest::prelude::*;

/// Builds a random DAG over `n` nodes: edges only from lower to higher
/// ids, so acyclicity is guaranteed.
fn arb_dag(n: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0u32..n as u32, 0u32..n as u32, 0.05f64..1.0), 0..n * 3).prop_map(
        |edges| {
            edges
                .into_iter()
                .filter(|(a, b, _)| a < b)
                .collect::<Vec<_>>()
        },
    )
}

fn graph_from(n: usize, edges: &[(u32, u32, f64)]) -> Hbg {
    let mut g = Hbg::new(n);
    for (a, b, c) in edges {
        g.add(Hbr {
            from: EventId(*a),
            to: EventId(*b),
            confidence: *c,
            source: HbrSource::Pattern,
        });
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ancestors_are_antisymmetric_and_transitive(edges in arb_dag(12), node in 0u32..12) {
        let g = graph_from(12, &edges);
        let e = EventId(node);
        let anc = g.ancestors(e, 0.0);
        prop_assert!(!anc.contains(&e), "no event precedes itself in a DAG");
        // Transitivity: ancestors of ancestors are ancestors.
        for a in &anc {
            for aa in g.ancestors(*a, 0.0) {
                prop_assert!(anc.contains(&aa));
            }
        }
        // Duality: if a is an ancestor of e, e is a descendant of a.
        for a in &anc {
            prop_assert!(g.descendants(*a, 0.0).contains(&e));
        }
    }

    #[test]
    fn roots_have_no_parents(edges in arb_dag(12), node in 0u32..12) {
        let g = graph_from(12, &edges);
        let e = EventId(node);
        for r in g.root_ancestors(e, 0.0) {
            if r != e {
                prop_assert!(g.parents(r, 0.0).is_empty());
                prop_assert!(g.ancestors(e, 0.0).contains(&r));
            }
        }
    }

    #[test]
    fn raising_threshold_shrinks_closure(edges in arb_dag(12), node in 0u32..12, lo in 0.0f64..0.5, hi in 0.5f64..1.0) {
        let g = graph_from(12, &edges);
        let e = EventId(node);
        let big = g.ancestors(e, lo);
        let small = g.ancestors(e, hi);
        for s in &small {
            prop_assert!(big.contains(s), "higher threshold must be a subset");
        }
    }

    #[test]
    fn bottleneck_confidence_is_bounded_by_edges(edges in arb_dag(10), a in 0u32..10, b in 0u32..10) {
        let g = graph_from(10, &edges);
        let conf = bottleneck_confidence(&g, EventId(a), EventId(b), 0.0);
        prop_assert!((0.0..=1.0).contains(&conf));
        if a == b {
            prop_assert_eq!(conf, 1.0);
        } else if conf > 0.0 {
            // A positive bottleneck implies reachability.
            prop_assert!(g.descendants(EventId(a), 0.0).contains(&EventId(b)));
            // And it can't exceed the best edge leaving `a`.
            let max_out = g
                .edges()
                .iter()
                .filter(|h| h.from == EventId(a))
                .map(|h| h.confidence)
                .fold(0.0f64, f64::max);
            prop_assert!(conf <= max_out + 1e-12);
        }
    }

    #[test]
    fn rule_inference_is_acyclic_on_real_traces(seed in 0u64..40) {
        let (mut sim, left, right) =
            two_exit_scenario(3, LatencyProfile::fast(), CaptureProfile::ideal(), seed);
        sim.start();
        sim.run_to_quiescence(200_000);
        let p = "8.8.8.0/24".parse().unwrap();
        sim.schedule_ext_announce(sim.now() + SimTime::from_millis(1), left, &[p]);
        sim.schedule_ext_announce(sim.now() + SimTime::from_millis(30), right, &[p]);
        sim.run_to_quiescence(200_000);
        let trace = sim.trace();
        let g = infer_hbg(trace, &InferConfig { rules: true, patterns: None, min_confidence: 0.0, proximate: false });
        // No event may be its own ancestor.
        for e in &trace.events {
            prop_assert!(!g.ancestors(e.id, 0.0).contains(&e.id), "cycle through {e}");
        }
        // And inference quality stays high across seeds, not just the one
        // seed the unit test uses.
        let st = evaluate(&g, trace, 0.5);
        prop_assert!(st.recall > 0.8, "recall {:.3} at seed {seed}", st.recall);
        prop_assert!(st.precision > 0.7, "precision {:.3} at seed {seed}", st.precision);
        let _ = RouterId(0);
    }
}
