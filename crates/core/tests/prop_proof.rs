//! Property tests for the [`RepairProof`] evidence artifact: arbitrary
//! proofs — hostile description strings, degenerate times, edge-case
//! prefixes — must round-trip bit-exactly through both wire surfaces
//! (the hand-rolled `cpvr_types::json` codec and the v3 binary codec),
//! and any single-bit tamper of the hash chain must gate ERROR, never
//! Applied.

use cpvr_bgp::{ConfigChange, PeerRef, RouteMap, SetAction};
use cpvr_core::provenance::{RootCause, RootCauseKind};
use cpvr_core::repair::{RepairAction, RepairPlan};
use cpvr_core::{chain_over, gate_repair, ProvenanceHop, RepairProof};
use cpvr_dataplane::{DataPlane, FibAction, FibUpdate, UpdateKind};
use cpvr_sim::EventId;
use cpvr_topo::builder::shapes;
use cpvr_topo::{ExtPeerId, LinkId};
use cpvr_types::json::FromJson;
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use cpvr_verify::{IncrementalVerifier, ReplayTranscript, ViolationSig};
use proptest::prelude::*;

/// JSON metacharacters, escapes, multi-byte UTF-8, and control bytes —
/// the payloads that break hand-rolled JSON first.
const DESC_PALETTE: &[char] = &[
    'a', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\0', '\u{7f}', 'é', '中', '🦀', '\u{202e}',
];

fn arb_desc() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..DESC_PALETTE.len(), 0..12)
        .prop_map(|idxs| idxs.into_iter().map(|i| DESC_PALETTE[i]).collect())
}

fn arb_time() -> impl Strategy<Value = SimTime> {
    prop_oneof![
        any::<u64>().prop_map(SimTime::from_nanos),
        Just(SimTime::ZERO),
        Just(SimTime::MAX),
    ]
}

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Ipv4Prefix::from_bits(bits, len))
}

/// Confidences stay finite: the codecs are exact for every finite f64
/// (bit-pattern in binary, shortest-round-trip text in JSON), and NaN
/// would break the `PartialEq` the assertion needs.
fn arb_conf() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(1.0),
        Just(0.8),
        (0u32..=1_000_000).prop_map(|n| n as f64 / 1_000_000.0),
    ]
}

fn arb_change() -> impl Strategy<Value = ConfigChange> {
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(p, w)| ConfigChange::SetWeight {
            peer: PeerRef::External(ExtPeerId(p)),
            weight: w,
        }),
        (any::<u32>(), any::<u32>()).prop_map(|(p, lp)| ConfigChange::SetImport {
            peer: PeerRef::Internal(RouterId(p)),
            map: RouteMap::set_all(vec![SetAction::LocalPref(lp)]),
        }),
    ]
}

fn arb_kind() -> impl Strategy<Value = RootCauseKind> {
    prop_oneof![
        (
            prop::option::of(arb_change()),
            prop::option::of(arb_change())
        )
            .prop_map(|(change, inverse)| RootCauseKind::ConfigChange { change, inverse }),
        (
            any::<bool>(),
            prop::option::of(any::<u32>().prop_map(LinkId)),
            prop::option::of(any::<u32>().prop_map(ExtPeerId)),
        )
            .prop_map(|(up, link, peer)| RootCauseKind::Hardware { up, link, peer }),
        (
            prop::option::of(any::<u32>().prop_map(ExtPeerId)),
            prop::option::of(arb_prefix()),
            any::<bool>(),
        )
            .prop_map(|(peer, prefix, withdraw)| RootCauseKind::ExternalRoute {
                peer,
                prefix,
                withdraw,
            }),
        Just(RootCauseKind::ProtocolStart),
        Just(RootCauseKind::Unexplained),
    ]
}

fn arb_cause() -> impl Strategy<Value = RootCause> {
    (
        any::<u32>(),
        any::<u32>(),
        arb_time(),
        arb_kind(),
        arb_conf(),
    )
        .prop_map(|(e, r, time, kind, confidence)| RootCause {
            event: EventId(e),
            router: RouterId(r),
            time,
            kind,
            confidence,
        })
}

fn arb_plan() -> impl Strategy<Value = RepairPlan> {
    (
        any::<u32>(),
        prop_oneof![
            arb_change().prop_map(RepairAction::RevertConfig),
            arb_desc().prop_map(RepairAction::NotifyOperator),
        ],
        arb_cause(),
        arb_desc(),
    )
        .prop_map(|(r, action, root, rationale)| RepairPlan {
            router: RouterId(r),
            action,
            root,
            rationale,
        })
}

fn arb_action() -> impl Strategy<Value = FibAction> {
    prop_oneof![
        any::<u32>().prop_map(|l| FibAction::Forward(LinkId(l))),
        any::<u32>().prop_map(|p| FibAction::Exit(ExtPeerId(p))),
        Just(FibAction::Local),
        Just(FibAction::Drop),
    ]
}

fn arb_update() -> impl Strategy<Value = FibUpdate> {
    (
        any::<u32>(),
        arb_prefix(),
        any::<bool>(),
        arb_action(),
        arb_time(),
    )
        .prop_map(|(r, prefix, install, action, at)| FibUpdate {
            router: RouterId(r),
            prefix,
            kind: if install {
                UpdateKind::Install
            } else {
                UpdateKind::Remove
            },
            action,
            at,
        })
}

fn arb_sig() -> impl Strategy<Value = ViolationSig> {
    (0usize..8, any::<u32>(), arb_desc(), arb_desc()).prop_map(
        |(policy_idx, ingress, representative, observed)| ViolationSig {
            policy_idx,
            ingress: RouterId(ingress),
            representative,
            observed,
        },
    )
}

fn arb_transcript() -> impl Strategy<Value = ReplayTranscript> {
    (
        prop::collection::vec(arb_sig(), 0..4),
        any::<u64>(),
        prop::collection::vec(arb_update(), 0..6),
        prop::collection::vec(arb_update(), 0..6),
    )
        .prop_map(
            |(base_violations, base_digest, undo, redo)| ReplayTranscript {
                base_violations,
                base_digest,
                undo,
                redo,
            },
        )
}

fn arb_hops() -> impl Strategy<Value = Vec<ProvenanceHop>> {
    prop::collection::vec(
        (any::<u32>(), any::<u32>(), arb_time(), any::<u64>()).prop_map(|(e, r, time, digest)| {
            ProvenanceHop {
                event: EventId(e),
                router: RouterId(r),
                time,
                digest,
            }
        }),
        0..6,
    )
}

/// Arbitrary but internally consistent: the chain is recomputed from
/// the hops, so the only way the gate's chain check fails is tampering.
fn arb_proof() -> impl Strategy<Value = RepairProof> {
    (
        (arb_plan(), any::<u32>(), arb_conf(), arb_hops()),
        (
            prop::collection::vec(
                (
                    prop::collection::vec(arb_desc(), 0..4),
                    prop::collection::vec(arb_prefix(), 0..4),
                )
                    .prop_map(|(behavior, prefixes)| {
                        cpvr_core::PredictedBehavior { behavior, prefixes }
                    }),
                0..3,
            ),
            prop::collection::vec(
                (any::<u32>(), prop::option::of(arb_action())).prop_map(|(r, a)| (RouterId(r), a)),
                0..4,
            ),
            arb_transcript(),
        ),
    )
        .prop_map(
            |((plan, target, min_confidence, provenance), (predicted, template, transcript))| {
                let chain = chain_over(&provenance);
                RepairProof {
                    plan,
                    target: EventId(target),
                    min_confidence,
                    provenance,
                    chain,
                    predicted,
                    template,
                    transcript,
                }
            },
        )
}

/// A minimal live verifier for the tamper gate: the chain check fires
/// before any replay, so its verdict is independent of this state.
fn scratch_verifier() -> IncrementalVerifier {
    let (topo, _e1, _e2) = shapes::paper_triangle();
    IncrementalVerifier::new(topo, DataPlane::new(3), vec![])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn proof_roundtrips_json(proof in arb_proof()) {
        let text = cpvr_types::json::to_string_compact(&proof);
        let parsed = cpvr_types::json::parse(&text).expect("codec emits valid JSON");
        let back = RepairProof::from_json(&parsed).expect("own output decodes");
        prop_assert_eq!(back, proof);
    }

    #[test]
    fn proof_roundtrips_binary(proof in arb_proof()) {
        let wire = proof.encode_binary();
        let back = RepairProof::decode_binary(&wire).expect("own output decodes");
        prop_assert_eq!(&back, &proof);
        prop_assert_eq!(back.repair_id(), proof.repair_id());
    }

    #[test]
    fn binary_truncation_is_a_clean_error(proof in arb_proof()) {
        let wire = proof.encode_binary();
        // Every strict prefix must fail to decode — never panic, never
        // yield a proof.
        for cut in [0, 1, wire.len() / 3, wire.len() / 2, wire.len() - 1] {
            prop_assert!(RepairProof::decode_binary(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn chain_bit_flip_gates_error(
        proof in arb_proof(),
        link in 0usize..64,
        bit in 0u32..64,
    ) {
        let v = scratch_verifier();
        let mut forged = proof;
        if forged.provenance.is_empty() {
            // An empty chain has nothing to flip; give it one real hop
            // so the tamper is against a consistent chain.
            forged.provenance.push(ProvenanceHop {
                event: EventId(0),
                router: RouterId(0),
                time: SimTime::ZERO,
                digest: 7,
            });
            forged.chain = chain_over(&forged.provenance);
        }
        let i = link % forged.chain.len();
        forged.chain[i] ^= 1u64 << bit;
        let verdict = gate_repair(&v, &forged);
        prop_assert_eq!(verdict.label(), "error");
        prop_assert!(!verdict.is_reproduced(), "tampered proof must never apply");
    }
}
