//! Transient-violation detection (§5: "the verifier detects all
//! transient and persistent violations"): a withdrawal with a standby
//! backup route briefly blackholes traffic while the network reconverges.
//! A single converged check sees nothing; the sequence sweep catches the
//! window.

use cpvr_core::snapshot::verify_throughout;
use cpvr_sim::scenario::paper_scenario;
use cpvr_sim::{CaptureProfile, LatencyProfile};
use cpvr_types::SimTime;
use cpvr_verify::{verify, Policy};

const MAX_EVENTS: usize = 300_000;

#[test]
fn withdrawal_reconvergence_has_a_transient_blackhole() {
    // Converge on R2's uplink (LP 30); R1's uplink (LP 20) is standby.
    let mut s = paper_scenario(LatencyProfile::cisco(), CaptureProfile::ideal(), 77);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
    s.sim.run_to_quiescence(MAX_EVENTS);
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(10),
        s.ext_r2,
        &[s.prefix],
    );
    s.sim.run_to_quiescence(MAX_EVENTS);
    let t_withdraw = s.sim.now() + SimTime::from_millis(10);
    s.sim
        .schedule_ext_withdraw(t_withdraw, s.ext_r2, &[s.prefix]);
    s.sim.run_to_quiescence(MAX_EVENTS);
    let t_end = s.sim.now();

    let policy = Policy::Reachable { prefix: s.prefix };
    // Final state: fully compliant (failed over to R1's uplink).
    let final_report = verify(
        s.sim.topology(),
        s.sim.dataplane(),
        std::slice::from_ref(&policy),
    );
    assert!(final_report.ok(), "{:?}", final_report.violations);

    // But the sweep over the reconvergence window finds the transient:
    // R2 dropped its FIB entry before R1's re-announcement reached
    // everyone, so traffic briefly blackholed.
    let sweep = verify_throughout(
        s.sim.trace(),
        s.sim.topology(),
        std::slice::from_ref(&policy),
        t_withdraw,
        t_end,
    );
    assert!(sweep.checkpoints > 0);
    assert!(
        !sweep.ok(),
        "the withdrawal reconvergence must contain a transient violation"
    );
    let first = sweep.first_violation().unwrap();
    assert!(first >= t_withdraw && first <= t_end);
}

#[test]
fn clean_convergence_has_no_transients_for_loopfreedom() {
    // The Fig. 1a → 1b convergence never forms a loop at any instant
    // (BGP's ordering guarantees it — the very fact the paper uses to
    // debunk the Fig. 1c false alarm).
    let mut s = paper_scenario(LatencyProfile::cisco(), CaptureProfile::ideal(), 78);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    let t0 = s.sim.now();
    s.sim
        .schedule_ext_announce(t0 + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
    s.sim.run_to_quiescence(MAX_EVENTS);
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(10),
        s.ext_r2,
        &[s.prefix],
    );
    s.sim.run_to_quiescence(MAX_EVENTS);
    let sweep = verify_throughout(
        s.sim.trace(),
        s.sim.topology(),
        &[Policy::LoopFree { prefix: s.prefix }],
        t0,
        s.sim.now(),
    );
    assert!(sweep.checkpoints > 0);
    assert!(
        sweep.ok(),
        "no instant of the real sequence may loop: {:?}",
        sweep.violating
    );
}

#[test]
fn sweep_respects_the_window() {
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), 79);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    let t_mid = s.sim.now();
    s.sim
        .schedule_ext_announce(t_mid + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
    s.sim.run_to_quiescence(MAX_EVENTS);
    // A window before any FIB events for P: zero checkpoints for the
    // policy's prefix... the boot-time IGP fib events still count as
    // checkpoints, so instead check: a window after the end has none.
    let after = verify_throughout(
        s.sim.trace(),
        s.sim.topology(),
        &[Policy::Reachable { prefix: s.prefix }],
        s.sim.now() + SimTime::from_secs(10),
        s.sim.now() + SimTime::from_secs(20),
    );
    assert_eq!(after.checkpoints, 0);
}
