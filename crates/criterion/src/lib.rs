//! A minimal, dependency-free subset of the Criterion benchmarking API,
//! vendored in-tree so `cargo bench` works without network access.
//!
//! It implements the surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `sample_size`, and the `criterion_group!` / `criterion_main!` macros
//! — with a straightforward measurement loop: warm up briefly, then time
//! `sample_size` samples and report min / median / mean wall-clock time
//! per iteration. No statistics beyond that, no HTML reports.
//!
//! Environment knobs:
//! - `CPVR_BENCH_SAMPLES` overrides every group's sample size.
//! - `CPVR_BENCH_WARMUP_MS` overrides the warm-up budget (default 300).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering, e.g. `construct/1423ev`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    warmup: Duration,
    /// Per-sample mean nanoseconds per iteration, filled by `iter`.
    results: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration wall-clock samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample costs ~warmup/samples.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warmup {
            std::hint::black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;
        let target_sample_secs = (self.warmup.as_secs_f64() / self.samples as f64).max(1e-3);
        let batch = ((target_sample_secs / per_iter).ceil() as u64).max(1);

        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.results.push(dt * 1e9 / batch as f64);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if self.criterion.sample_override.is_none() {
            self.sample_size = n.max(2);
        }
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            warmup: self.criterion.warmup,
            results: Vec::new(),
        };
        f(&mut b);
        report(&self.name, id, &b.results);
    }

    /// Ends the group. (No cross-group state to flush in this subset.)
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(group: &str, id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{group}/{id}: min {}  median {}  mean {}  ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        sorted.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_override: Option<usize>,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_override = std::env::var("CPVR_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map(|n| n.max(2));
        let warmup_ms = std::env::var("CPVR_BENCH_WARMUP_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            sample_override,
            warmup: Duration::from_millis(warmup_ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_override.unwrap_or(10);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        std::env::set_var("CPVR_BENCH_WARMUP_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn id_renders_like_criterion() {
        assert_eq!(
            BenchmarkId::new("construct", "1423ev").to_string(),
            "construct/1423ev"
        );
    }
}
