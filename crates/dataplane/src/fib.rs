//! Forwarding information base.

use cpvr_topo::{ExtPeerId, LinkId};
use cpvr_types::{Ipv4Prefix, PrefixTrie, RouterId, SimTime};
use std::fmt;
use std::net::Ipv4Addr;

/// What a router does with a packet that matched a FIB entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FibAction {
    /// Forward to the neighbor across this link.
    Forward(LinkId),
    /// Hand off to an external peer (traffic exits the domain).
    Exit(ExtPeerId),
    /// Deliver locally (the destination is this router's own address).
    Local,
    /// Explicitly drop (null route).
    Drop,
}

impl fmt::Debug for FibAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FibAction::Forward(l) => write!(f, "fwd({l})"),
            FibAction::Exit(p) => write!(f, "exit({p})"),
            FibAction::Local => write!(f, "local"),
            FibAction::Drop => write!(f, "drop"),
        }
    }
}

impl fmt::Display for FibAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One FIB entry: the action plus bookkeeping for provenance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FibEntry {
    /// The forwarding action.
    pub action: FibAction,
    /// When the entry was installed (simulation time).
    pub installed_at: SimTime,
}

/// Install or remove?
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum UpdateKind {
    /// The entry was installed or replaced.
    Install,
    /// The entry was removed.
    Remove,
}

/// A single FIB delta — the unit of data-plane change the paper's verifier
/// gates on before letting it reach hardware.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FibUpdate {
    /// The router whose FIB changed.
    pub router: RouterId,
    /// The affected prefix.
    pub prefix: Ipv4Prefix,
    /// Install or remove.
    pub kind: UpdateKind,
    /// The new action for installs; the removed action for removes.
    pub action: FibAction,
    /// When the update was produced.
    pub at: SimTime,
}

/// One router's forwarding table.
#[derive(Clone, Debug, Default)]
pub struct Fib {
    entries: PrefixTrie<FibEntry>,
}

impl Fib {
    /// An empty FIB.
    pub fn new() -> Self {
        Fib {
            entries: PrefixTrie::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the FIB has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Installs (or replaces) an entry, returning the previous one if any.
    pub fn install(&mut self, prefix: Ipv4Prefix, entry: FibEntry) -> Option<FibEntry> {
        self.entries.insert(prefix, entry)
    }

    /// Removes the entry for `prefix`, returning it if present.
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<FibEntry> {
        self.entries.remove(prefix)
    }

    /// The entry exactly at `prefix`.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&FibEntry> {
        self.entries.get(prefix)
    }

    /// Longest-prefix-match lookup for a destination address.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<(Ipv4Prefix, FibEntry)> {
        self.entries.longest_match(dst).map(|(p, e)| (p, *e))
    }

    /// All entries in prefix order.
    pub fn entries(&self) -> Vec<(Ipv4Prefix, FibEntry)> {
        self.entries
            .iter()
            .into_iter()
            .map(|(p, e)| (p, *e))
            .collect()
    }

    /// All prefixes with an entry, in prefix order.
    pub fn prefixes(&self) -> Vec<Ipv4Prefix> {
        self.entries.prefixes()
    }

    /// The underlying prefix trie, for callers that want to walk the
    /// table structurally (equivalence-class slicing) without collecting
    /// intermediate vectors.
    pub fn trie(&self) -> &PrefixTrie<FibEntry> {
        &self.entries
    }

    /// Applies a [`FibUpdate`] to this table. The update's router field is
    /// not checked; callers route updates to the right FIB.
    pub fn apply(&mut self, u: &FibUpdate) {
        match u.kind {
            UpdateKind::Install => {
                self.install(
                    u.prefix,
                    FibEntry {
                        action: u.action,
                        installed_at: u.at,
                    },
                );
            }
            UpdateKind::Remove => {
                self.remove(&u.prefix);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn e(action: FibAction) -> FibEntry {
        FibEntry {
            action,
            installed_at: SimTime::ZERO,
        }
    }

    #[test]
    fn install_lookup_remove() {
        let mut f = Fib::new();
        assert!(f.is_empty());
        f.install(p("10.0.0.0/8"), e(FibAction::Forward(LinkId(0))));
        let (pre, entry) = f.lookup("10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!(pre, p("10.0.0.0/8"));
        assert_eq!(entry.action, FibAction::Forward(LinkId(0)));
        assert!(f.remove(&p("10.0.0.0/8")).is_some());
        assert!(f.lookup("10.1.2.3".parse().unwrap()).is_none());
    }

    #[test]
    fn lpm_prefers_specific() {
        let mut f = Fib::new();
        f.install(p("10.0.0.0/8"), e(FibAction::Forward(LinkId(0))));
        f.install(p("10.1.0.0/16"), e(FibAction::Exit(ExtPeerId(0))));
        assert_eq!(
            f.lookup("10.1.9.9".parse().unwrap()).unwrap().1.action,
            FibAction::Exit(ExtPeerId(0))
        );
        assert_eq!(
            f.lookup("10.2.0.1".parse().unwrap()).unwrap().1.action,
            FibAction::Forward(LinkId(0))
        );
    }

    #[test]
    fn replace_returns_old() {
        let mut f = Fib::new();
        f.install(p("10.0.0.0/8"), e(FibAction::Drop));
        let old = f.install(p("10.0.0.0/8"), e(FibAction::Local)).unwrap();
        assert_eq!(old.action, FibAction::Drop);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn apply_updates() {
        let mut f = Fib::new();
        let u1 = FibUpdate {
            router: RouterId(0),
            prefix: p("10.0.0.0/8"),
            kind: UpdateKind::Install,
            action: FibAction::Forward(LinkId(3)),
            at: SimTime::from_millis(5),
        };
        f.apply(&u1);
        assert_eq!(
            f.get(&p("10.0.0.0/8")).unwrap().installed_at,
            SimTime::from_millis(5)
        );
        let u2 = FibUpdate {
            kind: UpdateKind::Remove,
            ..u1
        };
        f.apply(&u2);
        assert!(f.is_empty());
    }

    #[test]
    fn action_display() {
        assert_eq!(FibAction::Forward(LinkId(2)).to_string(), "fwd(L2)");
        assert_eq!(FibAction::Exit(ExtPeerId(1)).to_string(), "exit(Ext1)");
        assert_eq!(FibAction::Local.to_string(), "local");
        assert_eq!(FibAction::Drop.to_string(), "drop");
    }
}

cpvr_types::impl_json_enum!(FibAction {
    Forward(l),
    Exit(p),
    Local,
    Drop,
});

cpvr_types::impl_json_enum!(UpdateKind { Install, Remove });

cpvr_types::impl_json_struct!(FibUpdate {
    router,
    prefix,
    kind,
    action,
    at,
});
