//! The data plane: FIBs and packet forwarding.
//!
//! The control plane's *output* is a forwarding information base (FIB) per
//! router; the data plane verifier's *input* is a snapshot of all of them.
//! This crate provides:
//!
//! * [`Fib`] — one router's longest-prefix-match forwarding table.
//! * [`FibAction`] — what a matching packet does (forward over a link, exit
//!   to an external peer, deliver locally, or drop).
//! * [`FibUpdate`] — a single install/remove delta, the unit the paper's
//!   verifier interposes on ("only allow the data plane to be updated if
//!   the inputs and outputs are deemed correct").
//! * [`DataPlane`] — all routers' FIBs plus [`trace`](DataPlane::trace),
//!   which walks a packet hop by hop and classifies the outcome
//!   (delivered / looped / blackholed), exactly the checks data-plane
//!   verifiers like HSA and VeriFlow perform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fib;
pub mod trace;

pub use fib::{Fib, FibAction, FibEntry, FibUpdate, UpdateKind};
pub use trace::{DataPlane, Hop, TraceOutcome, TraceResult};
