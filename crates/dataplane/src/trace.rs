//! Packet tracing across the assembled data plane.
//!
//! [`DataPlane::trace`] walks a packet hop by hop using each router's FIB
//! and the topology's link state, classifying the outcome. This is the
//! primitive the verifier builds on: a policy violation is, concretely, a
//! trace whose outcome differs from what the policy demands.

use crate::fib::{Fib, FibAction, FibUpdate};
use cpvr_topo::{ExtPeerId, Topology};
use cpvr_types::{Ipv4Prefix, PrefixTrie, RouterId, SimTime};
use std::fmt;
use std::net::Ipv4Addr;

/// One step of a forwarding trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// The router making the forwarding decision.
    pub router: RouterId,
    /// The FIB prefix that matched, if any.
    pub matched: Option<Ipv4Prefix>,
    /// The action taken.
    pub action: Option<FibAction>,
}

/// How a traced packet ended up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The packet exited the domain via this external peer.
    Exited(ExtPeerId),
    /// The packet was delivered locally at this router.
    DeliveredLocal(RouterId),
    /// The packet revisited a router: a forwarding loop. The field is the
    /// router at which the loop closed.
    Loop(RouterId),
    /// The packet was dropped: no FIB match, an explicit null route, or a
    /// next hop over a down link. The field is where it died.
    Blackhole(RouterId),
}

impl TraceOutcome {
    /// True if the packet reached *some* destination (exited or delivered).
    pub fn is_delivered(&self) -> bool {
        matches!(
            self,
            TraceOutcome::Exited(_) | TraceOutcome::DeliveredLocal(_)
        )
    }
}

impl fmt::Display for TraceOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceOutcome::Exited(p) => write!(f, "exited via {p}"),
            TraceOutcome::DeliveredLocal(r) => write!(f, "delivered at {r}"),
            TraceOutcome::Loop(r) => write!(f, "loop at {r}"),
            TraceOutcome::Blackhole(r) => write!(f, "blackhole at {r}"),
        }
    }
}

/// A full forwarding trace: the hop sequence and the outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceResult {
    /// Hops in order, starting at the ingress router.
    pub hops: Vec<Hop>,
    /// Final disposition.
    pub outcome: TraceOutcome,
}

impl TraceResult {
    /// The sequence of routers traversed.
    pub fn router_path(&self) -> Vec<RouterId> {
        self.hops.iter().map(|h| h.router).collect()
    }
}

/// All routers' FIBs, assembled for verification or simulation of traffic.
///
/// A `DataPlane` can be the *live* data plane maintained by the simulator
/// or a *snapshot* assembled by the verifier; the same tracing code serves
/// both, which is the point of data-plane verification (it operates on the
/// control plane's output, not a model).
///
/// ```
/// use cpvr_dataplane::{DataPlane, FibAction, FibEntry, TraceOutcome};
/// use cpvr_topo::builder::shapes;
/// use cpvr_types::{RouterId, SimTime};
///
/// let (topo, _e1, e2) = shapes::paper_triangle();
/// let mut dp = DataPlane::new(3);
/// let l12 = topo.link_between(RouterId(0), RouterId(1)).unwrap().id;
/// dp.fib_mut(RouterId(0)).install(
///     "8.8.8.0/24".parse().unwrap(),
///     FibEntry { action: FibAction::Forward(l12), installed_at: SimTime::ZERO },
/// );
/// dp.fib_mut(RouterId(1)).install(
///     "8.8.8.0/24".parse().unwrap(),
///     FibEntry { action: FibAction::Exit(e2), installed_at: SimTime::ZERO },
/// );
/// let t = dp.trace(&topo, RouterId(0), "8.8.8.8".parse().unwrap());
/// assert_eq!(t.outcome, TraceOutcome::Exited(e2));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DataPlane {
    fibs: Vec<Fib>,
    /// Per-router capture time — meaningful for snapshots; `SimTime::ZERO`
    /// for live planes.
    taken_at: Vec<SimTime>,
}

impl DataPlane {
    /// An empty data plane for `n` routers.
    pub fn new(n: usize) -> Self {
        DataPlane {
            fibs: vec![Fib::new(); n],
            taken_at: vec![SimTime::ZERO; n],
        }
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.fibs.len()
    }

    /// The FIB of one router.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn fib(&self, r: RouterId) -> &Fib {
        &self.fibs[r.index()]
    }

    /// Mutable access to one router's FIB.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn fib_mut(&mut self, r: RouterId) -> &mut Fib {
        &mut self.fibs[r.index()]
    }

    /// When router `r`'s FIB was captured (snapshots only).
    pub fn taken_at(&self, r: RouterId) -> SimTime {
        self.taken_at[r.index()]
    }

    /// Marks the capture time of router `r`'s FIB.
    pub fn set_taken_at(&mut self, r: RouterId, t: SimTime) {
        self.taken_at[r.index()] = t;
    }

    /// Applies a FIB update to the owning router's table.
    pub fn apply(&mut self, u: &FibUpdate) {
        self.fibs[u.router.index()].apply(u);
    }

    /// Traces a packet for destination `dst` injected at `ingress`.
    ///
    /// The trace honors link state: forwarding over a down link blackholes
    /// at the sending router (packets into a dead wire die), and exiting to
    /// a down external peer likewise blackholes — this is exactly the
    /// paper's Fig. 2b hazard, where stale FIB entries keep pointing at a
    /// withdrawn uplink.
    pub fn trace(&self, topo: &Topology, ingress: RouterId, dst: Ipv4Addr) -> TraceResult {
        let mut hops = Vec::new();
        let mut visited = vec![false; self.fibs.len()];
        let mut cur = ingress;
        loop {
            if visited[cur.index()] {
                hops.push(Hop {
                    router: cur,
                    matched: None,
                    action: None,
                });
                return TraceResult {
                    hops,
                    outcome: TraceOutcome::Loop(cur),
                };
            }
            visited[cur.index()] = true;
            let hit = self.fibs[cur.index()].lookup(dst);
            let (matched, entry) = match hit {
                Some((p, e)) => (Some(p), e),
                None => {
                    hops.push(Hop {
                        router: cur,
                        matched: None,
                        action: None,
                    });
                    return TraceResult {
                        hops,
                        outcome: TraceOutcome::Blackhole(cur),
                    };
                }
            };
            hops.push(Hop {
                router: cur,
                matched,
                action: Some(entry.action),
            });
            match entry.action {
                FibAction::Local => {
                    return TraceResult {
                        hops,
                        outcome: TraceOutcome::DeliveredLocal(cur),
                    };
                }
                FibAction::Drop => {
                    return TraceResult {
                        hops,
                        outcome: TraceOutcome::Blackhole(cur),
                    };
                }
                FibAction::Exit(p) => {
                    let outcome = if topo.ext_peer(p).state.is_up() {
                        TraceOutcome::Exited(p)
                    } else {
                        TraceOutcome::Blackhole(cur)
                    };
                    return TraceResult { hops, outcome };
                }
                FibAction::Forward(l) => {
                    let link = topo.link(l);
                    if !link.state.is_up() {
                        return TraceResult {
                            hops,
                            outcome: TraceOutcome::Blackhole(cur),
                        };
                    }
                    cur = link.other_end(cur).0;
                }
            }
        }
    }

    /// The union of all prefixes present in any FIB, deduplicated, in
    /// prefix order. This is the input to equivalence-class slicing.
    pub fn all_prefixes(&self) -> Vec<Ipv4Prefix> {
        self.prefix_union().prefixes()
    }

    /// The union of all installed prefixes as a trie, each mapped to the
    /// number of routers holding an entry for it. This is the structure
    /// the trie-driven equivalence-class computation walks, and the one
    /// an incremental verifier keeps live across [`FibUpdate`]s (the
    /// refcount tells it when a prefix leaves the union entirely).
    pub fn prefix_union(&self) -> PrefixTrie<usize> {
        let mut t: PrefixTrie<usize> = PrefixTrie::new();
        for f in &self.fibs {
            for (p, _) in f.trie().iter() {
                match t.get_mut(&p) {
                    Some(c) => *c += 1,
                    None => {
                        t.insert(p, 1);
                    }
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fib::{FibEntry, UpdateKind};
    use cpvr_topo::builder::shapes;
    use cpvr_topo::LinkState;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn entry(action: FibAction) -> FibEntry {
        FibEntry {
            action,
            installed_at: SimTime::ZERO,
        }
    }

    /// Line R1—R2—R3 with an exit at R3 for 8.8.8.0/24.
    fn line_dp() -> (cpvr_topo::Topology, DataPlane) {
        let (mut topo, _e1, e2) = shapes::two_exit_line(3);
        let _ = &mut topo;
        let mut dp = DataPlane::new(3);
        let l12 = topo.link_between(RouterId(0), RouterId(1)).unwrap().id;
        let l23 = topo.link_between(RouterId(1), RouterId(2)).unwrap().id;
        dp.fib_mut(RouterId(0))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l12)));
        dp.fib_mut(RouterId(1))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l23)));
        dp.fib_mut(RouterId(2))
            .install(p("8.8.8.0/24"), entry(FibAction::Exit(e2)));
        (topo, dp)
    }

    #[test]
    fn delivered_trace() {
        let (topo, dp) = line_dp();
        let t = dp.trace(&topo, RouterId(0), "8.8.8.8".parse().unwrap());
        assert!(t.outcome.is_delivered());
        assert_eq!(t.router_path(), vec![RouterId(0), RouterId(1), RouterId(2)]);
        match t.outcome {
            TraceOutcome::Exited(pid) => assert_eq!(pid.0, 1),
            o => panic!("unexpected outcome {o}"),
        }
    }

    #[test]
    fn no_match_blackholes() {
        let (topo, dp) = line_dp();
        let t = dp.trace(&topo, RouterId(0), "9.9.9.9".parse().unwrap());
        assert_eq!(t.outcome, TraceOutcome::Blackhole(RouterId(0)));
        assert_eq!(t.hops.len(), 1);
        assert!(t.hops[0].matched.is_none());
    }

    #[test]
    fn null_route_blackholes() {
        let (topo, mut dp) = line_dp();
        dp.fib_mut(RouterId(1))
            .install(p("8.8.8.0/24"), entry(FibAction::Drop));
        let t = dp.trace(&topo, RouterId(0), "8.8.8.8".parse().unwrap());
        assert_eq!(t.outcome, TraceOutcome::Blackhole(RouterId(1)));
    }

    #[test]
    fn loop_detected() {
        let (topo, mut dp) = line_dp();
        let l12 = topo.link_between(RouterId(0), RouterId(1)).unwrap().id;
        // R2 points back at R1: classic two-node loop.
        dp.fib_mut(RouterId(1))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l12)));
        let t = dp.trace(&topo, RouterId(0), "8.8.8.8".parse().unwrap());
        assert_eq!(t.outcome, TraceOutcome::Loop(RouterId(0)));
        assert_eq!(t.router_path(), vec![RouterId(0), RouterId(1), RouterId(0)]);
    }

    #[test]
    fn down_link_blackholes() {
        let (mut topo, dp) = line_dp();
        let l23 = topo.link_between(RouterId(1), RouterId(2)).unwrap().id;
        topo.set_link_state(l23, LinkState::Down);
        let t = dp.trace(&topo, RouterId(0), "8.8.8.8".parse().unwrap());
        assert_eq!(t.outcome, TraceOutcome::Blackhole(RouterId(1)));
    }

    #[test]
    fn down_ext_peer_blackholes() {
        let (mut topo, dp) = line_dp();
        let e2 = topo.ext_peer_by_name("UplinkRight").unwrap().id;
        topo.set_ext_peer_state(e2, LinkState::Down);
        let t = dp.trace(&topo, RouterId(0), "8.8.8.8".parse().unwrap());
        assert_eq!(t.outcome, TraceOutcome::Blackhole(RouterId(2)));
    }

    #[test]
    fn local_delivery() {
        let (topo, mut dp) = line_dp();
        dp.fib_mut(RouterId(0))
            .install(p("10.255.0.1/32"), entry(FibAction::Local));
        let t = dp.trace(&topo, RouterId(0), "10.255.0.1".parse().unwrap());
        assert_eq!(t.outcome, TraceOutcome::DeliveredLocal(RouterId(0)));
    }

    #[test]
    fn apply_routes_to_right_router() {
        let mut dp = DataPlane::new(2);
        let u = FibUpdate {
            router: RouterId(1),
            prefix: p("8.8.8.0/24"),
            kind: UpdateKind::Install,
            action: FibAction::Drop,
            at: SimTime::from_millis(1),
        };
        dp.apply(&u);
        assert!(dp.fib(RouterId(0)).is_empty());
        assert_eq!(dp.fib(RouterId(1)).len(), 1);
    }

    #[test]
    fn all_prefixes_dedupes_and_sorts() {
        let (_, mut dp) = line_dp();
        dp.fib_mut(RouterId(0))
            .install(p("1.0.0.0/8"), entry(FibAction::Drop));
        let all = dp.all_prefixes();
        assert_eq!(all, vec![p("1.0.0.0/8"), p("8.8.8.0/24")]);
    }

    #[test]
    fn prefix_union_refcounts_installations() {
        let (_, mut dp) = line_dp();
        dp.fib_mut(RouterId(0))
            .install(p("1.0.0.0/8"), entry(FibAction::Drop));
        let u = dp.prefix_union();
        assert_eq!(u.get(&p("8.8.8.0/24")), Some(&3));
        assert_eq!(u.get(&p("1.0.0.0/8")), Some(&1));
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn snapshot_times() {
        let mut dp = DataPlane::new(2);
        dp.set_taken_at(RouterId(1), SimTime::from_millis(7));
        assert_eq!(dp.taken_at(RouterId(0)), SimTime::ZERO);
        assert_eq!(dp.taken_at(RouterId(1)), SimTime::from_millis(7));
    }
}
