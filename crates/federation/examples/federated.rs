//! A live 3-member federation folding the paper scenario (§5).
//!
//! Three collectors bind loopback listeners, connect pairwise over the
//! wire codec's peer frames, and each fold only their owned routers'
//! capture streams. Routers stream to the member that owns them; the
//! members exchange frontiers, boundary edges, and partial verdicts,
//! and the shutdown merge produces the same global report a single
//! collector would — without any member ever seeing the full trace.
//!
//! Run with: `cargo run -p cpvr-federation --example federated`

use cpvr_collector::wal::{wait_for, TempDir};
use cpvr_collector::{CollectorRole, SocketSink};
use cpvr_core::FederationPlan;
use cpvr_federation::Federation;
use cpvr_sim::scenario::paper_scenario;
use cpvr_sim::{CaptureProfile, IoEvent, LatencyProfile};
use cpvr_types::{RouterId, SimTime};
use std::time::Duration;

const MEMBERS: u32 = 3;

fn main() {
    // The paper scenario under syslog-skewed capture: two external
    // announcements arriving 395 ms apart, so intermediate horizons cut
    // conversations open and the members issue real WaitFor verdicts.
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::syslog(), 7);
    s.sim.start();
    s.sim.run_to_quiescence(100_000);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(5), s.ext_r1, &[s.prefix]);
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(400),
        s.ext_r2,
        &[s.prefix],
    );
    s.sim.run_to_quiescence(100_000);
    let events = s.sim.trace().events.clone();
    let n_routers = events.iter().map(|e| e.router.0).max().unwrap() + 1;

    let plan = FederationPlan::uniform(MEMBERS);
    let tmp = TempDir::new("federated-example").expect("tempdir");
    let fed = Federation::launch(plan, n_routers, tmp.path()).expect("launch federation");
    println!("federation of {} members over loopback TCP:", fed.members());
    for m in 0..fed.members() {
        let owned: Vec<u32> = (0..n_routers)
            .filter(|&r| fed.plan().of_router(RouterId(r)) == m)
            .collect();
        println!("  member {m} on {} owns routers {owned:?}", fed.addr(m));
    }

    // Each router's capture tap dials the member that owns it.
    let mut sinks: Vec<SocketSink> = (0..n_routers)
        .map(|r| {
            let r = RouterId(r);
            SocketSink::connect(fed.addr_of_router(r), r, n_routers).expect("connect")
        })
        .collect();
    for sink in &mut sinks {
        let mut mine: Vec<&IoEvent> = events
            .iter()
            .filter(|e| e.router == sink.source())
            .collect();
        mine.sort_by_key(|e| (e.time, e.id));
        for e in mine {
            sink.send(e).expect("send");
        }
        assert!(sink.drain(Duration::from_secs(10)).expect("drain"));
    }

    // A coarse watermark grid, then byes: every step becomes one
    // federated round (frontier exchange → boundary edges → partial
    // verdicts → merged global verdict on each member).
    let end = events
        .iter()
        .map(|e| e.arrived_at.unwrap_or(e.time))
        .max()
        .unwrap();
    let mut t = SimTime::ZERO;
    while t < end + SimTime::from_millis(10) {
        t += SimTime::from_millis(10);
        for sink in &mut sinks {
            sink.watermark(t).expect("watermark");
        }
    }
    for sink in &mut sinks {
        sink.bye().expect("bye");
    }
    for m in 0..fed.members() {
        assert!(
            wait_for(Duration::from_secs(10), || {
                fed.handle(m).stats().watermark == Some(SimTime::MAX)
            }),
            "member {m} never folded to the final horizon"
        );
    }
    drop(sinks);

    let report = fed.shutdown().expect("merge");
    let g = &report.global;
    println!("\nmerged global fold:");
    println!("  events folded        : {}", g.events());
    println!("  HBG canonical edges  : {}", g.canonical_edges().len());
    let (waits, resolved) = g.wait_stats();
    println!("  WaitFor verdicts     : {waits} issued, {resolved} resolved");
    println!(
        "  final verdict        : {}",
        if g.status().is_consistent() {
            "consistent"
        } else {
            "WAITING"
        }
    );

    println!("\nper-member cost (what federation actually shipped):");
    for (m, member) in report.members.iter().enumerate() {
        let snap = member.metrics.as_ref().expect("metrics on by default");
        let rounds = snap.counter_total("cpvr_federation_rounds_total");
        let b_sent = snap.counter_total("cpvr_boundary_events_sent_total");
        let b_bytes = snap.counter_total("cpvr_boundary_bytes_sent_total");
        let (p50, worst) = snap
            .histogram("cpvr_partial_verdict_nanos", &[])
            .map_or((0, 0), |h| (h.p50(), h.max));
        println!(
            "  member {m}: {} local events, {rounds} rounds, \
             {b_sent} boundary events out ({b_bytes} B), \
             round p50 {} ms (worst {} ms)",
            member.stats.events,
            p50 / 1_000_000,
            worst / 1_000_000
        );
        if let CollectorRole::Member { peers, .. } = &member.role {
            for p in peers {
                let min = p.min.expect("byes push every frontier to MAX");
                println!(
                    "    peer {} final frontier min: {}",
                    p.member,
                    if min == SimTime::MAX {
                        "MAX (bye)".to_string()
                    } else {
                        format!("{min}")
                    }
                );
            }
        }
    }
}
