//! Launching and merging a federation of collectors (§5).
//!
//! The [`cpvr_collector::federation`] module implements one federation
//! *member*: a collector that folds only its owned routers' streams and
//! exchanges frontiers, boundary edges, and partial verdicts with its
//! peers over the wire codec's peer frames. This crate is the harness
//! around N of them:
//!
//! * [`Federation::launch`] pre-binds every member's loopback listener
//!   *first* — so each member's [`FederationConfig`] can carry the full
//!   peer address list — then starts the members over their own WAL
//!   directories.
//! * [`Federation::launch_on`] is the explicit-plumbing variant for
//!   tests that interpose chaos proxies on the collector↔collector
//!   links or hand-build per-member configs.
//! * [`Federation::restart_member`] stops one member and starts a fresh
//!   process instance over the same WAL directory and listen address —
//!   the crash-recovery path: the member replays its journal,
//!   regenerates its outbound peer traffic under a new session, and the
//!   surviving peers deduplicate the replayed stream.
//! * [`Federation::shutdown`] collects every member's
//!   [`MemberFold`](cpvr_collector::MemberFold) and merges them with
//!   [`merge_members`] into one global [`FoldReport`] — erroring if the
//!   members disagree on the global verdict, which the federated round
//!   protocol guarantees they cannot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cpvr_collector::collector::{Collector, CollectorConfig, CollectorHandle, CollectorStats};
use cpvr_collector::pipeline::RecoveryReport;
use cpvr_collector::wal::WalConfig;
use cpvr_collector::{merge_members, CollectorRole, FederationConfig, FoldReport, MemberFold};
use cpvr_core::FederationPlan;
use cpvr_obs::Snapshot;
use cpvr_types::RouterId;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::Path;

/// A running federation: one [`CollectorHandle`] per member.
pub struct Federation {
    plan: FederationPlan,
    cfgs: Vec<CollectorConfig>,
    addrs: Vec<SocketAddr>,
    handles: Vec<Option<CollectorHandle>>,
}

/// Everything a member left behind besides its fold (which went into
/// the merged [`FederationReport::global`]).
pub struct MemberReport {
    /// The member's final live counters.
    pub stats: CollectorStats,
    /// Standalone vs member — for a member, the final per-peer summary.
    pub role: CollectorRole,
    /// Owned sources still gating the watermark at shutdown.
    pub stalled: Vec<RouterId>,
    /// What WAL replay found when this member (re)started.
    pub recovery: Option<RecoveryReport>,
    /// The member's shutdown metrics dump, if metrics were enabled.
    pub metrics: Option<Snapshot>,
    /// The member's fold at exit. Present from
    /// [`Federation::stop_member`], where it would otherwise be lost;
    /// `None` from [`Federation::shutdown`], where every fold went into
    /// the merged [`FederationReport::global`].
    pub fold: Option<FoldReport>,
}

/// The federation's merged shutdown state.
pub struct FederationReport {
    /// The global fold: every member's partial HBG, verdict, wait
    /// stats, and data-plane slice merged — the same shape a sharded
    /// single collector reports.
    pub global: FoldReport,
    /// Per-member leftovers, indexed by member.
    pub members: Vec<MemberReport>,
}

impl Federation {
    /// Binds one ephemeral loopback listener per member of `plan`, then
    /// starts every member with the full peer address list, journaling
    /// into `wal_root/member-<i>`. Existing journals are replayed — so
    /// launching twice over the same root is a whole-federation restart.
    pub fn launch(plan: FederationPlan, n_routers: u32, wal_root: &Path) -> io::Result<Federation> {
        let members = plan.members();
        let listeners: Vec<TcpListener> = (0..members)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<io::Result<_>>()?;
        let cfgs = (0..members)
            .map(|i| {
                let dir = wal_root.join(format!("member-{i}"));
                std::fs::create_dir_all(&dir)?;
                Ok(CollectorConfig::new(n_routers)
                    .with_wal(WalConfig::new(&dir))
                    .with_federation(FederationConfig {
                        plan: plan.clone(),
                        member: i,
                        peers: addrs.clone(),
                    }))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Self::launch_on(cfgs, listeners)
    }

    /// Starts one member per `(config, listener)` pair. Every config
    /// must carry a [`FederationConfig`] over the same plan, with
    /// member indices `0..n` in order; the peer addresses may point
    /// anywhere (e.g. at chaos proxies fronting the real listeners).
    pub fn launch_on(
        cfgs: Vec<CollectorConfig>,
        listeners: Vec<TcpListener>,
    ) -> io::Result<Federation> {
        if cfgs.is_empty() || cfgs.len() != listeners.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "need one listener per member config",
            ));
        }
        let plan = match cfgs[0].federation.as_ref() {
            Some(f) => f.plan.clone(),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "member configs must carry a FederationConfig",
                ))
            }
        };
        for (i, cfg) in cfgs.iter().enumerate() {
            let ok = cfg
                .federation
                .as_ref()
                .is_some_and(|f| f.member == i as u32 && f.plan.members() == plan.members());
            if !ok {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("config {i} is not member {i} of the shared plan"),
                ));
            }
        }
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<io::Result<_>>()?;
        let mut handles = Vec::with_capacity(cfgs.len());
        for (cfg, listener) in cfgs.iter().zip(listeners) {
            handles.push(Some(Collector::start_on(cfg.clone(), listener)?));
        }
        Ok(Federation {
            plan,
            cfgs,
            addrs,
            handles,
        })
    }

    /// Federation size.
    pub fn members(&self) -> u32 {
        self.handles.len() as u32
    }

    /// The shared ownership plan.
    pub fn plan(&self) -> &FederationPlan {
        &self.plan
    }

    /// Member `i`'s listen address.
    pub fn addr(&self, member: u32) -> SocketAddr {
        self.addrs[member as usize]
    }

    /// Where a router's capture tap should connect: the listen address
    /// of the member that owns it.
    pub fn addr_of_router(&self, r: RouterId) -> SocketAddr {
        self.addrs[self.plan.of_router(r) as usize]
    }

    /// Member `i`'s handle. Panics if the member was stopped with
    /// [`stop_member`](Self::stop_member) and not restarted.
    pub fn handle(&self, member: u32) -> &CollectorHandle {
        self.handles[member as usize]
            .as_ref()
            .expect("member is stopped")
    }

    /// Every running member's handle, in member order.
    pub fn handles(&self) -> impl Iterator<Item = &CollectorHandle> {
        self.handles.iter().filter_map(|h| h.as_ref())
    }

    /// Shuts one member down (cleanly — its WAL is the crash artifact;
    /// an OS-level kill leaves the same journal minus the final fsync)
    /// and returns its merged-at-exit fold so tests can inspect it.
    /// Peers keep running: their links to the stopped member buffer and
    /// back off until a restart.
    pub fn stop_member(&mut self, member: u32) -> io::Result<MemberReport> {
        let handle = self.handles[member as usize]
            .take()
            .ok_or_else(|| io::Error::other(format!("member {member} already stopped")))?;
        let report = handle.shutdown()?;
        Ok(MemberReport {
            stats: report.stats,
            role: report.role,
            stalled: report.stalled,
            recovery: report.recovery,
            metrics: report.metrics,
            fold: Some(report.pipeline),
        })
    }

    /// Starts a fresh process instance of a stopped member on its
    /// original listen address, recovering from its WAL directory. The
    /// recovered member replays its journal, re-dials its peers under a
    /// new session, and regenerates every outbound peer frame; the
    /// survivors deduplicate the replay semantically.
    pub fn restart_member(&mut self, member: u32) -> io::Result<()> {
        let slot = &mut self.handles[member as usize];
        if slot.is_some() {
            return Err(io::Error::other(format!("member {member} is running")));
        }
        let listener = TcpListener::bind(self.addrs[member as usize])?;
        *slot = Some(Collector::start_on(
            self.cfgs[member as usize].clone(),
            listener,
        )?);
        Ok(())
    }

    /// Shuts every member down and merges their folds into the global
    /// report. Every member must be running; the merge errors if the
    /// members disagree on verdict, wait stats, or watermark.
    pub fn shutdown(self) -> io::Result<FederationReport> {
        let mut folds: Vec<MemberFold> = Vec::with_capacity(self.handles.len());
        let mut members = Vec::with_capacity(self.handles.len());
        for (i, slot) in self.handles.into_iter().enumerate() {
            let handle = slot.ok_or_else(|| {
                io::Error::other(format!("member {i} is stopped; restart it before shutdown"))
            })?;
            let report = handle.shutdown()?;
            match report.pipeline {
                FoldReport::Member(m) => folds.push(*m),
                _ => {
                    return Err(io::Error::other(format!(
                        "member {i} did not report a federation fold"
                    )))
                }
            }
            members.push(MemberReport {
                stats: report.stats,
                role: report.role,
                stalled: report.stalled,
                recovery: report.recovery,
                metrics: report.metrics,
                fold: None,
            });
        }
        Ok(FederationReport {
            global: merge_members(folds)?,
            members,
        })
    }
}
