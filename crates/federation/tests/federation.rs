//! The federation's oracle: N peer-connected collectors must reproduce
//! a single merged collector bit-for-bit on the same trace — snapshot
//! verdict, wait accounting, HBG edge multiset, and assembled data
//! plane — live, after one member crash-recovers from its WAL, and
//! across a collector↔collector partition/heal cycle.
//!
//! The streaming schedule is *phased* (everything sent and drained
//! before the watermark grid steps in lockstep across all sources, each
//! step fully folded federation-wide before the next), pinning down the
//! exact barrier sequence so order-sensitive observables — the §4.3
//! wait counters above all — are bit-comparable.

use cpvr_collector::collector::{Collector, CollectorConfig, CollectorReport};
use cpvr_collector::fault::{ChaosProxy, FaultPlan};
use cpvr_collector::wal::{wait_for, TempDir, WalConfig};
use cpvr_collector::{CollectorRole, FederationConfig, FoldReport, SocketSink};
use cpvr_core::FederationPlan;
use cpvr_dataplane::{DataPlane, FibEntry};
use cpvr_federation::{Federation, FederationReport};
use cpvr_sim::scenario::paper_scenario;
use cpvr_sim::{CaptureProfile, IoEvent, LatencyProfile};
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use std::net::TcpListener;
use std::time::Duration;

const N_ROUTERS: u32 = 3;
const MEMBERS: u32 = 3;
const STEP: SimTime = SimTime::from_millis(2);

type DpFingerprint = Vec<(u32, Vec<(Ipv4Prefix, FibEntry)>, SimTime)>;

fn dataplane_fingerprint(dp: &DataPlane) -> DpFingerprint {
    (0..dp.num_routers() as u32)
        .map(|r| {
            let r = RouterId(r);
            (r.0, dp.fib(r).entries(), dp.taken_at(r))
        })
        .collect()
}

/// Syslog-skewed capture so intermediate horizons cut conversations
/// open and the tracker issues real WaitFor verdicts — without them the
/// wait-accounting comparison would be vacuous.
fn sample_events(seed: u64) -> Vec<IoEvent> {
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::syslog(), seed);
    s.sim.start();
    s.sim.run_to_quiescence(100_000);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(5), s.ext_r1, &[s.prefix]);
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(400),
        s.ext_r2,
        &[s.prefix],
    );
    s.sim.run_to_quiescence(100_000);
    s.sim.trace().events.clone()
}

fn events_for(events: &[IoEvent], router: RouterId) -> Vec<IoEvent> {
    let mut mine: Vec<IoEvent> = events
        .iter()
        .filter(|e| e.router == router)
        .cloned()
        .collect();
    mine.sort_by_key(|e| (e.time, e.id));
    mine
}

/// The lockstep horizon grid: every capture *arrival* must fall under
/// some step (WaitFor verdicts live in arrival-time windows).
fn grid(events: &[IoEvent]) -> Vec<SimTime> {
    let end = events
        .iter()
        .map(|e| e.arrived_at.unwrap_or(e.time))
        .max()
        .unwrap();
    let mut steps = Vec::new();
    let mut t = SimTime::ZERO;
    while t < end + STEP {
        t += STEP;
        steps.push(t);
    }
    steps
}

/// The single-collector oracle, streamed under the same phased schedule.
fn run_phased_single(events: &[IoEvent]) -> CollectorReport {
    let cfg = CollectorConfig::new(N_ROUTERS);
    let handle = Collector::start(cfg, "127.0.0.1:0").expect("bind loopback");
    let addr = handle.local_addr();
    let mut sinks: Vec<SocketSink> = (0..N_ROUTERS)
        .map(|r| SocketSink::connect(addr, RouterId(r), N_ROUTERS).expect("connect"))
        .collect();
    for sink in &mut sinks {
        for e in events_for(events, sink.source()) {
            sink.send(&e).expect("send");
        }
        assert!(sink.drain(Duration::from_secs(30)).expect("drain"));
    }
    for t in grid(events) {
        for sink in &mut sinks {
            sink.watermark(t).expect("watermark");
        }
        assert!(
            wait_for(Duration::from_secs(30), || {
                handle.stats().watermark == Some(t)
            }),
            "single: watermark never reached {t:?}: {:?}",
            handle.stats()
        );
    }
    for sink in &mut sinks {
        sink.bye().expect("bye");
    }
    assert!(wait_for(Duration::from_secs(30), || {
        handle.stats().watermark == Some(SimTime::MAX)
    }));
    drop(sinks);
    handle.shutdown().expect("clean shutdown")
}

fn connect_sinks(fed: &Federation) -> Vec<SocketSink> {
    (0..N_ROUTERS)
        .map(|r| {
            let r = RouterId(r);
            SocketSink::connect(fed.addr_of_router(r), r, N_ROUTERS).expect("connect")
        })
        .collect()
}

fn send_all(sinks: &mut [SocketSink], events: &[IoEvent]) {
    for sink in sinks.iter_mut() {
        for e in events_for(events, sink.source()) {
            sink.send(&e).expect("send");
        }
        assert!(
            sink.drain(Duration::from_secs(30)).expect("drain"),
            "router {} left events unacked",
            sink.source().0
        );
    }
}

/// One lockstep grid step: promise `t` everywhere, then wait until the
/// *global* verdict for `t` landed on every member.
fn step_all(fed: &Federation, sinks: &mut [SocketSink], t: SimTime) {
    for sink in sinks.iter_mut() {
        sink.watermark(t).expect("watermark");
    }
    for m in 0..fed.members() {
        assert!(
            wait_for(Duration::from_secs(30), || {
                fed.handle(m).stats().watermark == Some(t)
            }),
            "member {m}: watermark never reached {t:?}: {:?}",
            fed.handle(m).stats()
        );
    }
}

fn finish(fed: &Federation, sinks: Vec<SocketSink>) {
    let mut sinks = sinks;
    for sink in &mut sinks {
        sink.bye().expect("bye");
    }
    for m in 0..fed.members() {
        assert!(
            wait_for(Duration::from_secs(30), || {
                fed.handle(m).stats().watermark == Some(SimTime::MAX)
            }),
            "member {m}: byes never pushed the watermark to MAX: {:?}",
            fed.handle(m).stats()
        );
    }
    drop(sinks);
}

/// Every observable the paper's verifier exposes must match the single
/// collector: verdict, wait stats, HBG multiset, fold counters, data
/// plane, watermark.
fn assert_equivalent(fed: &FederationReport, single: &CollectorReport, label: &str) {
    let got = &fed.global;
    let base = &single.pipeline;
    assert_eq!(got.events(), base.events(), "{label}: event count");
    assert_eq!(got.processed(), base.processed(), "{label}: folded events");
    assert_eq!(got.pending(), 0, "{label}: pending events");
    assert_eq!(
        got.canonical_edges(),
        base.canonical_edges(),
        "{label}: HBG must be bit-identical"
    );
    assert_eq!(
        got.edge_counts(),
        base.edge_counts(),
        "{label}: per-rule edge counts"
    );
    assert_eq!(got.status(), base.status(), "{label}: snapshot verdict");
    assert_eq!(
        got.wait_stats(),
        base.wait_stats(),
        "{label}: wait accounting"
    );
    assert_eq!(got.watermark(), base.watermark(), "{label}: watermark");
    assert_eq!(
        dataplane_fingerprint(got.dataplane()),
        dataplane_fingerprint(base.dataplane()),
        "{label}: assembled data plane"
    );
    for (m, member) in fed.members.iter().enumerate() {
        match &member.role {
            CollectorRole::Member {
                member,
                members,
                peers,
            } => {
                assert_eq!(*member, m as u32);
                assert_eq!(*members, MEMBERS);
                assert_eq!(peers.len() as u32, MEMBERS - 1, "{label}: peer summaries");
                for p in peers {
                    assert_eq!(p.min, Some(SimTime::MAX), "{label}: final peer frontier");
                }
            }
            CollectorRole::Standalone => panic!("{label}: member {m} reported standalone"),
        }
    }
}

#[test]
fn federated_fold_matches_single_collector() {
    let events = sample_events(17);
    assert!(events.len() > 100, "scenario should produce a real trace");
    let single = run_phased_single(&events);
    assert!(
        single.pipeline.wait_stats().0 > 0,
        "the stepped schedule should issue real WaitFor verdicts"
    );

    let tmp = TempDir::new("fed-equiv").unwrap();
    let fed = Federation::launch(FederationPlan::uniform(MEMBERS), N_ROUTERS, tmp.path()).unwrap();
    let mut sinks = connect_sinks(&fed);
    send_all(&mut sinks, &events);
    for t in grid(&events) {
        step_all(&fed, &mut sinks, t);
    }
    finish(&fed, sinks);
    let report = fed.shutdown().expect("merge");
    assert!(matches!(report.global, FoldReport::Sharded(_)));
    assert_equivalent(&report, &single, "live");
}

#[test]
fn member_crash_recovery_preserves_equivalence() {
    let events = sample_events(17);
    let single = run_phased_single(&events);

    let tmp = TempDir::new("fed-crash").unwrap();
    let mut fed =
        Federation::launch(FederationPlan::uniform(MEMBERS), N_ROUTERS, tmp.path()).unwrap();
    let mut sinks = connect_sinks(&fed);
    send_all(&mut sinks, &events);
    let steps = grid(&events);
    let (first, rest) = steps.split_at(steps.len() / 2);
    for &t in first {
        step_all(&fed, &mut sinks, t);
    }

    // Kill member 0 at a quiescent grid boundary and bring a fresh
    // process instance up over the same journal and listen address. Its
    // routers' sinks ride their reconnect policy; its peers deduplicate
    // the regenerated peer stream under the new session.
    fed.stop_member(0).expect("stop member 0");
    fed.restart_member(0).expect("restart member 0");
    let recovered = fed
        .handle(0)
        .recovery()
        .expect("wal configured => recovery report")
        .clone();
    assert!(recovered.events_replayed > 0, "member 0 replayed its fold");
    assert!(!recovered.torn_tail);
    assert_eq!(recovered.watermark, Some(first[first.len() - 1]));

    for &t in rest {
        step_all(&fed, &mut sinks, t);
    }
    finish(&fed, sinks);
    let report = fed.shutdown().expect("merge");
    assert_equivalent(&report, &single, "post-recovery");
}

/// Severs every collector↔collector link touching member 0 (router
/// links stay up), holds the partition long enough to prove the fold
/// stalls rather than diverges, heals, and requires the go-back-N
/// replay to converge to the single collector bit-for-bit.
///
/// Ignored unless `CHAOS_PARTITION` is set — this is the CI chaos arm.
#[test]
fn partition_heal_converges_bit_identical() {
    if std::env::var("CHAOS_PARTITION").is_err() {
        eprintln!("skipping: set CHAOS_PARTITION=1 to run the partition/heal cycle");
        return;
    }
    let events = sample_events(17);
    let single = run_phased_single(&events);

    // Real listeners first, then one chaos proxy per *ordered* member
    // pair: member i dials proxies[i][j], which forwards to member j.
    let tmp = TempDir::new("fed-partition").unwrap();
    let listeners: Vec<TcpListener> = (0..MEMBERS)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let real: Vec<std::net::SocketAddr> =
        listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    let plan = FederationPlan::uniform(MEMBERS);
    let mut proxies: Vec<Vec<Option<ChaosProxy>>> = Vec::new();
    for i in 0..MEMBERS as usize {
        let mut row = Vec::new();
        for (j, &to) in real.iter().enumerate() {
            row.push(if i == j {
                None
            } else {
                Some(ChaosProxy::start(to, FaultPlan::none()).unwrap())
            });
        }
        proxies.push(row);
    }
    let cfgs: Vec<CollectorConfig> = (0..MEMBERS)
        .map(|i| {
            let dir = tmp.path().join(format!("member-{i}"));
            std::fs::create_dir_all(&dir).unwrap();
            let peers = (0..MEMBERS as usize)
                .map(|j| {
                    proxies[i as usize][j]
                        .as_ref()
                        .map_or(real[i as usize], |p| p.local_addr())
                })
                .collect();
            CollectorConfig::new(N_ROUTERS)
                .with_wal(WalConfig::new(&dir))
                .with_federation(FederationConfig {
                    plan: plan.clone(),
                    member: i,
                    peers,
                })
        })
        .collect();
    let fed = Federation::launch_on(cfgs, listeners).unwrap();
    let mut sinks = connect_sinks(&fed);
    send_all(&mut sinks, &events);

    let steps = grid(&events);
    let (first, rest) = steps.split_at(steps.len() / 2);
    for &t in first {
        step_all(&fed, &mut sinks, t);
    }
    let held = first[first.len() - 1];

    // Partition: both directions of every link touching member 0.
    for (j, row) in proxies.iter().enumerate().skip(1) {
        proxies[0][j].as_ref().unwrap().partition();
        row[0].as_ref().unwrap().partition();
    }
    // Clients keep promising into the partition; the federated minimum
    // cannot move without member 0's frontier, so every member must
    // hold the last completed horizon instead of folding ahead.
    let during: Vec<SimTime> = rest[..rest.len().min(3)].to_vec();
    for &t in &during {
        for sink in sinks.iter_mut() {
            sink.watermark(t).expect("watermark");
        }
    }
    std::thread::sleep(Duration::from_millis(500));
    for m in 0..MEMBERS {
        assert_eq!(
            fed.handle(m).stats().watermark,
            Some(held),
            "member {m} folded ahead during the partition"
        );
    }

    // Heal: links reconnect with capped backoff and the go-back-N
    // buffers replay every frontier, boundary batch, and partial in
    // order — the queued grid values fold serially to convergence.
    for (j, row) in proxies.iter().enumerate().skip(1) {
        proxies[0][j].as_ref().unwrap().heal();
        row[0].as_ref().unwrap().heal();
    }
    if let Some(&t) = during.last() {
        for m in 0..fed.members() {
            assert!(
                wait_for(Duration::from_secs(30), || {
                    fed.handle(m).stats().watermark == Some(t)
                }),
                "member {m}: never converged to {t:?} after heal: {:?}",
                fed.handle(m).stats()
            );
        }
    }
    for &t in &rest[during.len()..] {
        step_all(&fed, &mut sinks, t);
    }
    finish(&fed, sinks);
    let report = fed.shutdown().expect("merge");
    assert_equivalent(&report, &single, "post-heal");
}
