//! EIGRP-lite: a DUAL distance-vector IGP.
//!
//! Implements the DUAL machinery that changes *routing outcomes and event
//! ordering*: per-neighbor reported distances, the feasibility condition
//! (a neighbor is a feasible successor iff its reported distance is
//! strictly below our feasible distance, guaranteeing loop freedom),
//! passive/active route states, and query/reply diffusing computations.
//! The simplification relative to full EIGRP: we do not count outstanding
//! replies — a route in active state revives as soon as the first usable
//! reply or update arrives, and the feasible distance resets at that
//! moment (which is exactly when full DUAL would reset it, just without
//! the synchronization barrier). Composite metrics are reduced to additive
//! link costs.
//!
//! Why EIGRP is here at all: the paper's §4.1 notes that EIGRP's
//! happens-before rule differs from BGP's — `[R install P in FIB] → [R
//! send EIGRP advertisement for P]`, i.e. EIGRP advertises only after the
//! FIB install, not after the RIB install. The simulator emits I/O events
//! in exactly that order for EIGRP instances, giving the inference engine
//! a protocol with genuinely different rules to learn.

use crate::{diff_tables, IgpOutputs, IgpRoute};
use cpvr_topo::{LinkId, Topology};
use cpvr_types::{Ipv4Prefix, RouterId};
use std::collections::BTreeMap;

/// Metric representing unreachability in advertisements and replies.
pub const UNREACHABLE: u32 = u32::MAX;

/// EIGRP protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EigrpMsg {
    /// A (triggered) update: `(prefix, reported distance)` pairs. A
    /// reported distance of [`UNREACHABLE`] is a poison.
    Update {
        /// Advertised vectors.
        routes: Vec<(Ipv4Prefix, u32)>,
    },
    /// The sender lost its route for `prefix` and is asking for ours. A
    /// query also implies the sender's route is unreachable (EIGRP queries
    /// carry the route as unreachable).
    Query {
        /// The prefix in question.
        prefix: Ipv4Prefix,
    },
    /// Answer to a [`EigrpMsg::Query`]: the responder's own distance.
    Reply {
        /// The prefix in question.
        prefix: Ipv4Prefix,
        /// The responder's current distance, or [`UNREACHABLE`].
        rd: u32,
    },
}

/// Per-prefix DUAL state.
#[derive(Clone, Debug, Default)]
struct DualState {
    /// Reported distance per neighbor. Absent = never advertised or
    /// poisoned.
    reported: BTreeMap<RouterId, u32>,
    /// Feasible distance while the route is passive; `None` while active
    /// (or never had a route).
    fd: Option<u32>,
    /// True while a diffusing computation is outstanding (prevents query
    /// storms).
    active: bool,
    /// Locally connected cost, if this prefix is ours.
    local: Option<u32>,
}

/// One router's EIGRP instance.
#[derive(Clone, Debug)]
pub struct EigrpInstance {
    me: RouterId,
    state: BTreeMap<Ipv4Prefix, DualState>,
    table: BTreeMap<Ipv4Prefix, IgpRoute>,
}

impl EigrpInstance {
    /// Creates an instance for router `me`.
    pub fn new(me: RouterId) -> Self {
        EigrpInstance {
            me,
            state: BTreeMap::new(),
            table: BTreeMap::new(),
        }
    }

    /// The router this instance runs on.
    pub fn router(&self) -> RouterId {
        self.me
    }

    /// The current route table.
    pub fn table(&self) -> &BTreeMap<Ipv4Prefix, IgpRoute> {
        &self.table
    }

    /// Starts the instance: installs connected prefixes and advertises.
    pub fn start(&mut self, topo: &Topology) -> IgpOutputs<EigrpMsg> {
        let me = topo.router(self.me);
        self.state
            .entry(Ipv4Prefix::host(me.loopback))
            .or_default()
            .local = Some(0);
        for iface in &me.ifaces {
            self.state.entry(iface.subnet).or_default().local = Some(0);
        }
        let (mut out, queries) = self.rebuild(topo);
        out.msgs = self.full_update_msgs(topo);
        self.append_queries(topo, queries, &mut out);
        out
    }

    /// Handles a local link-status change.
    pub fn link_change(&mut self, topo: &Topology) -> IgpOutputs<EigrpMsg> {
        let live: Vec<RouterId> = topo
            .up_neighbors(self.me)
            .into_iter()
            .map(|(nb, _)| nb)
            .collect();
        for st in self.state.values_mut() {
            st.reported.retain(|nb, _| live.contains(nb));
        }
        let before = self.table.clone();
        let (mut out, queries) = self.rebuild(topo);
        if self.table != before {
            out.msgs = self.full_update_msgs(topo);
        }
        self.append_queries(topo, queries, &mut out);
        out
    }

    /// Handles a message from a neighbor.
    pub fn recv(&mut self, topo: &Topology, from: RouterId, msg: EigrpMsg) -> IgpOutputs<EigrpMsg> {
        if !topo.up_neighbors(self.me).iter().any(|(nb, _)| *nb == from) {
            return IgpOutputs::empty();
        }
        match msg {
            EigrpMsg::Update { routes } => {
                for (prefix, rd) in &routes {
                    let st = self.state.entry(*prefix).or_default();
                    if *rd == UNREACHABLE {
                        st.reported.remove(&from);
                    } else {
                        st.reported.insert(from, *rd);
                    }
                }
                let before = self.table.clone();
                let (mut out, queries) = self.rebuild(topo);
                if self.table != before {
                    out.msgs = self.full_update_msgs(topo);
                }
                self.append_queries(topo, queries, &mut out);
                out
            }
            EigrpMsg::Query { prefix } => {
                // The querier has no route; its reported distance is gone.
                self.state.entry(prefix).or_default().reported.remove(&from);
                let before = self.table.clone();
                let (mut out, queries) = self.rebuild(topo);
                if self.table != before {
                    out.msgs = self.full_update_msgs(topo);
                }
                self.append_queries(topo, queries, &mut out);
                // Always answer with our own (post-rebuild) distance.
                out.msgs.push((
                    from,
                    EigrpMsg::Reply {
                        prefix,
                        rd: self.own_distance(&prefix),
                    },
                ));
                out
            }
            EigrpMsg::Reply { prefix, rd } => {
                let st = self.state.entry(prefix).or_default();
                if rd == UNREACHABLE {
                    st.reported.remove(&from);
                } else {
                    st.reported.insert(from, rd);
                }
                let before = self.table.clone();
                let (mut out, queries) = self.rebuild(topo);
                if self.table != before {
                    out.msgs = self.full_update_msgs(topo);
                }
                self.append_queries(topo, queries, &mut out);
                out
            }
        }
    }

    /// Distance this router would advertise for `prefix`, or
    /// [`UNREACHABLE`].
    fn own_distance(&self, prefix: &Ipv4Prefix) -> u32 {
        self.table
            .get(prefix)
            .map(|r| r.metric)
            .unwrap_or(UNREACHABLE)
    }

    /// Recomputes successors under DUAL. Returns the outputs (deltas only)
    /// plus the prefixes that entered active state and need queries.
    fn rebuild(&mut self, topo: &Topology) -> (IgpOutputs<EigrpMsg>, Vec<Ipv4Prefix>) {
        let mut nb_cost: BTreeMap<RouterId, (u32, LinkId)> = BTreeMap::new();
        for (nb, l) in topo.up_neighbors(self.me) {
            nb_cost.entry(nb).or_insert((topo.link(l).igp_cost, l));
        }
        let mut new_table: BTreeMap<Ipv4Prefix, IgpRoute> = BTreeMap::new();
        let mut to_query: Vec<Ipv4Prefix> = Vec::new();
        let mut dead: Vec<Ipv4Prefix> = Vec::new();
        for (prefix, st) in self.state.iter_mut() {
            // Local routes win outright and are always passive.
            if let Some(c) = st.local {
                st.fd = Some(c);
                st.active = false;
                new_table.insert(
                    *prefix,
                    IgpRoute {
                        metric: c,
                        next_hop: None,
                    },
                );
                continue;
            }
            // Candidate distances via each live neighbor.
            let candidates: Vec<(u32, RouterId, LinkId, u32)> = st
                .reported
                .iter()
                .filter_map(|(nb, rd)| {
                    nb_cost
                        .get(nb)
                        .map(|(cost, link)| (rd.saturating_add(*cost), *nb, *link, *rd))
                })
                .collect();
            match st.fd {
                // Passive: only feasible successors (RD < FD) may be used.
                Some(fd) => {
                    let best_fs = candidates
                        .iter()
                        .filter(|(_, _, _, rd)| *rd < fd)
                        .min_by_key(|(d, nb, _, _)| (*d, *nb));
                    match best_fs {
                        Some(&(dist, nb, link, _)) => {
                            st.fd = Some(fd.min(dist));
                            new_table.insert(
                                *prefix,
                                IgpRoute {
                                    metric: dist,
                                    next_hop: Some((nb, link)),
                                },
                            );
                        }
                        None => {
                            // No feasible successor: go active and query.
                            st.fd = None;
                            if !st.active {
                                st.active = true;
                                to_query.push(*prefix);
                            }
                        }
                    }
                }
                // Active (or fresh): the first usable answer re-seats the
                // route and resets FD, ending the diffusing computation.
                None => {
                    let best = candidates.iter().min_by_key(|(d, nb, _, _)| (*d, *nb));
                    match best {
                        Some(&(dist, nb, link, _)) => {
                            st.fd = Some(dist);
                            st.active = false;
                            new_table.insert(
                                *prefix,
                                IgpRoute {
                                    metric: dist,
                                    next_hop: Some((nb, link)),
                                },
                            );
                        }
                        None => {
                            if st.reported.is_empty() && !st.active {
                                dead.push(*prefix);
                            }
                        }
                    }
                }
            }
        }
        for p in dead {
            self.state.remove(&p);
        }
        let deltas = diff_tables(&self.table, &new_table);
        self.table = new_table;
        (
            IgpOutputs {
                msgs: Vec::new(),
                deltas,
            },
            to_query,
        )
    }

    /// Appends Query messages for newly active prefixes, to all up
    /// neighbors.
    fn append_queries(
        &self,
        topo: &Topology,
        queries: Vec<Ipv4Prefix>,
        out: &mut IgpOutputs<EigrpMsg>,
    ) {
        let mut nbs: Vec<RouterId> = topo
            .up_neighbors(self.me)
            .into_iter()
            .map(|(nb, _)| nb)
            .collect();
        nbs.sort();
        nbs.dedup();
        for prefix in queries {
            for nb in &nbs {
                out.msgs.push((*nb, EigrpMsg::Query { prefix }));
            }
        }
    }

    /// Per-neighbor full-table updates with split horizon + poisoned
    /// reverse.
    fn full_update_msgs(&self, topo: &Topology) -> Vec<(RouterId, EigrpMsg)> {
        let mut nbs: Vec<RouterId> = topo
            .up_neighbors(self.me)
            .into_iter()
            .map(|(nb, _)| nb)
            .collect();
        nbs.sort();
        nbs.dedup();
        nbs.into_iter()
            .map(|nb| {
                let routes = self
                    .state
                    .keys()
                    .map(|p| {
                        let through_nb = matches!(
                            self.table.get(p).and_then(|r| r.next_hop),
                            Some((v, _)) if v == nb
                        );
                        let d = if through_nb {
                            UNREACHABLE
                        } else {
                            self.own_distance(p)
                        };
                        (*p, d)
                    })
                    .collect();
                (nb, EigrpMsg::Update { routes })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_topo::builder::{shapes, TopologyBuilder};
    use cpvr_topo::{LinkState, Topology};
    use cpvr_types::AsNum;

    fn converge(topo: &Topology, insts: &mut [EigrpInstance]) {
        let mut queue: Vec<(RouterId, RouterId, EigrpMsg)> = Vec::new();
        for i in insts.iter_mut() {
            let me = i.router();
            for (to, m) in i.start(topo).msgs {
                queue.push((me, to, m));
            }
        }
        pump(topo, insts, queue);
    }

    fn pump(
        topo: &Topology,
        insts: &mut [EigrpInstance],
        mut queue: Vec<(RouterId, RouterId, EigrpMsg)>,
    ) {
        let mut n = 0;
        while let Some((from, to, msg)) = queue.pop() {
            n += 1;
            assert!(n < 500_000, "EIGRP did not quiesce");
            for (nxt, m) in insts[to.index()].recv(topo, from, msg).msgs {
                queue.push((to, nxt, m));
            }
        }
    }

    fn loopback(topo: &Topology, r: RouterId) -> Ipv4Prefix {
        Ipv4Prefix::host(topo.router(r).loopback)
    }

    #[test]
    fn line_converges_with_costs() {
        let topo = shapes::line(4);
        let mut insts: Vec<EigrpInstance> = topo.router_ids().map(EigrpInstance::new).collect();
        converge(&topo, &mut insts);
        let lb = loopback(&topo, RouterId(3));
        let r = insts[0].table()[&lb];
        assert_eq!(r.metric, 30);
        assert_eq!(r.next_hop.unwrap().0, RouterId(1));
    }

    #[test]
    fn feasible_successor_used_after_failure() {
        // Triangle with costs: R1-R2 = 10, R1-R3 = 25, R2-R3 = 10.
        // R1's successor to R3's loopback is via R2 (20); direct R3 (25)
        // has RD 0 < FD 20, so it IS a feasible successor. Failing R1—R2
        // must repair locally to the direct path.
        let mut b = TopologyBuilder::new(AsNum(1));
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let r3 = b.router("R3");
        b.link(r1, r2, 10);
        b.link(r1, r3, 25);
        b.link(r2, r3, 10);
        let mut topo = b.build();
        let mut insts: Vec<EigrpInstance> = topo.router_ids().map(EigrpInstance::new).collect();
        converge(&topo, &mut insts);
        let lb3 = loopback(&topo, r3);
        assert_eq!(insts[0].table()[&lb3].metric, 20);
        assert_eq!(insts[0].table()[&lb3].next_hop.unwrap().0, r2);
        let l = topo.link_between(r1, r2).unwrap().id;
        topo.set_link_state(l, LinkState::Down);
        let mut queue = Vec::new();
        for r in [r1, r2] {
            for (to, m) in insts[r.index()].link_change(&topo).msgs {
                queue.push((r, to, m));
            }
        }
        pump(&topo, &mut insts, queue);
        assert_eq!(insts[0].table()[&lb3].metric, 25);
        assert_eq!(insts[0].table()[&lb3].next_hop.unwrap().0, r3);
    }

    #[test]
    fn poison_withdraws_routes() {
        let topo = shapes::line(3);
        let mut insts: Vec<EigrpInstance> = topo.router_ids().map(EigrpInstance::new).collect();
        converge(&topo, &mut insts);
        let lb3 = loopback(&topo, RouterId(2));
        assert!(insts[0].table().contains_key(&lb3));
        // R2 poisons the route toward R1 explicitly.
        let out = insts[0].recv(
            &topo,
            RouterId(1),
            EigrpMsg::Update {
                routes: vec![(lb3, UNREACHABLE)],
            },
        );
        assert!(!insts[0].table().contains_key(&lb3));
        assert!(out
            .deltas
            .iter()
            .any(|d| d.prefix == lb3 && d.route.is_none()));
        // With no alternatives, the prefix went active: queries go out.
        assert!(out
            .msgs
            .iter()
            .any(|(_, m)| matches!(m, EigrpMsg::Query { prefix } if *prefix == lb3)));
    }

    #[test]
    fn query_gets_reply_with_distance() {
        let topo = shapes::line(3);
        let mut insts: Vec<EigrpInstance> = topo.router_ids().map(EigrpInstance::new).collect();
        converge(&topo, &mut insts);
        let lb1 = loopback(&topo, RouterId(0));
        // R3 queries R2 for R1's loopback; R2 still has it at distance 10.
        let out = insts[1].recv(&topo, RouterId(2), EigrpMsg::Query { prefix: lb1 });
        let reply = out
            .msgs
            .iter()
            .find(|(to, m)| *to == RouterId(2) && matches!(m, EigrpMsg::Reply { .. }))
            .expect("a reply must be sent");
        match &reply.1 {
            EigrpMsg::Reply { prefix, rd } => {
                assert_eq!(*prefix, lb1);
                assert_eq!(*rd, 10);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn split_horizon_poisons_successor_direction() {
        let topo = shapes::line(3);
        let mut insts: Vec<EigrpInstance> = topo.router_ids().map(EigrpInstance::new).collect();
        converge(&topo, &mut insts);
        let ads = insts[1].full_update_msgs(&topo);
        let lb1 = loopback(&topo, RouterId(0));
        for (to, msg) in ads {
            let EigrpMsg::Update { routes } = msg else {
                panic!()
            };
            let d = routes.iter().find(|(p, _)| *p == lb1).unwrap().1;
            if to == RouterId(0) {
                assert_eq!(d, UNREACHABLE);
            } else {
                assert_eq!(d, 10);
            }
        }
    }

    #[test]
    fn unreachable_when_no_feasible_successor() {
        let topo = shapes::line(3);
        let mut insts: Vec<EigrpInstance> = topo.router_ids().map(EigrpInstance::new).collect();
        converge(&topo, &mut insts);
        let lb1 = loopback(&topo, RouterId(0));
        // R3's only path to R1's loopback is via R2; poison it.
        let _ = insts[2].recv(
            &topo,
            RouterId(1),
            EigrpMsg::Update {
                routes: vec![(lb1, UNREACHABLE)],
            },
        );
        assert!(!insts[2].table().contains_key(&lb1));
        // A fresh advertisement later is accepted (active state accepts
        // any candidate and resets FD).
        let _ = insts[2].recv(
            &topo,
            RouterId(1),
            EigrpMsg::Update {
                routes: vec![(lb1, 10)],
            },
        );
        assert_eq!(insts[2].table()[&lb1].metric, 20);
    }

    #[test]
    fn fd_blocks_infeasible_detour() {
        // The FC must reject a neighbor whose RD is not below our FD, even
        // if that neighbor offers the only remaining path (count-to-
        // infinity protection): the route goes active instead of looping.
        let topo = shapes::ring(3);
        let mut a = EigrpInstance::new(RouterId(0));
        let _ = a.start(&topo);
        let p: Ipv4Prefix = "99.0.0.0/8".parse().unwrap();
        let _ = a.recv(
            &topo,
            RouterId(1),
            EigrpMsg::Update {
                routes: vec![(p, 0)],
            },
        );
        assert_eq!(a.table()[&p].metric, 10); // FD = 10
                                              // R3 claims RD 50 ≥ FD → not feasible.
        let _ = a.recv(
            &topo,
            RouterId(2),
            EigrpMsg::Update {
                routes: vec![(p, 50)],
            },
        );
        assert_eq!(a.table()[&p].next_hop.unwrap().0, RouterId(1));
        let out = a.recv(
            &topo,
            RouterId(1),
            EigrpMsg::Update {
                routes: vec![(p, UNREACHABLE)],
            },
        );
        assert!(
            !a.table().contains_key(&p),
            "infeasible successor must not be used synchronously"
        );
        // It queried instead; a reply from R3 re-seats the route cleanly.
        assert!(out
            .msgs
            .iter()
            .any(|(_, m)| matches!(m, EigrpMsg::Query { prefix } if *prefix == p)));
        let _ = a.recv(&topo, RouterId(2), EigrpMsg::Reply { prefix: p, rd: 50 });
        assert_eq!(a.table()[&p].metric, 60);
        assert_eq!(a.table()[&p].next_hop.unwrap().0, RouterId(2));
    }

    #[test]
    fn better_path_adopted_even_after_fd_ratchet() {
        // Regression test: a strictly better total distance must always be
        // adopted (its RD is necessarily < current FD when link costs are
        // positive).
        let topo = shapes::ring(3);
        let mut a = EigrpInstance::new(RouterId(0));
        let _ = a.start(&topo);
        let p: Ipv4Prefix = "99.0.0.0/8".parse().unwrap();
        let _ = a.recv(
            &topo,
            RouterId(1),
            EigrpMsg::Update {
                routes: vec![(p, 40)],
            },
        );
        assert_eq!(a.table()[&p].metric, 50);
        let _ = a.recv(
            &topo,
            RouterId(2),
            EigrpMsg::Update {
                routes: vec![(p, 5)],
            },
        );
        assert_eq!(a.table()[&p].metric, 15);
        assert_eq!(a.table()[&p].next_hop.unwrap().0, RouterId(2));
    }

    #[test]
    fn all_pairs_on_grid_match_dijkstra() {
        let topo = shapes::grid(3, 3);
        let mut insts: Vec<EigrpInstance> = topo.router_ids().map(EigrpInstance::new).collect();
        converge(&topo, &mut insts);
        for src in topo.router_ids() {
            let truth = cpvr_topo::graph::dijkstra(&topo, src);
            for dst in topo.router_ids() {
                if src == dst {
                    continue;
                }
                let lb = loopback(&topo, dst);
                assert_eq!(
                    insts[src.index()].table().get(&lb).map(|r| r.metric),
                    truth.dist[dst.index()],
                    "{src}→{dst}"
                );
            }
        }
    }

    #[test]
    fn link_failure_reroutes_on_grid() {
        let mut topo = shapes::grid(2, 3);
        let mut insts: Vec<EigrpInstance> = topo.router_ids().map(EigrpInstance::new).collect();
        converge(&topo, &mut insts);
        let l = topo.link_between(RouterId(0), RouterId(1)).unwrap().id;
        topo.set_link_state(l, LinkState::Down);
        let mut queue = Vec::new();
        for r in [RouterId(0), RouterId(1)] {
            for (to, m) in insts[r.index()].link_change(&topo).msgs {
                queue.push((r, to, m));
            }
        }
        pump(&topo, &mut insts, queue);
        for src in topo.router_ids() {
            let truth = cpvr_topo::graph::dijkstra(&topo, src);
            for dst in topo.router_ids() {
                if src == dst {
                    continue;
                }
                let lb = loopback(&topo, dst);
                assert_eq!(
                    insts[src.index()].table().get(&lb).map(|r| r.metric),
                    truth.dist[dst.index()],
                    "post-failure {src}→{dst}"
                );
            }
        }
    }
}
