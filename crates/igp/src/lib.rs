//! Interior gateway protocols.
//!
//! Three IGPs, each a *pure state machine*: inputs are protocol messages
//! and local link-status changes, outputs are messages to neighbors plus
//! IGP RIB deltas. No clocks, no sockets — the simulator owns time and
//! transport, which keeps every protocol run deterministic and lets the
//! capture layer observe exactly the control-plane I/Os the paper's §4.1
//! enumerates.
//!
//! * [`ospf`] — a link-state protocol: LSA origination, flooding with
//!   sequence numbers, and SPF (Dijkstra) over the link-state database.
//! * [`rip`] — a distance-vector protocol with split horizon and poisoned
//!   reverse, infinity = 16.
//! * [`eigrp`] — a DUAL-flavored distance-vector protocol with the
//!   feasibility condition. Included because the paper's §4.1 points out
//!   the happens-before rules *differ* for EIGRP: it advertises a route
//!   only after installing it in the FIB, whereas BGP advertises after the
//!   RIB install.
//!
//! The common vocabulary ([`IgpRoute`], [`IgpDelta`], [`IgpOutputs`]) lives
//! here at the crate root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eigrp;
pub mod ospf;
pub mod rip;

use cpvr_topo::LinkId;
use cpvr_types::{Ipv4Prefix, RouterId};
use std::collections::BTreeMap;

/// A route selected by an IGP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IgpRoute {
    /// Total metric to the destination.
    pub metric: u32,
    /// First hop: the neighbor router and the link used to reach it.
    /// `None` means the destination is local (directly connected / self).
    pub next_hop: Option<(RouterId, LinkId)>,
}

/// One change to a router's IGP RIB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IgpDelta {
    /// The affected prefix.
    pub prefix: Ipv4Prefix,
    /// The new route, or `None` if the prefix became unreachable.
    pub route: Option<IgpRoute>,
}

/// What a protocol instance emits in response to one input.
#[derive(Clone, Debug, Default)]
pub struct IgpOutputs<M> {
    /// Messages to send: `(neighbor, message)`. The simulator delivers
    /// them over the connecting link with appropriate latency.
    pub msgs: Vec<(RouterId, M)>,
    /// IGP RIB changes produced by this input.
    pub deltas: Vec<IgpDelta>,
}

impl<M> IgpOutputs<M> {
    /// No messages, no deltas.
    pub fn empty() -> Self {
        IgpOutputs {
            msgs: Vec::new(),
            deltas: Vec::new(),
        }
    }
}

/// Computes the deltas between an old and a new route table.
///
/// Shared by all three protocols: each recomputes its table from protocol
/// state and then diffs, which keeps "what changed" logic in one place.
pub fn diff_tables(
    old: &BTreeMap<Ipv4Prefix, IgpRoute>,
    new: &BTreeMap<Ipv4Prefix, IgpRoute>,
) -> Vec<IgpDelta> {
    let mut out = Vec::new();
    for (p, r) in new {
        if old.get(p) != Some(r) {
            out.push(IgpDelta {
                prefix: *p,
                route: Some(*r),
            });
        }
    }
    for p in old.keys() {
        if !new.contains_key(p) {
            out.push(IgpDelta {
                prefix: *p,
                route: None,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn r(metric: u32) -> IgpRoute {
        IgpRoute {
            metric,
            next_hop: Some((RouterId(1), LinkId(0))),
        }
    }

    #[test]
    fn diff_detects_add_change_remove() {
        let mut old = BTreeMap::new();
        old.insert(p("10.0.0.0/8"), r(10));
        old.insert(p("11.0.0.0/8"), r(20));
        let mut new = BTreeMap::new();
        new.insert(p("10.0.0.0/8"), r(15)); // changed
        new.insert(p("12.0.0.0/8"), r(5)); // added
                                           // 11.0.0.0/8 removed
        let mut d = diff_tables(&old, &new);
        d.sort_by_key(|d| d.prefix);
        assert_eq!(d.len(), 3);
        assert_eq!(
            d[0],
            IgpDelta {
                prefix: p("10.0.0.0/8"),
                route: Some(r(15))
            }
        );
        assert_eq!(
            d[1],
            IgpDelta {
                prefix: p("11.0.0.0/8"),
                route: None
            }
        );
        assert_eq!(
            d[2],
            IgpDelta {
                prefix: p("12.0.0.0/8"),
                route: Some(r(5))
            }
        );
    }

    #[test]
    fn diff_of_equal_tables_is_empty() {
        let mut t = BTreeMap::new();
        t.insert(p("10.0.0.0/8"), r(10));
        assert!(diff_tables(&t, &t.clone()).is_empty());
    }
}
