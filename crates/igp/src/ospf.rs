//! OSPF-lite: a link-state IGP.
//!
//! Faithful to OSPF's architecture — LSA origination with sequence
//! numbers, reliable flooding, a link-state database, and SPF over the
//! database — while omitting ceremony that doesn't affect routing outcomes
//! in a point-to-point simulated network (hello adjacency forming, areas,
//! DR election). Adjacency comes directly from the hardware link-status
//! input, which is one of the paper's three control-plane input classes.
//!
//! Crucially, SPF runs over the *database*, not the real topology: a
//! router whose LSDB is stale computes stale routes, which is precisely
//! the transient-inconsistency behavior the paper's verifier must cope
//! with.

use crate::{diff_tables, IgpDelta, IgpOutputs, IgpRoute};
use cpvr_topo::{LinkId, Topology};
use cpvr_types::{Ipv4Prefix, RouterId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// A router link-state advertisement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lsa {
    /// Originating router.
    pub origin: RouterId,
    /// Sequence number; higher wins.
    pub seq: u64,
    /// Adjacent routers and the cost to reach them, from the originator's
    /// perspective.
    pub links: Vec<(RouterId, u32)>,
    /// Prefixes attached to the originator (loopback, connected subnets)
    /// with their stub cost.
    pub stubs: Vec<(Ipv4Prefix, u32)>,
}

/// OSPF protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OspfMsg {
    /// A flooded LSA.
    Flood(Lsa),
}

/// One router's OSPF instance.
#[derive(Clone, Debug)]
pub struct OspfInstance {
    me: RouterId,
    seq: u64,
    lsdb: BTreeMap<RouterId, Lsa>,
    table: BTreeMap<Ipv4Prefix, IgpRoute>,
}

impl OspfInstance {
    /// Creates an instance for router `me`. Call
    /// [`start`](OspfInstance::start) to originate the first LSA.
    pub fn new(me: RouterId) -> Self {
        OspfInstance {
            me,
            seq: 0,
            lsdb: BTreeMap::new(),
            table: BTreeMap::new(),
        }
    }

    /// The router this instance runs on.
    pub fn router(&self) -> RouterId {
        self.me
    }

    /// The current route table (prefix → selected route).
    pub fn table(&self) -> &BTreeMap<Ipv4Prefix, IgpRoute> {
        &self.table
    }

    /// The current link-state database, keyed by originator.
    pub fn lsdb(&self) -> &BTreeMap<RouterId, Lsa> {
        &self.lsdb
    }

    /// Metric of the best path to another router's loopback, if reachable.
    ///
    /// BGP uses this for its "lowest IGP metric to the next hop" decision
    /// step.
    pub fn metric_to(&self, topo: &Topology, other: RouterId) -> Option<u32> {
        let lb = Ipv4Prefix::host(topo.router(other).loopback);
        self.table.get(&lb).map(|r| r.metric)
    }

    /// First hop toward another router's loopback, if reachable and not
    /// local.
    pub fn next_hop_to(&self, topo: &Topology, other: RouterId) -> Option<(RouterId, LinkId)> {
        let lb = Ipv4Prefix::host(topo.router(other).loopback);
        self.table.get(&lb).and_then(|r| r.next_hop)
    }

    /// Builds this router's own LSA from its local view of the topology.
    fn originate(&mut self, topo: &Topology) -> Lsa {
        self.seq += 1;
        let mut links: Vec<(RouterId, u32)> = topo
            .up_neighbors(self.me)
            .into_iter()
            .map(|(nb, l)| (nb, topo.link(l).igp_cost))
            .collect();
        links.sort();
        links.dedup_by_key(|e| e.0); // parallel links: keep cheapest-by-id
        let me = topo.router(self.me);
        let mut stubs: Vec<(Ipv4Prefix, u32)> = vec![(Ipv4Prefix::host(me.loopback), 0)];
        for iface in &me.ifaces {
            stubs.push((iface.subnet, 0));
        }
        stubs.sort();
        stubs.dedup();
        Lsa {
            origin: self.me,
            seq: self.seq,
            links,
            stubs,
        }
    }

    /// Starts the instance: originates the initial LSA, floods it, and
    /// computes the initial table (which contains only local stubs until
    /// other LSAs arrive).
    pub fn start(&mut self, topo: &Topology) -> IgpOutputs<OspfMsg> {
        let lsa = self.originate(topo);
        self.lsdb.insert(self.me, lsa.clone());
        let mut out = self.recompute(topo);
        out.msgs = self.flood_targets(topo, None, lsa);
        out
    }

    /// Handles a local link-status change: re-originate and flood.
    pub fn link_change(&mut self, topo: &Topology) -> IgpOutputs<OspfMsg> {
        let lsa = self.originate(topo);
        self.lsdb.insert(self.me, lsa.clone());
        let mut out = self.recompute(topo);
        out.msgs = self.flood_targets(topo, None, lsa);
        out
    }

    /// Handles a flooded LSA from a neighbor.
    pub fn recv(&mut self, topo: &Topology, from: RouterId, msg: OspfMsg) -> IgpOutputs<OspfMsg> {
        let OspfMsg::Flood(lsa) = msg;
        let newer = match self.lsdb.get(&lsa.origin) {
            Some(have) => lsa.seq > have.seq,
            None => true,
        };
        if !newer {
            return IgpOutputs::empty();
        }
        // A higher-seq copy of our own LSA circulating means our state was
        // re-learned after a restart; re-originate above it (standard OSPF
        // self-LSA recovery).
        if lsa.origin == self.me {
            self.seq = lsa.seq;
            let fresh = self.originate(topo);
            self.lsdb.insert(self.me, fresh.clone());
            let mut out = self.recompute(topo);
            out.msgs = self.flood_targets(topo, None, fresh);
            return out;
        }
        self.lsdb.insert(lsa.origin, lsa.clone());
        let mut out = self.recompute(topo);
        out.msgs = self.flood_targets(topo, Some(from), lsa);
        out
    }

    /// All up neighbors except the one we received from.
    fn flood_targets(
        &self,
        topo: &Topology,
        except: Option<RouterId>,
        lsa: Lsa,
    ) -> Vec<(RouterId, OspfMsg)> {
        let mut nbs: Vec<RouterId> = topo
            .up_neighbors(self.me)
            .into_iter()
            .map(|(nb, _)| nb)
            .filter(|nb| Some(*nb) != except)
            .collect();
        nbs.sort();
        nbs.dedup();
        nbs.into_iter()
            .map(|nb| (nb, OspfMsg::Flood(lsa.clone())))
            .collect()
    }

    /// SPF over the LSDB and table rebuild; returns deltas.
    fn recompute(&mut self, topo: &Topology) -> IgpOutputs<OspfMsg> {
        let dist = self.spf();
        let mut new_table: BTreeMap<Ipv4Prefix, IgpRoute> = BTreeMap::new();
        // Map neighbor router → link used (lowest-id up link), for first
        // hops.
        let mut nb_link: BTreeMap<RouterId, LinkId> = BTreeMap::new();
        for (nb, l) in topo.up_neighbors(self.me) {
            nb_link.entry(nb).or_insert(l);
        }
        for (node, (d, first)) in &dist {
            let Some(lsa) = self.lsdb.get(node) else {
                continue;
            };
            let next_hop = match first {
                None => None,
                // If the first-hop link vanished between origination and
                // this recompute, the destination is unreachable until we
                // re-originate; skip rather than claim a local route.
                Some(f) => match nb_link.get(f) {
                    Some(l) => Some((*f, *l)),
                    None => continue,
                },
            };
            for (prefix, stub_cost) in &lsa.stubs {
                let metric = d + stub_cost;
                let cand = IgpRoute { metric, next_hop };
                match new_table.get(prefix) {
                    Some(best) if best.metric <= metric => {}
                    _ => {
                        new_table.insert(*prefix, cand);
                    }
                }
            }
        }
        let deltas: Vec<IgpDelta> = diff_tables(&self.table, &new_table);
        self.table = new_table;
        IgpOutputs {
            msgs: Vec::new(),
            deltas,
        }
    }

    /// Dijkstra over the LSDB with a bidirectionality check (an edge
    /// counts only if both endpoints advertise it), returning
    /// `node → (distance, first-hop neighbor)`.
    fn spf(&self) -> BTreeMap<RouterId, (u32, Option<RouterId>)> {
        let mut out: BTreeMap<RouterId, (u32, Option<RouterId>)> = BTreeMap::new();
        if !self.lsdb.contains_key(&self.me) {
            return out;
        }
        let mut heap: BinaryHeap<Reverse<(u32, u32, u32)>> = BinaryHeap::new();
        out.insert(self.me, (0, None));
        heap.push(Reverse((0, self.me.0, u32::MAX)));
        while let Some(Reverse((d, node, fh))) = heap.pop() {
            let node_id = RouterId(node);
            match out.get(&node_id) {
                Some((best, _)) if *best < d => continue,
                _ => {}
            }
            let Some(lsa) = self.lsdb.get(&node_id) else {
                continue;
            };
            for (nb, cost) in &lsa.links {
                // Bidirectional check: nb's LSA must list node back.
                let back = self
                    .lsdb
                    .get(nb)
                    .map(|l| l.links.iter().any(|(r, _)| *r == node_id))
                    .unwrap_or(false);
                if !back {
                    continue;
                }
                let nd = d + cost;
                let first = if node_id == self.me { nb.0 } else { fh };
                let better = match out.get(nb) {
                    None => true,
                    Some((old, _)) => nd < *old,
                };
                if better {
                    out.insert(
                        *nb,
                        (
                            nd,
                            if first == u32::MAX {
                                None
                            } else {
                                Some(RouterId(first))
                            },
                        ),
                    );
                    heap.push(Reverse((nd, nb.0, first)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_topo::builder::shapes;
    use cpvr_topo::LinkState;

    /// Synchronously pumps messages until quiescence, round-robin. Returns
    /// total message count. Panics after a bound to catch non-termination.
    fn converge(topo: &Topology, insts: &mut [OspfInstance]) -> usize {
        let mut queue: Vec<(RouterId, RouterId, OspfMsg)> = Vec::new();
        for i in insts.iter_mut() {
            let me = i.router();
            let out = i.start(topo);
            for (to, m) in out.msgs {
                queue.push((me, to, m));
            }
        }
        pump(topo, insts, queue)
    }

    fn pump(
        topo: &Topology,
        insts: &mut [OspfInstance],
        mut queue: Vec<(RouterId, RouterId, OspfMsg)>,
    ) -> usize {
        let mut count = 0;
        while let Some((from, to, msg)) = queue.pop() {
            count += 1;
            assert!(count < 100_000, "OSPF flooding did not quiesce");
            let out = insts[to.index()].recv(topo, from, msg);
            for (nxt, m) in out.msgs {
                queue.push((to, nxt, m));
            }
        }
        count
    }

    #[test]
    fn line_converges_to_shortest_paths() {
        let topo = shapes::line(4);
        let mut insts: Vec<OspfInstance> = topo.router_ids().map(OspfInstance::new).collect();
        converge(&topo, &mut insts);
        // R1's metric to R4's loopback is 30 (3 hops * 10).
        assert_eq!(insts[0].metric_to(&topo, RouterId(3)), Some(30));
        assert_eq!(
            insts[0].next_hop_to(&topo, RouterId(3)).unwrap().0,
            RouterId(1)
        );
        // And symmetric.
        assert_eq!(insts[3].metric_to(&topo, RouterId(0)), Some(30));
    }

    #[test]
    fn all_pairs_reachable_on_ring() {
        let topo = shapes::ring(6);
        let mut insts: Vec<OspfInstance> = topo.router_ids().map(OspfInstance::new).collect();
        converge(&topo, &mut insts);
        for a in topo.router_ids() {
            for b in topo.router_ids() {
                if a != b {
                    assert!(
                        insts[a.index()].metric_to(&topo, b).is_some(),
                        "{a} cannot reach {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn spf_matches_topology_dijkstra() {
        let topo = shapes::grid(3, 3);
        let mut insts: Vec<OspfInstance> = topo.router_ids().map(OspfInstance::new).collect();
        converge(&topo, &mut insts);
        for src in topo.router_ids() {
            let truth = cpvr_topo::graph::dijkstra(&topo, src);
            for dst in topo.router_ids() {
                if src == dst {
                    continue;
                }
                assert_eq!(
                    insts[src.index()].metric_to(&topo, dst),
                    truth.dist[dst.index()],
                    "metric {src}→{dst}"
                );
            }
        }
    }

    #[test]
    fn link_failure_reroutes() {
        let mut topo = shapes::ring(4);
        let mut insts: Vec<OspfInstance> = topo.router_ids().map(OspfInstance::new).collect();
        converge(&topo, &mut insts);
        assert_eq!(insts[0].metric_to(&topo, RouterId(1)), Some(10));
        // Fail R1—R2; both endpoints notice and re-originate.
        let l = topo.link_between(RouterId(0), RouterId(1)).unwrap().id;
        topo.set_link_state(l, LinkState::Down);
        let mut queue = Vec::new();
        for r in [RouterId(0), RouterId(1)] {
            let out = insts[r.index()].link_change(&topo);
            for (to, m) in out.msgs {
                queue.push((r, to, m));
            }
        }
        pump(&topo, &mut insts, queue);
        // Now the path R1→R2 goes around: 0→3→2→1 = 30.
        assert_eq!(insts[0].metric_to(&topo, RouterId(1)), Some(30));
        assert_eq!(
            insts[0].next_hop_to(&topo, RouterId(1)).unwrap().0,
            RouterId(3)
        );
    }

    #[test]
    fn stale_lsdb_gives_stale_routes() {
        // Fail a link but only tell one endpoint: the other routers keep
        // their old (now wrong) routes — the transient the paper's
        // verifier must reason about.
        let mut topo = shapes::line(3);
        let mut insts: Vec<OspfInstance> = topo.router_ids().map(OspfInstance::new).collect();
        converge(&topo, &mut insts);
        let l = topo.link_between(RouterId(1), RouterId(2)).unwrap().id;
        topo.set_link_state(l, LinkState::Down);
        // Only R3 (index 2) reacts; its flood reaches nobody (its only
        // link is down). R1 still believes R3 is reachable.
        let out = insts[2].link_change(&topo);
        assert!(out.msgs.is_empty(), "R3 has no up neighbors to flood to");
        assert!(insts[0].metric_to(&topo, RouterId(2)).is_some());
        // R3 itself knows it lost everything beyond the failed link.
        assert_eq!(insts[2].metric_to(&topo, RouterId(0)), None);
    }

    #[test]
    fn duplicate_lsa_is_not_reflooded() {
        let topo = shapes::line(2);
        let mut insts: Vec<OspfInstance> = topo.router_ids().map(OspfInstance::new).collect();
        let out0 = insts[0].start(&topo);
        let (to, msg) = out0.msgs[0].clone();
        assert_eq!(to, RouterId(1));
        let first = insts[1].recv(&topo, RouterId(0), msg.clone());
        // First copy floods onward (to nobody else here, but deltas apply);
        // second identical copy must be ignored entirely.
        let second = insts[1].recv(&topo, RouterId(0), msg);
        assert!(second.msgs.is_empty());
        assert!(second.deltas.is_empty());
        let _ = first;
    }

    #[test]
    fn table_contains_connected_subnets() {
        let topo = shapes::line(2);
        let mut insts: Vec<OspfInstance> = topo.router_ids().map(OspfInstance::new).collect();
        converge(&topo, &mut insts);
        let link_subnet = topo.links()[0].subnet;
        assert!(insts[0].table().contains_key(&link_subnet));
        // Loopback of the far router is present with its metric.
        let lb = Ipv4Prefix::host(topo.router(RouterId(1)).loopback);
        assert_eq!(insts[0].table()[&lb].metric, 10);
    }

    #[test]
    fn deltas_fire_once_per_change() {
        let topo = shapes::line(2);
        let mut a = OspfInstance::new(RouterId(0));
        let mut b = OspfInstance::new(RouterId(1));
        let oa = a.start(&topo);
        assert!(!oa.deltas.is_empty(), "local stubs appear at start");
        let ob = b.start(&topo);
        let out = a.recv(&topo, RouterId(1), ob.msgs[0].1.clone());
        assert!(!out.deltas.is_empty(), "learning B's LSA changes A's table");
        // Receiving it again: no deltas.
        let out2 = a.recv(&topo, RouterId(1), ob.msgs[0].1.clone());
        assert!(out2.deltas.is_empty());
    }
}
