//! RIP: a distance-vector IGP.
//!
//! Implements the parts of RIP that determine routing outcomes: full-table
//! advertisements to neighbors, hop-count-style metrics with
//! infinity = 16, split horizon with poisoned reverse, and triggered
//! updates carrying explicit metric-16 poisons when routes die. Periodic
//! refresh and garbage-collection timers are owned by the simulator (which
//! schedules [`RipInstance::tick`]), keeping this state machine clock-free
//! and deterministic.

use crate::{diff_tables, IgpOutputs, IgpRoute};
use cpvr_topo::{LinkId, Topology};
use cpvr_types::{Ipv4Prefix, RouterId};
use std::collections::BTreeMap;

/// RIP's infinity: destinations at this metric are unreachable.
pub const INFINITY: u32 = 16;

/// A RIP route advertisement: `(prefix, metric)` pairs. Metric 16 is a
/// poison (withdrawal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RipMsg {
    /// Advertised vectors.
    pub routes: Vec<(Ipv4Prefix, u32)>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RipEntry {
    /// `INFINITY` marks a tombstone: the route is dead but must still be
    /// advertised once (poisoned) so downstream routers withdraw it.
    metric: u32,
    /// Learning source; `None` for locally connected prefixes.
    via: Option<(RouterId, LinkId)>,
}

/// One router's RIP instance.
#[derive(Clone, Debug)]
pub struct RipInstance {
    me: RouterId,
    entries: BTreeMap<Ipv4Prefix, RipEntry>,
    table: BTreeMap<Ipv4Prefix, IgpRoute>,
}

impl RipInstance {
    /// Creates an instance for router `me`.
    pub fn new(me: RouterId) -> Self {
        RipInstance {
            me,
            entries: BTreeMap::new(),
            table: BTreeMap::new(),
        }
    }

    /// The router this instance runs on.
    pub fn router(&self) -> RouterId {
        self.me
    }

    /// The current route table.
    pub fn table(&self) -> &BTreeMap<Ipv4Prefix, IgpRoute> {
        &self.table
    }

    /// Starts the instance: installs connected prefixes and announces them.
    pub fn start(&mut self, topo: &Topology) -> IgpOutputs<RipMsg> {
        let me = topo.router(self.me);
        self.entries.insert(
            Ipv4Prefix::host(me.loopback),
            RipEntry {
                metric: 0,
                via: None,
            },
        );
        for iface in &me.ifaces {
            self.entries.insert(
                iface.subnet,
                RipEntry {
                    metric: 0,
                    via: None,
                },
            );
        }
        let mut out = self.rebuild();
        out.msgs = self.advertisements(topo);
        out
    }

    /// Handles a local link-status change: poison routes learned over dead
    /// links and send triggered updates.
    pub fn link_change(&mut self, topo: &Topology) -> IgpOutputs<RipMsg> {
        let live: Vec<LinkId> = topo
            .up_neighbors(self.me)
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        for e in self.entries.values_mut() {
            if let Some((_, l)) = e.via {
                if !live.contains(&l) {
                    e.metric = INFINITY;
                }
            }
        }
        let mut out = self.rebuild();
        out.msgs = self.advertisements(topo);
        self.purge_tombstones();
        out
    }

    /// Handles an advertisement from a neighbor.
    pub fn recv(&mut self, topo: &Topology, from: RouterId, msg: RipMsg) -> IgpOutputs<RipMsg> {
        // Identify the link to the sender (lowest-id up link).
        let Some((_, link)) = topo
            .up_neighbors(self.me)
            .into_iter()
            .find(|(nb, _)| *nb == from)
        else {
            // Sender is no longer a live neighbor; stale message.
            return IgpOutputs::empty();
        };
        let mut changed = false;
        for (prefix, adv_metric) in &msg.routes {
            let metric = (adv_metric + 1).min(INFINITY);
            let via = Some((from, link));
            match self.entries.get(prefix) {
                // Update from the current successor: always accept (it may
                // be a poison / worsening).
                Some(e) if e.via == via && e.metric < INFINITY && e.metric != metric => {
                    self.entries.insert(*prefix, RipEntry { metric, via });
                    changed = true;
                }
                Some(e) if e.via == via && e.metric < INFINITY => {}
                // Better than what we have (tombstones count as INFINITY):
                // switch.
                Some(e) if metric < e.metric => {
                    self.entries.insert(*prefix, RipEntry { metric, via });
                    changed = true;
                }
                Some(_) => {}
                None if metric < INFINITY => {
                    self.entries.insert(*prefix, RipEntry { metric, via });
                    changed = true;
                }
                None => {}
            }
        }
        let mut out = self.rebuild();
        if changed {
            out.msgs = self.advertisements(topo); // triggered update
        }
        self.purge_tombstones();
        out
    }

    /// Periodic refresh: re-advertise the full table (the simulator calls
    /// this on RIP's update timer).
    pub fn tick(&mut self, topo: &Topology) -> IgpOutputs<RipMsg> {
        IgpOutputs {
            msgs: self.advertisements(topo),
            deltas: Vec::new(),
        }
    }

    /// Builds per-neighbor advertisements with split horizon + poisoned
    /// reverse: routes learned from a neighbor are advertised back to it
    /// with metric 16. Tombstoned routes are advertised at 16 to everyone.
    fn advertisements(&self, topo: &Topology) -> Vec<(RouterId, RipMsg)> {
        let mut nbs: Vec<RouterId> = topo
            .up_neighbors(self.me)
            .into_iter()
            .map(|(nb, _)| nb)
            .collect();
        nbs.sort();
        nbs.dedup();
        nbs.into_iter()
            .map(|nb| {
                let routes = self
                    .entries
                    .iter()
                    .map(|(p, e)| {
                        let poisoned = matches!(e.via, Some((v, _)) if v == nb);
                        (*p, if poisoned { INFINITY } else { e.metric })
                    })
                    .collect();
                (nb, RipMsg { routes })
            })
            .collect()
    }

    /// Drops tombstones once they have been advertised.
    fn purge_tombstones(&mut self) {
        self.entries.retain(|_, e| e.metric < INFINITY);
    }

    /// Rebuilds the public table from live entries and diffs.
    fn rebuild(&mut self) -> IgpOutputs<RipMsg> {
        let new_table: BTreeMap<Ipv4Prefix, IgpRoute> = self
            .entries
            .iter()
            .filter(|(_, e)| e.metric < INFINITY)
            .map(|(p, e)| {
                (
                    *p,
                    IgpRoute {
                        metric: e.metric,
                        next_hop: e.via,
                    },
                )
            })
            .collect();
        let deltas = diff_tables(&self.table, &new_table);
        self.table = new_table;
        IgpOutputs {
            msgs: Vec::new(),
            deltas,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_topo::builder::shapes;
    use cpvr_topo::{LinkState, Topology};

    fn converge(topo: &Topology, insts: &mut [RipInstance]) {
        let mut queue: Vec<(RouterId, RouterId, RipMsg)> = Vec::new();
        for i in insts.iter_mut() {
            let me = i.router();
            for (to, m) in i.start(topo).msgs {
                queue.push((me, to, m));
            }
        }
        pump(topo, insts, queue);
    }

    fn pump(
        topo: &Topology,
        insts: &mut [RipInstance],
        mut queue: Vec<(RouterId, RouterId, RipMsg)>,
    ) {
        let mut n = 0;
        while let Some((from, to, msg)) = queue.pop() {
            n += 1;
            assert!(n < 200_000, "RIP did not quiesce");
            for (nxt, m) in insts[to.index()].recv(topo, from, msg).msgs {
                queue.push((to, nxt, m));
            }
        }
    }

    fn loopback(topo: &Topology, r: RouterId) -> Ipv4Prefix {
        Ipv4Prefix::host(topo.router(r).loopback)
    }

    #[test]
    fn line_converges_with_hop_counts() {
        let topo = shapes::line(4);
        let mut insts: Vec<RipInstance> = topo.router_ids().map(RipInstance::new).collect();
        converge(&topo, &mut insts);
        let lb3 = loopback(&topo, RouterId(3));
        let r = insts[0].table()[&lb3];
        assert_eq!(r.metric, 3);
        assert_eq!(r.next_hop.unwrap().0, RouterId(1));
    }

    #[test]
    fn split_horizon_poisons_reverse() {
        let topo = shapes::line(2);
        let mut insts: Vec<RipInstance> = topo.router_ids().map(RipInstance::new).collect();
        converge(&topo, &mut insts);
        // R2's advert back to R1 must poison R1's own loopback route.
        let ads = insts[1].advertisements(&topo);
        let (to, msg) = &ads[0];
        assert_eq!(*to, RouterId(0));
        let lb1 = loopback(&topo, RouterId(0));
        let m = msg.routes.iter().find(|(p, _)| *p == lb1).unwrap().1;
        assert_eq!(m, INFINITY);
    }

    #[test]
    fn link_failure_withdraws_via_poison() {
        let mut topo = shapes::line(3);
        let mut insts: Vec<RipInstance> = topo.router_ids().map(RipInstance::new).collect();
        converge(&topo, &mut insts);
        let lb3 = loopback(&topo, RouterId(2));
        assert!(insts[0].table().contains_key(&lb3));
        // Fail R2—R3; notify both ends, pump triggered updates.
        let l = topo.link_between(RouterId(1), RouterId(2)).unwrap().id;
        topo.set_link_state(l, LinkState::Down);
        let mut queue = Vec::new();
        for r in [RouterId(1), RouterId(2)] {
            for (to, m) in insts[r.index()].link_change(&topo).msgs {
                queue.push((r, to, m));
            }
        }
        pump(&topo, &mut insts, queue);
        assert!(
            !insts[0].table().contains_key(&lb3),
            "R1 must lose the route to R3's loopback"
        );
    }

    #[test]
    fn infinity_caps_metric() {
        // A route advertised at metric 15 becomes 16 on receipt → dropped.
        let topo = shapes::line(2);
        let mut a = RipInstance::new(RouterId(0));
        let _ = a.start(&topo);
        let msg = RipMsg {
            routes: vec![("99.0.0.0/8".parse().unwrap(), 15)],
        };
        let out = a.recv(&topo, RouterId(1), msg);
        assert!(out.deltas.is_empty());
        assert!(!a.table().contains_key(&"99.0.0.0/8".parse().unwrap()));
    }

    #[test]
    fn better_metric_wins_worse_is_ignored() {
        let topo = shapes::ring(3);
        let mut a = RipInstance::new(RouterId(0));
        let _ = a.start(&topo);
        let p: Ipv4Prefix = "99.0.0.0/8".parse().unwrap();
        let _ = a.recv(
            &topo,
            RouterId(1),
            RipMsg {
                routes: vec![(p, 5)],
            },
        );
        assert_eq!(a.table()[&p].metric, 6);
        // Worse offer from another neighbor: ignored.
        let _ = a.recv(
            &topo,
            RouterId(2),
            RipMsg {
                routes: vec![(p, 9)],
            },
        );
        assert_eq!(a.table()[&p].metric, 6);
        assert_eq!(a.table()[&p].next_hop.unwrap().0, RouterId(1));
        // Better offer: switch.
        let _ = a.recv(
            &topo,
            RouterId(2),
            RipMsg {
                routes: vec![(p, 2)],
            },
        );
        assert_eq!(a.table()[&p].metric, 3);
        assert_eq!(a.table()[&p].next_hop.unwrap().0, RouterId(2));
    }

    #[test]
    fn successor_worsening_is_accepted() {
        let topo = shapes::line(2);
        let mut a = RipInstance::new(RouterId(0));
        let _ = a.start(&topo);
        let p: Ipv4Prefix = "99.0.0.0/8".parse().unwrap();
        let _ = a.recv(
            &topo,
            RouterId(1),
            RipMsg {
                routes: vec![(p, 2)],
            },
        );
        assert_eq!(a.table()[&p].metric, 3);
        let _ = a.recv(
            &topo,
            RouterId(1),
            RipMsg {
                routes: vec![(p, 7)],
            },
        );
        assert_eq!(
            a.table()[&p].metric,
            8,
            "current successor may worsen the route"
        );
    }

    #[test]
    fn poison_from_successor_withdraws_and_propagates() {
        let topo = shapes::line(2);
        let mut a = RipInstance::new(RouterId(0));
        let _ = a.start(&topo);
        let p: Ipv4Prefix = "99.0.0.0/8".parse().unwrap();
        let _ = a.recv(
            &topo,
            RouterId(1),
            RipMsg {
                routes: vec![(p, 2)],
            },
        );
        assert!(a.table().contains_key(&p));
        let out = a.recv(
            &topo,
            RouterId(1),
            RipMsg {
                routes: vec![(p, INFINITY)],
            },
        );
        assert!(!a.table().contains_key(&p));
        // The triggered update must carry the poison onward.
        let poisons: Vec<u32> = out
            .msgs
            .iter()
            .flat_map(|(_, m)| m.routes.iter())
            .filter(|(pp, _)| *pp == p)
            .map(|(_, m)| *m)
            .collect();
        assert!(!poisons.is_empty());
        assert!(poisons.iter().all(|m| *m == INFINITY));
        // Tombstone is gone afterwards: next advert omits the prefix.
        let ads = a.advertisements(&topo);
        assert!(ads
            .iter()
            .all(|(_, m)| m.routes.iter().all(|(pp, _)| *pp != p)));
    }

    #[test]
    fn tick_readvertises_without_deltas() {
        let topo = shapes::line(2);
        let mut a = RipInstance::new(RouterId(0));
        let _ = a.start(&topo);
        let out = a.tick(&topo);
        assert!(!out.msgs.is_empty());
        assert!(out.deltas.is_empty());
    }

    #[test]
    fn message_from_dead_neighbor_ignored() {
        let mut topo = shapes::line(2);
        let mut a = RipInstance::new(RouterId(0));
        let _ = a.start(&topo);
        let l = topo.link_between(RouterId(0), RouterId(1)).unwrap().id;
        topo.set_link_state(l, LinkState::Down);
        let out = a.recv(
            &topo,
            RouterId(1),
            RipMsg {
                routes: vec![("99.0.0.0/8".parse().unwrap(), 1)],
            },
        );
        assert!(out.msgs.is_empty());
        assert!(out.deltas.is_empty());
    }
}
