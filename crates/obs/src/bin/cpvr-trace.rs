//! `cpvr-trace` — stitch flight-recorder dumps into a causal timeline.
//!
//! Reads one or more `flight-<reason>-<n>.json` dumps (written by a
//! collector's flight recorder on an anomaly trigger, or fetched on
//! demand over `DumpReq`), merges their records by trace id, and emits
//! either a human-readable causal timeline per trace or Chrome
//! `trace_event` JSON openable in Perfetto / `chrome://tracing`.
//!
//! ```text
//! cpvr-trace [--chrome] [-o OUT] DUMP.json [DUMP.json ...]
//! ```
//!
//! Dumps from different federation members have incomparable clocks;
//! the stitcher orders hops by their parent stage code (the causal hop
//! counter carried in every [`TraceCtx`](cpvr_types::TraceCtx)), which
//! is comparable everywhere.

use cpvr_obs::{chrome_trace, stitch, FlightDump};
use cpvr_types::json::from_str;
use std::io::Write;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cpvr-trace [--chrome] [-o OUT] DUMP.json [DUMP.json ...]");
    eprintln!();
    eprintln!("  --chrome   emit Chrome trace_event JSON (Perfetto-openable)");
    eprintln!("             instead of the default text timeline");
    eprintln!("  -o OUT     write to OUT instead of stdout");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut chrome = false;
    let mut out: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chrome" => chrome = true,
            "-o" | "--out" => match args.next() {
                Some(p) => out = Some(p),
                None => return usage(),
            },
            "-h" | "--help" => {
                return usage();
            }
            _ if a.starts_with('-') => return usage(),
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        return usage();
    }

    let mut dumps: Vec<FlightDump> = Vec::new();
    for p in &paths {
        let body = match std::fs::read_to_string(p) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cpvr-trace: {p}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match from_str::<FlightDump>(&body) {
            Ok(d) => dumps.push(d),
            Err(e) => {
                eprintln!("cpvr-trace: {p}: not a flight dump: {e:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let rendered = if chrome {
        chrome_trace(&dumps)
    } else {
        render_text(&dumps)
    };

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered) {
                eprintln!("cpvr-trace: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            if stdout.write_all(rendered.as_bytes()).is_err() {
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The default human-readable rendering: one block per stitched trace,
/// hops in causal order, one line per hop.
fn render_text(dumps: &[FlightDump]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let timelines = stitch(dumps);
    let _ = writeln!(
        out,
        "{} dump(s), {} stitched trace(s)",
        dumps.len(),
        timelines.len()
    );
    for tl in &timelines {
        let members: std::collections::BTreeSet<i64> = tl.records.iter().map(|(m, _)| *m).collect();
        let _ = writeln!(
            out,
            "\ntrace {:016x}  ({} hops across {} member(s))",
            tl.trace_id,
            tl.records.len(),
            members.len()
        );
        for (member, r) in &tl.records {
            let parent = r.trace.map_or(0, |c| c.parent);
            let _ = writeln!(
                out,
                "  member {:>2}  {:<22} parent={:<22} ring={} t={}ns a={} b={}",
                member,
                cpvr_obs::trace::stage::name(r.stage),
                cpvr_obs::trace::stage::name(parent),
                r.ring,
                r.t_nanos,
                r.a,
                r.b
            );
        }
    }
    out
}
