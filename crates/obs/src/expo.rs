//! Exposition: rendering a [`Snapshot`] as Prometheus text or compact
//! JSON, and parsing the JSON form back.
//!
//! The text format follows the Prometheus 0.0.4 conventions: `# HELP` /
//! `# TYPE` headers per family, label sets in `{k="v"}` form, and
//! histograms expanded into cumulative `_bucket{le="..."}` series plus
//! `_sum` / `_count`. Bucket bounds are this crate's power-of-two edges.
//! Families render in name order, so output is deterministic — which is
//! what makes the golden-file test possible.

use std::fmt::Write as _;

use crate::registry::{MetricKind, Snapshot};
use cpvr_types::json::JsonError;

/// Escapes a label value per the Prometheus text format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(&v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn header(out: &mut String, emitted: &mut Vec<String>, s: &Snapshot, name: &str, kind: MetricKind) {
    if emitted.iter().any(|n| n == name) {
        return;
    }
    emitted.push(name.to_string());
    if let Some((_, help)) = s.help.iter().find(|(n, _)| n == name) {
        let _ = writeln!(out, "# HELP {name} {help}");
    }
    let _ = writeln!(out, "# TYPE {name} {}", kind.as_str());
}

/// Renders the snapshot in the Prometheus text exposition format.
pub fn render_prometheus(s: &Snapshot) -> String {
    let mut out = String::new();
    let mut emitted: Vec<String> = Vec::new();
    for c in &s.counters {
        header(&mut out, &mut emitted, s, &c.name, MetricKind::Counter);
        let _ = writeln!(
            out,
            "{}{} {}",
            c.name,
            label_block(&c.labels, None),
            c.value
        );
    }
    for g in &s.gauges {
        header(&mut out, &mut emitted, s, &g.name, MetricKind::Gauge);
        let _ = writeln!(
            out,
            "{}{} {}",
            g.name,
            label_block(&g.labels, None),
            g.value
        );
    }
    for h in &s.histograms {
        header(&mut out, &mut emitted, s, &h.name, MetricKind::Histogram);
        let mut cum = 0u64;
        for &(upper, count) in &h.buckets {
            cum += count;
            let _ = writeln!(
                out,
                "{}_bucket{} {cum}",
                h.name,
                label_block(&h.labels, Some(("le", upper.to_string())))
            );
        }
        let _ = writeln!(
            out,
            "{}_bucket{} {cum}",
            h.name,
            label_block(&h.labels, Some(("le", "+Inf".to_string())))
        );
        let _ = writeln!(
            out,
            "{}_sum{} {}",
            h.name,
            label_block(&h.labels, None),
            h.sum
        );
        let _ = writeln!(
            out,
            "{}_count{} {}",
            h.name,
            label_block(&h.labels, None),
            h.count
        );
    }
    out
}

/// Renders the snapshot as one compact-JSON document (the `MetricsResp`
/// payload for [`crate::ExpoFormat::Json`]).
pub fn render_json(s: &Snapshot) -> String {
    s.to_json_string()
}

/// Parses a snapshot back out of [`render_json`] output.
pub fn parse_json(s: &str) -> Result<Snapshot, JsonError> {
    Snapshot::from_json_str(s)
}

/// The wire encoding a `MetricsReq` asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpoFormat {
    /// Compact JSON (machine-readable, round-trips through
    /// [`parse_json`]).
    Json,
    /// Prometheus text format (scrape-friendly).
    Prometheus,
}

impl ExpoFormat {
    /// The single-byte wire tag.
    pub fn as_byte(self) -> u8 {
        match self {
            ExpoFormat::Json => 0,
            ExpoFormat::Prometheus => 1,
        }
    }

    /// Decodes the wire tag.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ExpoFormat::Json),
            1 => Some(ExpoFormat::Prometheus),
            _ => None,
        }
    }

    /// Renders `s` in this format.
    pub fn render(self, s: &Snapshot) -> String {
        match self {
            ExpoFormat::Json => render_json(s),
            ExpoFormat::Prometheus => render_prometheus(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricKind, MetricsRegistry};

    #[test]
    fn prometheus_escapes_labels() {
        let r = MetricsRegistry::new();
        r.declare("c", MetricKind::Counter, "test");
        r.counter_with("c", &[("path", "a\"b\\c\nd")]).inc();
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains(r#"c{path="a\"b\\c\nd"} 1"#), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = MetricsRegistry::new();
        r.declare("lat", MetricKind::Histogram, "test");
        let h = r.histogram("lat");
        h.observe(1);
        h.observe(3);
        h.observe(3);
        let text = render_prometheus(&r.snapshot());
        assert!(text.contains("lat_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"3\"} 3"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_sum 7"), "{text}");
        assert!(text.contains("lat_count 3"), "{text}");
    }
}
