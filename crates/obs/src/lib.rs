//! # cpvr-obs — std-only telemetry for the CPVR pipeline
//!
//! The pipeline this workspace grows — socket ingest → WAL → watermark
//! fold → `HbgBuilder` → `ConsistencyTracker` → `IncrementalVerifier` —
//! is all about causal visibility *of the network*; this crate gives the
//! pipeline the same visibility of *itself*, without taking on `tracing`
//! or `prometheus` (the workspace builds hermetically from vendored
//! code only).
//!
//! Four pieces:
//!
//! - [`MetricsRegistry`]: named counters (sharded across per-thread
//!   cells, folded on scrape), gauges, and log-bucketed histograms with
//!   p50/p90/p99/max. Writes are relaxed atomics — cheap enough for the
//!   ingest hot path.
//! - [`SpanRecorder`]: sampled *event-flight* spans keyed by
//!   `(source, seq)`, stamped received → journaled → acked → folded →
//!   snapshot-consistent → verified. Transition latencies land in
//!   registry histograms.
//! - [`trace`]: the black-box flight recorder — per-thread lock-free
//!   ring buffers of causal records, anomaly-triggered `flight-*.json`
//!   dumps, and stitching of dumps from federation members into Chrome
//!   `trace_event` timelines keyed by `TraceCtx` trace ids.
//! - [`expo`]: Prometheus text and compact-JSON exposition of a
//!   [`Snapshot`], served live over the collector's `MetricsReq` /
//!   `MetricsResp` frames and embedded in `CollectorReport` at
//!   shutdown.
//!
//! With the `obs-strict` cargo feature, using an undeclared metric or
//! declaring a family twice panics; CI runs the collector loopback test
//! in that mode so instrumentation and declarations cannot drift apart.

pub mod expo;
pub mod registry;
pub mod span;
pub mod trace;

pub use expo::{parse_json, render_json, render_prometheus, ExpoFormat};
pub use registry::{
    Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample, MetricKind,
    MetricsRegistry, Snapshot,
};
pub use span::{SpanRecorder, Stage};
pub use trace::{chrome_trace, stitch, FlightDump, FlightRecord, FlightRecorder, RingHandle};
