//! The metric store: counters, gauges, log-bucketed histograms, and the
//! registry that names them.
//!
//! Everything here is built for the ingest hot path: handles are cheap
//! `Arc` clones resolved once at wiring time, writes are relaxed
//! atomics, and counters spread across per-thread shards that are only
//! folded together when a scrape asks for the value. Histograms bucket
//! by bit width (powers of two), which turns `observe` into one
//! `leading_zeros` plus three relaxed RMWs and still yields usable
//! p50/p90/p99 under the multiplicative error a log scale implies.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, RwLock};

use cpvr_types::impl_json_struct;
use cpvr_types::json::{self, JsonError};

/// Number of per-thread shards a counter fans writes across.
///
/// Threads map onto shards by a registration-order id, so up to this
/// many concurrent writers never contend on the same cache line.
pub const COUNTER_SHARDS: usize = 16;

/// A cache-line-sized cell so neighbouring shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Padded(AtomicU64);

fn shard_index() -> usize {
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT_THREAD.fetch_add(1, Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// The kind of a metric family; declaring a name twice with different
/// kinds is always a programming error and panics even without
/// `obs-strict`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing sum (sharded).
    Counter,
    /// Instantaneous signed value.
    Gauge,
    /// Log-bucketed value distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

struct CounterCore {
    shards: [Padded; COUNTER_SHARDS],
}

/// A handle to a sharded monotonic counter. Cloning is cheap; clones
/// share the same cells.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    fn new() -> Self {
        Counter {
            core: Arc::new(CounterCore {
                shards: std::array::from_fn(|_| Padded::default()),
            }),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. One relaxed `fetch_add` on this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.core.shards[shard_index()].0.fetch_add(n, Relaxed);
    }

    /// Folds the shards into the current total.
    pub fn value(&self) -> u64 {
        self.core
            .shards
            .iter()
            .map(|s| s.0.load(Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// A handle to an instantaneous signed value.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Self {
        Gauge {
            cell: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Relaxed);
    }

    /// Adjusts the value by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.cell.fetch_add(d, Relaxed);
    }

    /// Reads the current value.
    pub fn value(&self) -> i64 {
        self.cell.load(Relaxed)
    }
}

/// Bucket count: index 0 holds the value 0, index `i >= 1` holds values
/// with exactly `i` significant bits, i.e. `[2^(i-1), 2^i - 1]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

struct HistogramCore {
    buckets: [Padded; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A handle to a log-bucketed histogram. `observe` is wait-free; the
/// quantile math happens at scrape time from the bucket counts.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            core: Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| Padded::default()),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        let core = &*self.core;
        core.buckets[bucket_of(v)].0.fetch_add(1, Relaxed);
        core.sum.fetch_add(v, Relaxed);
        core.max.fetch_max(v, Relaxed);
    }

    /// Records an elapsed duration in nanoseconds.
    #[inline]
    pub fn observe_since(&self, start: std::time::Instant) {
        self.observe(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }

    fn sample(&self, name: &str, labels: &[(String, String)]) -> HistogramSample {
        let core = &*self.core;
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in core.buckets.iter().enumerate() {
            let c = b.0.load(Relaxed);
            if c > 0 {
                count += c;
                buckets.push((bucket_upper_bound(i), c));
            }
        }
        HistogramSample {
            name: name.to_string(),
            labels: labels.to_vec(),
            count,
            sum: core.sum.load(Relaxed),
            max: core.max.load(Relaxed),
            buckets,
        }
    }
}

/// A `(family name, label set)` instance key. Labels are kept sorted so
/// `[("a","1"),("b","2")]` and its permutation are the same series.
type SeriesKey = (String, Vec<(String, String)>);

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

struct Family {
    kind: MetricKind,
    help: String,
}

#[derive(Default)]
struct Series {
    counters: BTreeMap<SeriesKey, Counter>,
    gauges: BTreeMap<SeriesKey, Gauge>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

/// The registry: a name → family map plus the live series.
///
/// Lookup takes a read-write lock, so resolve handles once at wiring
/// time and keep them; only scrapes and first-touch registration pay
/// for the lock. With the `obs-strict` feature, touching an undeclared
/// family or declaring one twice panics — CI runs the loopback test in
/// that mode to catch drift between declarations and use sites.
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
    series: RwLock<Series>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            families: Mutex::new(BTreeMap::new()),
            series: RwLock::new(Series::default()),
        }
    }

    /// Declares a metric family before use. Under `obs-strict` a second
    /// declaration of the same name panics; otherwise it is idempotent.
    /// A kind conflict panics unconditionally.
    pub fn declare(&self, name: &str, kind: MetricKind, help: &str) {
        let mut fams = self.families.lock().unwrap();
        if let Some(f) = fams.get(name) {
            assert!(
                f.kind == kind,
                "metric `{name}` declared as {:?} and {kind:?}",
                f.kind
            );
            if cfg!(feature = "obs-strict") {
                panic!("metric `{name}` declared twice");
            }
            return;
        }
        fams.insert(
            name.to_string(),
            Family {
                kind,
                help: help.to_string(),
            },
        );
    }

    fn check_declared(&self, name: &str, kind: MetricKind) {
        let mut fams = self.families.lock().unwrap();
        match fams.get(name) {
            Some(f) => assert!(
                f.kind == kind,
                "metric `{name}` declared as {:?}, used as {kind:?}",
                f.kind
            ),
            None if cfg!(feature = "obs-strict") => {
                panic!("metric `{name}` used without being declared")
            }
            None => {
                fams.insert(
                    name.to_string(),
                    Family {
                        kind,
                        help: String::new(),
                    },
                );
            }
        }
    }

    /// The counter `name` with no labels (registered on first touch
    /// unless `obs-strict`).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// The counter `name` with the given labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.check_declared(name, MetricKind::Counter);
        let key = series_key(name, labels);
        if let Some(c) = self.series.read().unwrap().counters.get(&key) {
            return c.clone();
        }
        let mut s = self.series.write().unwrap();
        s.counters.entry(key).or_insert_with(Counter::new).clone()
    }

    /// The gauge `name` with no labels.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// The gauge `name` with the given labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.check_declared(name, MetricKind::Gauge);
        let key = series_key(name, labels);
        if let Some(g) = self.series.read().unwrap().gauges.get(&key) {
            return g.clone();
        }
        let mut s = self.series.write().unwrap();
        s.gauges.entry(key).or_insert_with(Gauge::new).clone()
    }

    /// The histogram `name` with no labels.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// The histogram `name` with the given labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.check_declared(name, MetricKind::Histogram);
        let key = series_key(name, labels);
        if let Some(h) = self.series.read().unwrap().histograms.get(&key) {
            return h.clone();
        }
        let mut s = self.series.write().unwrap();
        s.histograms
            .entry(key)
            .or_insert_with(Histogram::new)
            .clone()
    }

    /// A point-in-time copy of every series, ready for exposition.
    ///
    /// Each cell is read with a relaxed load, so a snapshot taken under
    /// contended writes is not a global atomic cut — but each counter is
    /// monotone, and histogram counts come from the buckets themselves,
    /// so quantiles never see a torn state.
    pub fn snapshot(&self) -> Snapshot {
        let s = self.series.read().unwrap();
        let fams = self.families.lock().unwrap();
        Snapshot {
            counters: s
                .counters
                .iter()
                .map(|((name, labels), c)| CounterSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: c.value(),
                })
                .collect(),
            gauges: s
                .gauges
                .iter()
                .map(|((name, labels), g)| GaugeSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: g.value(),
                })
                .collect(),
            histograms: s
                .histograms
                .iter()
                .map(|((name, labels), h)| h.sample(name, labels))
                .collect(),
            help: fams
                .iter()
                .filter(|(_, f)| !f.help.is_empty())
                .map(|(name, f)| (name.clone(), f.help.clone()))
                .collect(),
        }
    }
}

/// One counter series in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Folded total at snapshot time.
    pub value: u64,
}

impl_json_struct!(CounterSample {
    name,
    labels,
    value
});

/// One gauge series in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSample {
    /// Family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: i64,
}

impl_json_struct!(GaugeSample {
    name,
    labels,
    value
});

/// One histogram series in a [`Snapshot`]. Buckets are the non-empty
/// `(inclusive upper bound, count)` pairs in ascending bound order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    /// Family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Total observations (sum of bucket counts, so it can never
    /// disagree with the buckets it was derived from).
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
    /// Non-empty buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl_json_struct!(HistogramSample {
    name,
    labels,
    count,
    sum,
    max,
    buckets
});

impl HistogramSample {
    /// The upper bound of the first bucket at which the cumulative
    /// count reaches `q` of the total (0 when empty). Log-bucketed, so
    /// the answer carries at most one power-of-two of overshoot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for &(upper, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return upper;
            }
        }
        self.buckets.last().map(|&(u, _)| u).unwrap_or(0)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A point-in-time copy of a whole registry: what `MetricsResp` carries
/// and what `CollectorReport` embeds at shutdown.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// All counter series, in (name, labels) order.
    pub counters: Vec<CounterSample>,
    /// All gauge series, in (name, labels) order.
    pub gauges: Vec<GaugeSample>,
    /// All histogram series, in (name, labels) order.
    pub histograms: Vec<HistogramSample>,
    /// `(family name, help text)` pairs for exposition.
    pub help: Vec<(String, String)>,
}

impl_json_struct!(Snapshot {
    counters,
    gauges,
    histograms,
    help
});

impl Snapshot {
    /// The counter series with exactly these labels.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = series_key(name, labels);
        self.counters
            .iter()
            .find(|c| c.name == key.0 && c.labels == key.1)
            .map(|c| c.value)
    }

    /// The sum of every series of counter `name`, across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// The gauge series with exactly these labels.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let key = series_key(name, labels);
        self.gauges
            .iter()
            .find(|g| g.name == key.0 && g.labels == key.1)
            .map(|g| g.value)
    }

    /// The histogram series with exactly these labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSample> {
        let key = series_key(name, labels);
        self.histograms
            .iter()
            .find(|h| h.name == key.0 && h.labels == key.1)
    }

    /// Renders the snapshot as one compact-JSON line.
    pub fn to_json_string(&self) -> String {
        json::to_string_compact(self)
    }

    /// Parses a snapshot from compact JSON.
    pub fn from_json_str(s: &str) -> Result<Self, JsonError> {
        json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_folds_shards() {
        let r = MetricsRegistry::new();
        r.declare("c", MetricKind::Counter, "test counter");
        let c = r.counter("c");
        c.add(3);
        c.inc();
        assert_eq!(c.value(), 4);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 4 + 8 * 1000);
    }

    #[test]
    fn gauge_set_and_add() {
        let r = MetricsRegistry::new();
        r.declare("g", MetricKind::Gauge, "test gauge");
        let g = r.gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = MetricsRegistry::new();
        r.declare("h", MetricKind::Histogram, "test histogram");
        let h = r.histogram("h");
        for v in [0u64, 1, 2, 3, 900, 1000, 1_000_000] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("h", &[]).unwrap();
        assert_eq!(hs.count, 7);
        assert_eq!(hs.sum, 1_001_906);
        assert_eq!(hs.max, 1_000_000);
        // 900 and 1000 share the 10-bit bucket [512, 1023].
        assert_eq!(
            hs.buckets.iter().find(|&&(u, _)| u == 1023).map(|b| b.1),
            Some(2)
        );
        assert_eq!(hs.p99(), (1u64 << 20) - 1);
        assert_eq!(hs.quantile(0.0), 0);
    }

    #[test]
    fn labels_are_order_insensitive() {
        let r = MetricsRegistry::new();
        r.declare("c", MetricKind::Counter, "test counter");
        let a = r.counter_with("c", &[("x", "1"), ("y", "2")]);
        let b = r.counter_with("c", &[("y", "2"), ("x", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2);
        assert_eq!(
            r.snapshot().counter("c", &[("x", "1"), ("y", "2")]),
            Some(2)
        );
    }

    #[test]
    #[should_panic(expected = "declared as")]
    fn kind_conflict_panics() {
        let r = MetricsRegistry::new();
        r.declare("m", MetricKind::Counter, "test");
        r.counter("m");
        r.gauge("m");
    }

    #[cfg(feature = "obs-strict")]
    #[test]
    #[should_panic(expected = "without being declared")]
    fn strict_mode_rejects_undeclared() {
        let r = MetricsRegistry::new();
        r.counter("nope");
    }

    #[cfg(feature = "obs-strict")]
    #[test]
    #[should_panic(expected = "declared twice")]
    fn strict_mode_rejects_double_declaration() {
        let r = MetricsRegistry::new();
        r.declare("m", MetricKind::Counter, "m");
        r.declare("m", MetricKind::Counter, "m");
    }
}
