//! Event-flight spans: per-event causal latency through the pipeline.
//!
//! An event's life mirrors the paper's happens-before edges: it is
//! *received* off a socket, *journaled* to the WAL, *acked* back to its
//! source, *folded* into the HBG once the global min-watermark passes
//! its timestamp, declared *snapshot-consistent* when the tracker stops
//! waiting on slower routers, and (in a verifying deployment)
//! *verified*. The [`SpanRecorder`] stamps a sampled subset of events —
//! keyed by `(source, seq)` — at each stage and folds the transition
//! latencies into registry histograms, so a scrape shows where time
//! goes without tracing every event.
//!
//! Sampling keeps this off the hot path: only every `sample_every`-th
//! sequence number per source touches the mutex-guarded flight table;
//! everything else is a modulo and a branch.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::registry::{Counter, Histogram, MetricKind, MetricsRegistry};

/// A pipeline stage an event-flight span can be stamped at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Decoded off the socket by a reader thread.
    Received,
    /// Appended to the WAL by the merger.
    Journaled,
    /// Covered by an `Ack` written back to the source.
    Acked,
    /// Folded into the HBG (global min-watermark passed its time).
    Folded,
    /// Part of a consistent snapshot (tracker no longer waiting).
    Consistent,
    /// Checked by the verifier.
    Verified,
}

struct Flight {
    t_received: Instant,
    t_journaled: Option<Instant>,
    t_folded: Option<Instant>,
    /// The event's own (simulated) timestamp; a flight only completes
    /// once the watermark passes it.
    event_time: Option<u64>,
    /// The fold shard that journaled/folded this event, when the
    /// recorder was built sharded.
    shard: Option<u32>,
}

/// Records sampled event-flight spans into a registry.
pub struct SpanRecorder {
    sample_every: u64,
    cap: usize,
    inflight: Mutex<HashMap<(u32, u64), Flight>>,
    started: Counter,
    completed: Counter,
    dropped: Counter,
    recv_to_journal: Histogram,
    journal_to_ack: Histogram,
    recv_to_fold: Histogram,
    fold_to_consistent: Histogram,
    /// Per-shard `fold_to_consistent` breakdown (shard-labeled series);
    /// empty unless built with [`SpanRecorder::new_sharded`].
    fold_to_consistent_shard: Vec<Histogram>,
}

impl SpanRecorder {
    /// Creates a recorder that samples every `sample_every`-th sequence
    /// number per source and tracks at most `cap` flights at once.
    pub fn new(reg: &MetricsRegistry, sample_every: u64, cap: usize) -> Self {
        reg.declare(
            "cpvr_flights_started_total",
            MetricKind::Counter,
            "Sampled event flights opened at Received",
        );
        reg.declare(
            "cpvr_flights_completed_total",
            MetricKind::Counter,
            "Sampled event flights that reached a consistent snapshot",
        );
        reg.declare(
            "cpvr_flights_dropped_total",
            MetricKind::Counter,
            "Sampled event flights evicted by the in-flight cap",
        );
        reg.declare(
            "cpvr_flight_received_to_journaled_nanos",
            MetricKind::Histogram,
            "Latency from socket receive to WAL append",
        );
        reg.declare(
            "cpvr_flight_journaled_to_acked_nanos",
            MetricKind::Histogram,
            "Latency from WAL append to the covering Ack",
        );
        reg.declare(
            "cpvr_flight_received_to_folded_nanos",
            MetricKind::Histogram,
            "End-to-end latency from receive to HBG fold",
        );
        reg.declare(
            "cpvr_flight_folded_to_consistent_nanos",
            MetricKind::Histogram,
            "Wait between HBG fold and snapshot consistency (the paper's wait-instead-of-false-alarm)",
        );
        SpanRecorder {
            sample_every: sample_every.max(1),
            cap: cap.max(1),
            inflight: Mutex::new(HashMap::new()),
            started: reg.counter("cpvr_flights_started_total"),
            completed: reg.counter("cpvr_flights_completed_total"),
            dropped: reg.counter("cpvr_flights_dropped_total"),
            recv_to_journal: reg.histogram("cpvr_flight_received_to_journaled_nanos"),
            journal_to_ack: reg.histogram("cpvr_flight_journaled_to_acked_nanos"),
            recv_to_fold: reg.histogram("cpvr_flight_received_to_folded_nanos"),
            fold_to_consistent: reg.histogram("cpvr_flight_folded_to_consistent_nanos"),
            fold_to_consistent_shard: Vec::new(),
        }
    }

    /// Like [`SpanRecorder::new`], but additionally resolves a
    /// shard-labeled `cpvr_flight_folded_to_consistent_nanos` series per
    /// fold shard, so the §4.3 wait-cost breakdown survives sharding the
    /// merger. Flights stamped with [`SpanRecorder::stamp_shard`] feed
    /// their shard's series on completion (the unlabeled series still
    /// sees every completion).
    pub fn new_sharded(reg: &MetricsRegistry, sample_every: u64, cap: usize, shards: u32) -> Self {
        let mut rec = Self::new(reg, sample_every, cap);
        for k in 0..shards {
            let label = k.to_string();
            rec.fold_to_consistent_shard.push(reg.histogram_with(
                "cpvr_flight_folded_to_consistent_nanos",
                &[("shard", &label)],
            ));
        }
        rec
    }

    /// Records which fold shard owns a flight's event. No-op for
    /// unsampled or untracked flights, or on an unsharded recorder.
    pub fn stamp_shard(&self, source: u32, seq: u64, shard: u32) {
        if !self.sampled(seq) || self.fold_to_consistent_shard.is_empty() {
            return;
        }
        if let Some(f) = self.inflight.lock().unwrap().get_mut(&(source, seq)) {
            f.shard = Some(shard);
        }
    }

    /// Whether `seq` falls in the sampled subset. Call this before
    /// doing any work to build a stamp.
    #[inline]
    pub fn sampled(&self, seq: u64) -> bool {
        seq.is_multiple_of(self.sample_every)
    }

    /// Opens a flight at [`Stage::Received`]. No-op for unsampled seqs.
    pub fn received(&self, source: u32, seq: u64) {
        if !self.sampled(seq) {
            return;
        }
        let mut map = self.inflight.lock().unwrap();
        if map.len() >= self.cap {
            self.dropped.inc();
            return;
        }
        map.insert(
            (source, seq),
            Flight {
                t_received: Instant::now(),
                t_journaled: None,
                t_folded: None,
                event_time: None,
                shard: None,
            },
        );
        self.started.inc();
    }

    /// Attaches the event's own timestamp so [`Self::fold_up_to`] knows
    /// when the watermark has passed it.
    pub fn event_time(&self, source: u32, seq: u64, time: u64) {
        if !self.sampled(seq) {
            return;
        }
        if let Some(f) = self.inflight.lock().unwrap().get_mut(&(source, seq)) {
            f.event_time = Some(time);
        }
    }

    /// Stamps an intermediate stage. Unknown flights (unsampled, capped
    /// out, or already completed) are ignored.
    pub fn stamp(&self, source: u32, seq: u64, stage: Stage) {
        if !self.sampled(seq) {
            return;
        }
        let now = Instant::now();
        let mut map = self.inflight.lock().unwrap();
        let Some(f) = map.get_mut(&(source, seq)) else {
            return;
        };
        match stage {
            Stage::Received => {}
            Stage::Journaled => {
                if f.t_journaled.is_none() {
                    f.t_journaled = Some(now);
                    self.recv_to_journal
                        .observe(nanos_between(f.t_received, now));
                }
            }
            Stage::Acked => {
                if let Some(tj) = f.t_journaled {
                    self.journal_to_ack.observe(nanos_between(tj, now));
                }
            }
            // Folded / Consistent advance with the watermark, not per
            // event — see `fold_up_to`. Verified is stamped by a
            // verifying consumer; treat it as completing the flight.
            Stage::Folded | Stage::Consistent => {}
            Stage::Verified => {
                map.remove(&(source, seq));
                self.completed.inc();
            }
        }
    }

    /// Advances every flight whose event time the watermark has passed:
    /// stamps [`Stage::Folded`] the first time, and completes the
    /// flight at [`Stage::Consistent`] once `consistent` is true.
    pub fn fold_up_to(&self, watermark: u64, consistent: bool) {
        let now = Instant::now();
        let mut map = self.inflight.lock().unwrap();
        let mut done: Vec<(u32, u64)> = Vec::new();
        for (key, f) in map.iter_mut() {
            match f.event_time {
                Some(t) if t <= watermark => {}
                _ => continue,
            }
            if f.t_folded.is_none() {
                f.t_folded = Some(now);
                self.recv_to_fold.observe(nanos_between(f.t_received, now));
            }
            if consistent {
                let waited = nanos_between(f.t_folded.unwrap(), now);
                self.fold_to_consistent.observe(waited);
                if let Some(h) = f
                    .shard
                    .and_then(|k| self.fold_to_consistent_shard.get(k as usize))
                {
                    h.observe(waited);
                }
                done.push(*key);
            }
        }
        for key in done {
            map.remove(&key);
            self.completed.inc();
        }
    }

    /// Flights currently being tracked.
    pub fn inflight(&self) -> usize {
        self.inflight.lock().unwrap().len()
    }
}

fn nanos_between(from: Instant, to: Instant) -> u64 {
    to.duration_since(from).as_nanos().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn flight_walks_the_stages() {
        let reg = MetricsRegistry::new();
        let rec = SpanRecorder::new(&reg, 1, 1024);
        rec.received(0, 0);
        rec.event_time(0, 0, 100);
        rec.stamp(0, 0, Stage::Journaled);
        rec.stamp(0, 0, Stage::Acked);
        assert_eq!(rec.inflight(), 1);
        // Watermark below the event time folds nothing.
        rec.fold_up_to(99, true);
        assert_eq!(rec.inflight(), 1);
        // Fold but stay inconsistent: the flight stays open.
        rec.fold_up_to(100, false);
        assert_eq!(rec.inflight(), 1);
        rec.fold_up_to(100, true);
        assert_eq!(rec.inflight(), 0);
        let s = reg.snapshot();
        assert_eq!(s.counter_total("cpvr_flights_started_total"), 1);
        assert_eq!(s.counter_total("cpvr_flights_completed_total"), 1);
        for h in [
            "cpvr_flight_received_to_journaled_nanos",
            "cpvr_flight_journaled_to_acked_nanos",
            "cpvr_flight_received_to_folded_nanos",
            "cpvr_flight_folded_to_consistent_nanos",
        ] {
            assert_eq!(s.histogram(h, &[]).unwrap().count, 1, "{h}");
        }
    }

    #[test]
    fn sampling_skips_off_stride_seqs() {
        let reg = MetricsRegistry::new();
        let rec = SpanRecorder::new(&reg, 64, 1024);
        for seq in 0..200 {
            rec.received(1, seq);
        }
        // 0, 64, 128, 192.
        assert_eq!(rec.inflight(), 4);
    }

    #[test]
    fn sharded_flights_feed_the_owning_shards_series() {
        let reg = MetricsRegistry::new();
        let rec = SpanRecorder::new_sharded(&reg, 1, 1024, 2);
        for (source, shard) in [(0u32, 0u32), (1, 1), (2, 1)] {
            rec.received(source, 0);
            rec.event_time(source, 0, 10);
            rec.stamp_shard(source, 0, shard);
        }
        rec.fold_up_to(10, true);
        assert_eq!(rec.inflight(), 0);
        let s = reg.snapshot();
        // The unlabeled series sees every completion; the labeled ones
        // split by owning shard.
        assert_eq!(
            s.histogram("cpvr_flight_folded_to_consistent_nanos", &[])
                .unwrap()
                .count,
            3
        );
        assert_eq!(
            s.histogram("cpvr_flight_folded_to_consistent_nanos", &[("shard", "0")])
                .unwrap()
                .count,
            1
        );
        assert_eq!(
            s.histogram("cpvr_flight_folded_to_consistent_nanos", &[("shard", "1")])
                .unwrap()
                .count,
            2
        );
    }

    #[test]
    fn cap_drops_instead_of_growing() {
        let reg = MetricsRegistry::new();
        let rec = SpanRecorder::new(&reg, 1, 2);
        rec.received(0, 0);
        rec.received(0, 1);
        rec.received(0, 2);
        assert_eq!(rec.inflight(), 2);
        let s = reg.snapshot();
        assert_eq!(s.counter_total("cpvr_flights_dropped_total"), 1);
    }
}
