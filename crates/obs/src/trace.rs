//! Black-box flight recorder + causal-trace stitching.
//!
//! Counters answer "how much"; this module answers "*why*": why did
//! that EC go inconsistent, that watermark stall, that repair come
//! back BLOCKED? Every layer of the pipeline — sink, decoder, WAL,
//! merger workers, federation rounds, the replay gate — appends
//! compact structured records ([`FlightRecord`]: stage code, optional
//! [`TraceCtx`], monotonic nanos, two payload words) into per-thread
//! lock-free ring buffers. The rings overwrite oldest-first and cost a
//! handful of relaxed atomic stores per record, so they stay armed on
//! the hot path at all times, like an aircraft's black box.
//!
//! When an anomaly fires — lease eviction, gate DIVERGED/ERROR,
//! watermark stall, CRC-quarantine burst — the recorder freezes a
//! snapshot of every ring and writes it to `flight-<reason>-<n>.json`
//! next to the WAL. Operators can also snapshot a live collector over
//! the wire via the `DumpReq`/`DumpResp` codec frames.
//!
//! Dumps from different federation members are merged by
//! [`stitch`]ing on `trace_id` (trace ids are minted deterministically
//! from content identities, see `cpvr_types::trace`), and
//! [`chrome_trace`] renders the merged timeline as Chrome
//! `trace_event` JSON, openable in `about:tracing` or Perfetto —
//! one repair reads as: proposed@member-0 → proof journaled → gated
//! REPRODUCED → proof broadcast → peers verified.
//!
//! ## Ring memory model
//!
//! Each ring is single-producer (one [`RingHandle`] per thread),
//! multi-reader (any thread may snapshot). Slots are seqlocks built
//! from `AtomicU64`s only — no unsafe: the writer bumps the slot's
//! sequence word to an odd value, stores the five payload words with
//! relaxed ordering, then publishes an even sequence with release
//! ordering. A reader that observes the same even sequence before and
//! after reading the payload words has a tear-free record; anything
//! else is retried or skipped. The final even sequence also encodes
//! the record's global index, which is how dumps recover oldest-first
//! order after wrap-around.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cpvr_types::json::{self, FromJson, JsonError, ToJson, Value};
use cpvr_types::TraceCtx;

/// Stage codes stamped on flight records. Codes are stable wire/JSON
/// values: dumps from older builds must keep meaning the same thing.
pub mod stage {
    /// A sampled event flight left the sink (minted its trace).
    pub const SINK_SEND: u32 = 1;
    /// The collector reader decoded a traced event frame.
    pub const DECODED: u32 = 2;
    /// A traced record was appended to the write-ahead log.
    pub const JOURNALED: u32 = 3;
    /// The merger folded the event past the watermark.
    pub const FOLDED: u32 = 4;
    /// Repair lifecycle: proposed (payload a = repair_id).
    pub const REPAIR_PROPOSED: u32 = 10;
    /// Repair lifecycle: proof attached and journaled.
    pub const REPAIR_PROVEN: u32 = 11;
    /// Repair lifecycle: replay gate returned a verdict
    /// (payload b = verdict code: 0 reproduced, 1 diverged, 2 error).
    pub const REPAIR_GATED: u32 = 12;
    /// Repair lifecycle: applied to the live fold.
    pub const REPAIR_APPLIED: u32 = 13;
    /// Repair lifecycle: blocked by the gate.
    pub const REPAIR_BLOCKED: u32 = 14;
    /// Repair lifecycle: rolled back.
    pub const REPAIR_ROLLED_BACK: u32 = 15;
    /// A gated proof was broadcast to federation peers.
    pub const PROOF_BROADCAST: u32 = 16;
    /// A peer re-validated a broadcast proof
    /// (payload a = repair_id, b = originating member).
    pub const PEER_PROOF_VERIFIED: u32 = 17;
    /// A federated round opened at a fold horizon.
    pub const ROUND_OPENED: u32 = 20;
    /// Boundary edges for a round were sent to a peer.
    pub const ROUND_BOUNDARY: u32 = 21;
    /// A partial verdict for a round was sent.
    pub const ROUND_PARTIAL: u32 = 22;
    /// A federated round completed with a global verdict.
    pub const ROUND_COMPLETE: u32 = 23;
    /// Anomaly: a silent source's lease was evicted.
    pub const EVICTION: u32 = 30;
    /// Anomaly: the replay gate answered DIVERGED or ERROR.
    pub const GATE_ANOMALY: u32 = 31;
    /// Anomaly: the global min-watermark stalled past the threshold.
    pub const WATERMARK_STALL: u32 = 32;
    /// Anomaly: a burst of CRC-quarantined frames on one reader.
    pub const CRC_BURST: u32 = 33;

    /// Human-readable name for a stage code (used in Chrome traces).
    pub fn name(code: u32) -> &'static str {
        match code {
            SINK_SEND => "sink-send",
            DECODED => "decoded",
            JOURNALED => "journaled",
            FOLDED => "folded",
            REPAIR_PROPOSED => "repair-proposed",
            REPAIR_PROVEN => "repair-proven",
            REPAIR_GATED => "repair-gated",
            REPAIR_APPLIED => "repair-applied",
            REPAIR_BLOCKED => "repair-blocked",
            REPAIR_ROLLED_BACK => "repair-rolled-back",
            PROOF_BROADCAST => "proof-broadcast",
            PEER_PROOF_VERIFIED => "peer-proof-verified",
            ROUND_OPENED => "round-opened",
            ROUND_BOUNDARY => "round-boundary",
            ROUND_PARTIAL => "round-partial",
            ROUND_COMPLETE => "round-complete",
            EVICTION => "eviction",
            GATE_ANOMALY => "gate-anomaly",
            WATERMARK_STALL => "watermark-stall",
            CRC_BURST => "crc-burst",
            _ => "unknown",
        }
    }
}

/// Payload words per slot besides the sequence word: packed
/// stage+parent, monotonic nanos, trace id, and two payload words.
const SLOT_WORDS: usize = 5;

struct Slot {
    /// Seqlock word: 0 = never written, odd = write in progress,
    /// even `s` = record number `s/2 - 1` is stable in the slot.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// One single-producer ring inside the recorder.
struct Ring {
    label: String,
    slots: Vec<Slot>,
    /// Total records ever written (monotone; `head > capacity` means
    /// the ring has wrapped and overwritten `head - capacity` records).
    head: AtomicU64,
    overwrites: AtomicU64,
}

impl Ring {
    fn new(label: String, capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Slot::new());
        }
        Ring {
            label,
            slots,
            head: AtomicU64::new(0),
            overwrites: AtomicU64::new(0),
        }
    }

    /// Tear-free snapshot of the ring's surviving records,
    /// oldest-first. Runs concurrently with the writer: a slot being
    /// overwritten mid-read is retried a few times, then skipped.
    fn snapshot(&self, epoch: Instant, out: &mut Vec<FlightRecord>) {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        let live = head.min(cap);
        let mut got: Vec<FlightRecord> = Vec::with_capacity(live as usize);
        for slot in &self.slots {
            for _attempt in 0..8 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 {
                    break; // never written
                }
                if s1 & 1 == 1 {
                    std::hint::spin_loop();
                    continue; // write in progress
                }
                let mut w = [0u64; SLOT_WORDS];
                for (dst, src) in w.iter_mut().zip(slot.words.iter()) {
                    *dst = src.load(Ordering::Relaxed);
                }
                let s2 = slot.seq.load(Ordering::Acquire);
                if s1 == s2 {
                    let n = s1 / 2 - 1;
                    let stage = (w[0] & 0xffff_ffff) as u32;
                    let parent = (w[0] >> 32) as u32;
                    let trace_id = w[2];
                    got.push(FlightRecord {
                        ring: self.label.clone(),
                        n,
                        stage,
                        t_nanos: w[1],
                        trace: if trace_id == 0 {
                            None
                        } else {
                            Some(TraceCtx { trace_id, parent })
                        },
                        a: w[3],
                        b: w[4],
                    });
                    break;
                }
                // torn read: the writer lapped us; retry
            }
        }
        let _ = epoch; // t_nanos is already epoch-relative at write time
        got.sort_by_key(|r| r.n);
        out.extend(got);
    }
}

/// A single-producer handle for appending flight records from one
/// thread. Cheap to use (a few relaxed atomic stores); cloneable only
/// by re-registering with the recorder.
pub struct RingHandle {
    ring: Arc<Ring>,
    epoch: Instant,
}

impl RingHandle {
    /// Appends one record. `trace` is `None` for untraced records
    /// (anomaly markers that are not part of any sampled story).
    pub fn record(&self, stage: u32, trace: Option<TraceCtx>, a: u64, b: u64) {
        let h = self.ring.head.load(Ordering::Relaxed);
        let cap = self.ring.slots.len() as u64;
        let slot = &self.ring.slots[(h % cap) as usize];
        // Odd = write in progress. Release so readers that saw the
        // previous even value order their payload reads before this.
        slot.seq.store(2 * h + 1, Ordering::Release);
        let (trace_id, parent) = match trace {
            Some(ctx) => (ctx.trace_id, ctx.parent),
            None => (0, 0),
        };
        let packed = (stage as u64) | ((parent as u64) << 32);
        let t = self.epoch.elapsed().as_nanos() as u64;
        slot.words[0].store(packed, Ordering::Relaxed);
        slot.words[1].store(t, Ordering::Relaxed);
        slot.words[2].store(trace_id, Ordering::Relaxed);
        slot.words[3].store(a, Ordering::Relaxed);
        slot.words[4].store(b, Ordering::Relaxed);
        // Even value encoding the record number publishes the slot.
        slot.seq.store(2 * (h + 1), Ordering::Release);
        if h >= cap {
            self.ring.overwrites.fetch_add(1, Ordering::Relaxed);
        }
        self.ring.head.store(h + 1, Ordering::Release);
    }
}

/// One decoded flight record, as it appears in dumps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightRecord {
    /// Label of the ring (thread) that emitted the record.
    pub ring: String,
    /// Global record number within its ring (monotone, gap-free per
    /// ring until overwritten).
    pub n: u64,
    /// Stage code (see [`stage`]).
    pub stage: u32,
    /// Monotonic nanos since the recorder's epoch. Comparable within
    /// one process only — never across federation members.
    pub t_nanos: u64,
    /// The causal story this record belongs to, if traced.
    pub trace: Option<TraceCtx>,
    /// Stage-specific payload word (e.g. repair_id, source id).
    pub a: u64,
    /// Second stage-specific payload word (e.g. verdict code).
    pub b: u64,
}

impl ToJson for FlightRecord {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("ring".to_string(), self.ring.to_json()),
            ("n".to_string(), self.n.to_json()),
            ("stage".to_string(), self.stage.to_json()),
            ("t_nanos".to_string(), self.t_nanos.to_json()),
        ];
        if let Some(ctx) = self.trace {
            fields.push(("trace".to_string(), ctx.to_json()));
        }
        fields.push(("a".to_string(), self.a.to_json()));
        fields.push(("b".to_string(), self.b.to_json()));
        Value::Object(fields)
    }
}

impl FromJson for FlightRecord {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(FlightRecord {
            ring: String::from_json(v.field("ring")?)?,
            n: u64::from_json(v.field("n")?)?,
            stage: u32::from_json(v.field("stage")?)?,
            t_nanos: u64::from_json(v.field("t_nanos")?)?,
            trace: match v.field("trace") {
                Ok(t) => Some(TraceCtx::from_json(t)?),
                Err(_) => None,
            },
            a: u64::from_json(v.field("a")?)?,
            b: u64::from_json(v.field("b")?)?,
        })
    }
}

/// A frozen snapshot of every ring on one collector, as written to
/// `flight-<reason>-<n>.json` and served over `DumpResp`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightDump {
    /// Federation member id that produced the dump; -1 standalone.
    pub member: i64,
    /// Why the dump was taken (`"eviction"`, `"diverged"`, `"stall"`,
    /// `"crc-burst"`, `"dump-req"`, ...).
    pub reason: String,
    /// All surviving records across all rings. Ordered per-ring
    /// oldest-first; cross-ring order is by each record's `t_nanos`.
    pub records: Vec<FlightRecord>,
}

impl ToJson for FlightDump {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("member".to_string(), self.member.to_json()),
            ("reason".to_string(), self.reason.to_json()),
            ("records".to_string(), self.records.to_json()),
        ])
    }
}

impl FromJson for FlightDump {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(FlightDump {
            member: i64::from_json(v.field("member")?)?,
            reason: String::from_json(v.field("reason")?)?,
            records: Vec::<FlightRecord>::from_json(v.field("records")?)?,
        })
    }
}

/// The collector-wide flight recorder: a registry of per-thread rings
/// plus the anomaly-dump machinery. One per collector, shared as
/// `Arc<FlightRecorder>`.
pub struct FlightRecorder {
    epoch: Instant,
    rings: Mutex<Vec<Arc<Ring>>>,
    dump_dir: Mutex<Option<PathBuf>>,
    member: AtomicU64, // i64 stored as u64 bits; -1 = standalone
    dump_seq: AtomicU64,
    dumps_written: AtomicU64,
    last_reason: Mutex<Option<String>>,
    stall_fired: AtomicBool,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A fresh recorder with no rings and no dump directory (dumps
    /// are skipped, never an error, until one is armed).
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            epoch: Instant::now(),
            rings: Mutex::new(Vec::new()),
            dump_dir: Mutex::new(None),
            member: AtomicU64::new((-1i64) as u64),
            dump_seq: AtomicU64::new(0),
            dumps_written: AtomicU64::new(0),
            last_reason: Mutex::new(None),
            stall_fired: AtomicBool::new(false),
        }
    }

    /// Arms anomaly dumps: artifacts land in `dir` as
    /// `flight-<reason>-<n>.json` (typically next to the WAL).
    pub fn arm(&self, dir: &Path) {
        *self.dump_dir.lock().unwrap() = Some(dir.to_path_buf());
    }

    /// Whether anomaly dumps are armed (a dump directory is set).
    pub fn armed(&self) -> bool {
        self.dump_dir.lock().unwrap().is_some()
    }

    /// Tags dumps with the federation member id for stitching.
    pub fn set_member(&self, member: i64) {
        self.member.store(member as u64, Ordering::Relaxed);
    }

    /// Registers a new single-producer ring with `capacity` slots.
    /// Call once per thread; the returned handle is that thread's
    /// append-side.
    pub fn register(&self, label: &str, capacity: usize) -> RingHandle {
        let ring = Arc::new(Ring::new(label.to_string(), capacity));
        self.rings.lock().unwrap().push(Arc::clone(&ring));
        RingHandle {
            ring,
            epoch: self.epoch,
        }
    }

    /// Freezes a tear-free snapshot of every ring, merged and ordered
    /// by monotonic time.
    pub fn snapshot(&self, reason: &str) -> FlightDump {
        let mut records = Vec::new();
        for ring in self.rings.lock().unwrap().iter() {
            ring.snapshot(self.epoch, &mut records);
        }
        records.sort_by(|x, y| {
            x.t_nanos
                .cmp(&y.t_nanos)
                .then_with(|| x.ring.cmp(&y.ring))
                .then_with(|| x.n.cmp(&y.n))
        });
        FlightDump {
            member: self.member.load(Ordering::Relaxed) as i64,
            reason: reason.to_string(),
            records,
        }
    }

    /// Freezes the rings and writes `flight-<reason>-<n>.json` in the
    /// armed dump directory. Returns the artifact path, or `None`
    /// when not armed (or the write failed — the recorder must never
    /// take the pipeline down).
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let dir = self.dump_dir.lock().unwrap().clone()?;
        let n = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let snap = self.snapshot(reason);
        let path = dir.join(format!("flight-{reason}-{n}.json"));
        let body = json::to_string_compact(&snap);
        if std::fs::write(&path, body).is_err() {
            return None;
        }
        self.dumps_written.fetch_add(1, Ordering::Relaxed);
        *self.last_reason.lock().unwrap() = Some(reason.to_string());
        Some(path)
    }

    /// One-shot stall dump: fires at most once per stall episode.
    /// Returns the artifact path on the first call of an episode.
    pub fn dump_stall_once(&self, reason: &str) -> Option<PathBuf> {
        if self.stall_fired.swap(true, Ordering::Relaxed) {
            return None;
        }
        self.dump(reason)
    }

    /// Re-arms the one-shot stall trigger once the watermark advances.
    pub fn clear_stall(&self) {
        self.stall_fired.store(false, Ordering::Relaxed);
    }

    /// Number of anomaly dumps successfully written.
    pub fn dumps_written(&self) -> u64 {
        self.dumps_written.load(Ordering::Relaxed)
    }

    /// Reason string of the most recent dump, if any.
    pub fn last_reason(&self) -> Option<String> {
        self.last_reason.lock().unwrap().clone()
    }

    /// Total records overwritten (lost to wrap-around) across rings.
    pub fn ring_overwrites(&self) -> u64 {
        self.rings
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.overwrites.load(Ordering::Relaxed))
            .sum()
    }
}

/// One causal story reconstructed from a set of dumps: every record
/// across every member that carries the same `trace_id`.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// The shared trace id.
    pub trace_id: u64,
    /// `(member, record)` pairs. Ordered by parent stage code first
    /// (the causal hop counter, comparable across members), then by
    /// member and local time (comparable only within a member).
    pub records: Vec<(i64, FlightRecord)>,
}

impl Timeline {
    /// The distinct federation members contributing to this story.
    pub fn members(&self) -> Vec<i64> {
        let mut m: Vec<i64> = self.records.iter().map(|(mem, _)| *mem).collect();
        m.sort_unstable();
        m.dedup();
        m
    }
}

/// Merges dumps from any number of federation members into causal
/// timelines keyed by `trace_id`. Untraced records (anomaly markers)
/// are dropped here; they are still visible in the raw dumps.
pub fn stitch(dumps: &[FlightDump]) -> Vec<Timeline> {
    let mut by_trace: BTreeMap<u64, Vec<(i64, FlightRecord)>> = BTreeMap::new();
    for d in dumps {
        for r in &d.records {
            if let Some(ctx) = r.trace {
                by_trace
                    .entry(ctx.trace_id)
                    .or_default()
                    .push((d.member, r.clone()));
            }
        }
    }
    by_trace
        .into_iter()
        .map(|(trace_id, mut records)| {
            records.sort_by(|x, y| {
                let px = x.1.trace.map(|c| c.parent).unwrap_or(0);
                let py = y.1.trace.map(|c| c.parent).unwrap_or(0);
                px.cmp(&py)
                    .then_with(|| x.0.cmp(&y.0))
                    .then_with(|| x.1.t_nanos.cmp(&y.1.t_nanos))
            });
            // Drop duplicate observations of the same hop on the same
            // member (e.g. a record that survived in two rings).
            records.dedup_by(|x, y| x.0 == y.0 && x.1.stage == y.1.stage && x.1.a == y.1.a);
            Timeline { trace_id, records }
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders stitched dumps as Chrome `trace_event` JSON (openable in
/// `about:tracing` or Perfetto). Members become processes, rings
/// become threads; each flight record is an instant event, and flow
/// arrows connect the hops of each trace across members.
pub fn chrome_trace(dumps: &[FlightDump]) -> String {
    let mut events: Vec<String> = Vec::new();
    // Process/thread naming metadata.
    for d in dumps {
        let pid = d.member;
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"member {pid} ({})\"}}}}",
            json_escape(&d.reason)
        ));
    }
    // Stable tid per (member, ring label).
    let mut tids: BTreeMap<(i64, String), u64> = BTreeMap::new();
    for d in dumps {
        for r in &d.records {
            let key = (d.member, r.ring.clone());
            let next = tids.len() as u64 + 1;
            let tid = *tids.entry(key).or_insert(next);
            let _ = tid;
        }
    }
    for ((pid, ring), tid) in &tids {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(ring)
        ));
    }
    // Instant events for every record; flow arrows per trace.
    for d in dumps {
        for r in &d.records {
            let tid = tids.get(&(d.member, r.ring.clone())).copied().unwrap_or(0);
            let ts_us = r.t_nanos as f64 / 1000.0;
            let (trace_id, parent) = match r.trace {
                Some(c) => (c.trace_id, c.parent),
                None => (0, 0),
            };
            events.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"p\",\"pid\":{},\"tid\":{tid},\
                 \"ts\":{ts_us:.3},\"args\":{{\"trace_id\":{trace_id},\"parent\":{parent},\
                 \"a\":{},\"b\":{}}}}}",
                json_escape(stage::name(r.stage)),
                d.member,
                r.a,
                r.b
            ));
        }
    }
    for tl in stitch(dumps) {
        for (hop, (member, r)) in tl.records.iter().enumerate() {
            let tid = tids.get(&(*member, r.ring.clone())).copied().unwrap_or(0);
            let ts_us = r.t_nanos as f64 / 1000.0;
            let ph = if hop == 0 {
                "s"
            } else if hop + 1 == tl.records.len() {
                "f"
            } else {
                "t"
            };
            let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
            events.push(format!(
                "{{\"name\":\"trace-{:016x}\",\"cat\":\"cpvr\",\"ph\":\"{ph}\"{bp},\
                 \"id\":\"0x{:x}\",\"pid\":{member},\"tid\":{tid},\"ts\":{ts_us:.3}}}",
                tl.trace_id, tl.trace_id
            ));
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn ring_keeps_newest_records_oldest_first() {
        let rec = FlightRecorder::new();
        let h = rec.register("merger", 4);
        for i in 0..10u64 {
            h.record(stage::FOLDED, None, i, 0);
        }
        let snap = rec.snapshot("test");
        // Capacity 4, 10 writes: records 6..=9 survive, oldest first.
        let ns: Vec<u64> = snap.records.iter().map(|r| r.n).collect();
        assert_eq!(ns, vec![6, 7, 8, 9]);
        let payloads: Vec<u64> = snap.records.iter().map(|r| r.a).collect();
        assert_eq!(payloads, vec![6, 7, 8, 9]);
        assert_eq!(rec.ring_overwrites(), 6);
    }

    #[test]
    fn concurrent_snapshots_never_observe_tears() {
        // The writer stamps every payload word with the same value per
        // record; a torn read would surface mismatched words.
        let rec = Arc::new(FlightRecorder::new());
        let h = rec.register("writer", 8);
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let rec = Arc::clone(&rec);
            let stop = Arc::clone(&stop);
            readers.push(thread::spawn(move || {
                let mut seen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = rec.snapshot("probe");
                    for r in &snap.records {
                        assert_eq!(r.a, r.b, "torn record: a != b");
                        assert_eq!(
                            r.trace.map(|c| c.trace_id),
                            Some(r.a.max(1)),
                            "torn record: trace_id != payload"
                        );
                        seen += 1;
                    }
                }
                seen
            }));
        }
        for i in 0..200_000u64 {
            let ctx = TraceCtx {
                trace_id: i.max(1),
                parent: 0,
            };
            h.record(stage::FOLDED, Some(ctx), i, i);
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(total > 0, "readers never observed a record");
    }

    #[test]
    fn dump_writes_artifact_and_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "cpvr-flight-test-{}-{}",
            std::process::id(),
            Instant::now().elapsed().as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let rec = FlightRecorder::new();
        assert!(!rec.armed());
        assert!(rec.dump("eviction").is_none(), "unarmed dump must no-op");
        rec.arm(&dir);
        rec.set_member(2);
        let h = rec.register("reader-0", 16);
        h.record(stage::EVICTION, None, 7, 0);
        h.record(
            stage::REPAIR_GATED,
            Some(TraceCtx::for_repair(99).child(stage::REPAIR_PROVEN)),
            99,
            1,
        );
        let path = rec.dump("eviction").expect("armed dump");
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("flight-eviction-"));
        let body = std::fs::read_to_string(&path).unwrap();
        let back: FlightDump = json::from_str(&body).unwrap();
        assert_eq!(back.member, 2);
        assert_eq!(back.reason, "eviction");
        assert_eq!(back.records.len(), 2);
        assert_eq!(back.records[0].trace, None);
        assert_eq!(
            back.records[1].trace,
            Some(TraceCtx::for_repair(99).child(stage::REPAIR_PROVEN))
        );
        assert_eq!(rec.dumps_written(), 1);
        assert_eq!(rec.last_reason().as_deref(), Some("eviction"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stall_trigger_is_one_shot_until_cleared() {
        let dir = std::env::temp_dir().join(format!("cpvr-flight-stall-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rec = FlightRecorder::new();
        rec.arm(&dir);
        assert!(rec.dump_stall_once("stall").is_some());
        assert!(rec.dump_stall_once("stall").is_none());
        rec.clear_stall();
        assert!(rec.dump_stall_once("stall").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stitch_connects_hops_across_members() {
        let ctx = TraceCtx::for_repair(42);
        let mk = |member: i64, stage_code: u32, parent: u32, t: u64| FlightDump {
            member,
            reason: "dump-req".to_string(),
            records: vec![FlightRecord {
                ring: "merger".to_string(),
                n: 0,
                stage: stage_code,
                t_nanos: t,
                trace: Some(ctx.child(parent)),
                a: 42,
                b: 0,
            }],
        };
        let dumps = vec![
            mk(0, stage::REPAIR_PROPOSED, 0, 10),
            mk(0, stage::PROOF_BROADCAST, stage::REPAIR_GATED, 50),
            mk(1, stage::PEER_PROOF_VERIFIED, stage::PROOF_BROADCAST, 9),
            mk(2, stage::PEER_PROOF_VERIFIED, stage::PROOF_BROADCAST, 11),
        ];
        let timelines = stitch(&dumps);
        assert_eq!(timelines.len(), 1);
        let tl = &timelines[0];
        assert_eq!(tl.trace_id, ctx.trace_id);
        assert_eq!(tl.members(), vec![0, 1, 2]);
        // Hop order follows the parent stage chain, not local clocks.
        let stages: Vec<u32> = tl.records.iter().map(|(_, r)| r.stage).collect();
        assert_eq!(
            stages,
            vec![
                stage::REPAIR_PROPOSED,
                stage::PROOF_BROADCAST,
                stage::PEER_PROOF_VERIFIED,
                stage::PEER_PROOF_VERIFIED
            ]
        );
        let chrome = chrome_trace(&dumps);
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("repair-proposed"));
        assert!(chrome.contains("\"ph\":\"s\""));
        assert!(chrome.contains("\"ph\":\"f\""));
    }
}
