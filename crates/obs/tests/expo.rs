//! Exposition-format coverage: a golden-file test pinning the
//! Prometheus text output, a property test that compact JSON
//! round-trips through `cpvr_types::json`, and a concurrency test that
//! scraping under contended writes never observes a torn histogram.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use cpvr_obs::{render_prometheus, ExpoFormat, MetricKind, MetricsRegistry, Snapshot};
use cpvr_obs::{CounterSample, GaugeSample, HistogramSample};
use proptest::prelude::*;

/// Builds a registry with one of everything, deterministically.
fn sample_registry() -> MetricsRegistry {
    let r = MetricsRegistry::new();
    r.declare(
        "cpvr_events_received_total",
        MetricKind::Counter,
        "Fresh events accepted by the merger",
    );
    r.declare(
        "cpvr_watermark_nanos",
        MetricKind::Gauge,
        "Global min-watermark in simulated nanoseconds",
    );
    r.declare(
        "cpvr_wal_fsync_nanos",
        MetricKind::Histogram,
        "WAL fsync latency",
    );
    r.declare(
        "cpvr_flight_dumps_total",
        MetricKind::Counter,
        "Flight-recorder dumps frozen, by anomaly trigger",
    );
    r.declare(
        "cpvr_trace_bytes_total",
        MetricKind::Counter,
        "Bytes of TraceCtx trailers sent and received",
    );
    r.declare(
        "cpvr_watermark_stall_seconds",
        MetricKind::Gauge,
        "Seconds the global watermark has been stuck",
    );
    r.counter("cpvr_events_received_total").add(42);
    r.counter_with("cpvr_events_received_total", &[("router", "1")])
        .add(7);
    r.counter_with("cpvr_flight_dumps_total", &[("reason", "eviction")])
        .add(1);
    r.counter_with("cpvr_flight_dumps_total", &[("reason", "diverged")])
        .add(2);
    r.counter("cpvr_trace_bytes_total").add(1536);
    r.gauge("cpvr_watermark_nanos").set(123);
    r.gauge("cpvr_watermark_stall_seconds").set(31);
    let h = r.histogram("cpvr_wal_fsync_nanos");
    for v in [0u64, 1, 900, 1000, 1_000_000] {
        h.observe(v);
    }
    r
}

/// The Prometheus rendering is pinned by a golden file; regenerate with
/// `UPDATE_GOLDEN=1 cargo test -p cpvr-obs --test expo`.
#[test]
fn prometheus_output_matches_golden() {
    let text = render_prometheus(&sample_registry().snapshot());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &text).unwrap();
        return;
    }
    let golden =
        std::fs::read_to_string(path).expect("golden file missing; run with UPDATE_GOLDEN=1");
    assert_eq!(
        text, golden,
        "prometheus exposition drifted from golden file"
    );
}

#[test]
fn json_format_round_trips_via_wire_enum() {
    let reg = sample_registry();
    let snap = reg.snapshot();
    let rendered = ExpoFormat::Json.render(&snap);
    let back = cpvr_obs::parse_json(&rendered).unwrap();
    assert_eq!(snap, back);
    // The format tags are stable wire bytes.
    assert_eq!(
        ExpoFormat::from_byte(ExpoFormat::Json.as_byte()),
        Some(ExpoFormat::Json)
    );
    assert_eq!(
        ExpoFormat::from_byte(ExpoFormat::Prometheus.as_byte()),
        Some(ExpoFormat::Prometheus)
    );
    assert_eq!(ExpoFormat::from_byte(9), None);
}

fn arb_labels() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((0u8..4, 0u8..6), 0..3).prop_map(|pairs| {
        let mut l: Vec<(String, String)> = pairs
            .into_iter()
            .map(|(k, v)| (format!("k{k}"), format!("v{v}")))
            .collect();
        l.sort();
        l.dedup_by(|a, b| a.0 == b.0);
        l
    })
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    let counters =
        prop::collection::vec((0u8..8, arb_labels(), any::<u64>()), 0..6).prop_map(|xs| {
            xs.into_iter()
                .map(|(n, labels, value)| CounterSample {
                    name: format!("c{n}_total"),
                    labels,
                    value,
                })
                .collect::<Vec<_>>()
        });
    let gauges = prop::collection::vec((0u8..8, arb_labels(), any::<i64>()), 0..6).prop_map(|xs| {
        xs.into_iter()
            .map(|(n, labels, value)| GaugeSample {
                name: format!("g{n}"),
                labels,
                value,
            })
            .collect::<Vec<_>>()
    });
    let histograms = prop::collection::vec(
        (
            0u8..4,
            arb_labels(),
            prop::collection::vec(any::<u64>(), 0..12),
        ),
        0..4,
    )
    .prop_map(|xs| {
        xs.into_iter()
            .map(|(n, labels, values)| {
                // Build a well-formed sample by bucketing real values,
                // mirroring what `Histogram::sample` produces.
                let mut by_bits: std::collections::BTreeMap<u64, u64> = Default::default();
                for &v in &values {
                    let bits = 64 - v.leading_zeros() as usize;
                    let upper = match bits {
                        0 => 0,
                        64 => u64::MAX,
                        b => (1u64 << b) - 1,
                    };
                    *by_bits.entry(upper).or_default() += 1;
                }
                HistogramSample {
                    name: format!("h{n}_nanos"),
                    labels,
                    count: values.len() as u64,
                    sum: values.iter().fold(0u64, |a, &v| a.wrapping_add(v)),
                    max: values.iter().copied().max().unwrap_or(0),
                    buckets: by_bits.into_iter().collect(),
                }
            })
            .collect::<Vec<_>>()
    });
    let help = prop::collection::vec((0u8..8, 0u8..4), 0..4).prop_map(|xs| {
        xs.into_iter()
            .map(|(n, h)| (format!("c{n}_total"), format!("help text {h}")))
            .collect::<Vec<_>>()
    });
    (counters, gauges, histograms, help).prop_map(|(counters, gauges, histograms, help)| Snapshot {
        counters,
        gauges,
        histograms,
        help,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any snapshot survives compact-JSON rendering and parsing
    /// bit-for-bit (all integer fields, so equality is exact).
    #[test]
    fn snapshot_round_trips_through_compact_json(snap in arb_snapshot()) {
        let text = snap.to_json_string();
        let back = Snapshot::from_json_str(&text).unwrap();
        prop_assert_eq!(snap, back);
    }
}

/// Scraping while writers hammer the same histogram must never yield a
/// torn view: the count always equals the sum of the bucket counts (by
/// construction), every observation lands in the one correct bucket,
/// the quantiles stay on that bucket's edge, and counts are monotone
/// across scrapes.
#[test]
fn scrape_under_contended_writes_never_tears() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 50_000;
    const VALUE: u64 = 1000; // 10 significant bits -> bucket edge 1023

    let reg = Arc::new(MetricsRegistry::new());
    reg.declare("lat", MetricKind::Histogram, "contended histogram");
    reg.declare("ops_total", MetricKind::Counter, "contended counter");
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let reg = Arc::clone(&reg);
            let h = reg.histogram("lat");
            let c = reg.counter("ops_total");
            thread::spawn(move || {
                for _ in 0..PER_WRITER {
                    h.observe(VALUE);
                    c.inc();
                }
            })
        })
        .collect();

    let scraper = {
        let reg = Arc::clone(&reg);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut last_count = 0u64;
            let mut last_ops = 0u64;
            let mut scrapes = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let snap = reg.snapshot();
                let h = snap.histogram("lat", &[]).unwrap().clone();
                // Every observation is VALUE, so only its bucket may
                // ever appear, and count must equal the bucket total.
                for &(upper, _) in &h.buckets {
                    assert_eq!(
                        upper, 1023,
                        "foreign bucket in torn scrape: {:?}",
                        h.buckets
                    );
                }
                let bucket_total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
                assert_eq!(h.count, bucket_total);
                if h.count > 0 {
                    assert_eq!(h.p50(), 1023);
                    assert_eq!(h.p99(), 1023);
                    assert_eq!(h.max, VALUE);
                }
                assert!(h.count >= last_count, "histogram count went backwards");
                last_count = h.count;
                let ops = snap.counter("ops_total", &[]).unwrap();
                assert!(ops >= last_ops, "counter went backwards");
                last_ops = ops;
                scrapes += 1;
            }
            scrapes
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().unwrap();
    assert!(scrapes > 0);

    let final_snap = reg.snapshot();
    let h = final_snap.histogram("lat", &[]).unwrap();
    let total = WRITERS as u64 * PER_WRITER;
    assert_eq!(h.count, total);
    assert_eq!(h.sum, total * VALUE);
    assert_eq!(final_snap.counter("ops_total", &[]), Some(total));
}
