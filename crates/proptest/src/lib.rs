//! A minimal, dependency-free subset of the `proptest` API, vendored
//! in-tree so the workspace's property tests run without network access.
//!
//! Supported surface: the [`Strategy`] trait with `prop_map`, range and
//! tuple strategies, [`prop::collection::vec`] / `btree_map`,
//! [`prop::option::of`], [`any`], [`strategy::Just`], and the macros
//! `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`.
//!
//! Semantics differ from upstream proptest in one deliberate way: there
//! is **no shrinking**. A failing case panics immediately with the test
//! name and case number; since the RNG is seeded deterministically from
//! the test name, every failure reproduces exactly by re-running the
//! test. `PROPTEST_CASES` in the environment caps the case count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The deterministic RNG driving value generation (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from the test's name: deterministic across runs and
    /// platforms, distinct across tests.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, mixed into a nonzero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of one type.
///
/// Unlike upstream proptest there is no value tree: strategies generate
/// final values directly and nothing shrinks.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map {
            source: self,
            map: f,
        }
    }
}

/// Object-safe companion of [`Strategy`], used by `prop_oneof!`.
pub trait DynStrategy<T> {
    /// Generates one value.
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Per-test configuration, set via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (capped by `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The effective case count after environment caps.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::{DynStrategy, Strategy, TestRng};

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn DynStrategy<T>>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms; panics if empty.
        pub fn new(arms: Vec<Box<dyn DynStrategy<T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].dyn_new_value(rng)
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )+};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for an integer type.
#[derive(Clone, Copy, Debug)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyInt(std::marker::PhantomData)
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

/// Full-domain strategy for `bool`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> Self::Strategy {
        AnyBool
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection and option strategies, mirroring `proptest::prop`.
pub mod prop {
    /// Strategies for collections of strategy-generated elements.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::collections::BTreeMap;

        /// An inclusive size window for generated collections.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
            }
        }

        /// Strategy for `Vec<S::Value>` with a size in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// The result of [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// Strategy for `BTreeMap<K, V>` with *up to* `size` entries
        /// (duplicate keys collapse, exactly as in upstream proptest).
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            BTreeMapStrategy {
                key,
                value,
                size: size.into(),
            }
        }

        /// The result of [`btree_map`].
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: SizeRange,
        }

        impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            type Value = BTreeMap<K::Value, V::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n)
                    .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
                    .collect()
            }
        }
    }

    /// Strategies for optional values.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Generates `Some` three times out of four, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// The result of [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                if rng.below(4) < 3 {
                    Some(self.inner.new_value(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::DynStrategy<_>>,)+
        ])
    };
}

/// Defines a function returning a composed strategy, mirroring
/// proptest's `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $vis:vis fn $name:ident($($outer:tt)*)
            ($($arg:ident in $strat:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Defines property tests: each runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@items ($cfg); $($rest)*);
    };
    (@items ($cfg:expr);) => {};
    (
        @items ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let strat = ($($strat,)+);
            for case in 0..config.effective_cases() {
                let _ = case;
                let ($($arg,)+) = $crate::Strategy::new_value(&strat, &mut rng);
                $body
            }
        }
        $crate::proptest!(@items ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> impl Strategy<Value = u8> {
        prop_oneof![Just(1u8), 2u8..5, (10u8..12).prop_map(|x| x + 1)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u8..=4, f in 0.25f64..0.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..0.5).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u32..100, 2..6),
            m in prop::collection::btree_map(0u8..50, any::<bool>(), 0..8),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(m.len() < 8);
        }

        #[test]
        fn oneof_hits_every_arm_domain(x in arb_small()) {
            prop_assert!(x == 1 || (2..5).contains(&x) || (11..13).contains(&x));
        }

        #[test]
        fn options_are_mixed(xs in prop::collection::vec(prop::option::of(0u32..10), 40..41)) {
            prop_assert!(xs.iter().any(|x| x.is_some()));
            prop_assert!(xs.iter().any(|x| x.is_none()));
        }
    }

    prop_compose! {
        fn arb_pair(offset: u32)(a in 0u32..10, b in any::<bool>()) -> (u32, bool) {
            (a + offset, b)
        }
    }

    proptest! {
        #[test]
        fn compose_applies_outer_args(p in arb_pair(100)) {
            prop_assert!((100..110).contains(&p.0));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
