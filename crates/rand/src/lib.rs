//! A minimal, dependency-free subset of the `rand` crate API, vendored
//! in-tree so the workspace builds without network access.
//!
//! Only what the simulator actually uses is provided: a deterministic
//! seedable PRNG ([`rngs::StdRng`], xoshiro256** seeded via splitmix64)
//! and the [`Rng`] helpers `gen_range` / `gen_bool`. Determinism across
//! runs and platforms is the one property the simulator depends on; the
//! statistical quality of xoshiro256** is more than adequate for
//! latency jitter and workload generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A PRNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 high-quality mantissa bits → uniform in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly, producing `T`.
///
/// The sample type is a trait *parameter* (not an associated type), and
/// [`SampleRange`] has one blanket impl per range shape over
/// [`SampleUniform`] element types — the same structure as upstream
/// `rand`, which is what lets the expected result type drive inference
/// of the range's integer literals.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<G: RngCore>(rng: &mut G, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Uniform integer in `[0, span)` by multiply-shift; bias is far below
/// anything observable at simulator scales and the result is fully
/// deterministic, which is what matters here.
fn uniform_below<G: RngCore>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore>(rng: &mut G, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as u64)
                    .wrapping_sub(lo as u64)
                    .wrapping_add(inclusive as u64);
                if span == 0 {
                    // Inclusive over the full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_between<G: RngCore>(rng: &mut G, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        let f = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + f * (hi - lo)
    }
}

/// Concrete PRNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256**,
    /// state-seeded with splitmix64 (the construction recommended by the
    /// xoshiro authors).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "suspicious bias: {heads}");
    }
}
