//! The discrete-event simulation engine.
//!
//! [`Simulation`] owns the topology, the per-router control planes, the
//! live data plane, and the event queue. Scenario code schedules external
//! stimuli (announcements, config changes, link failures); the engine
//! processes them, captures every control-plane I/O with realistic
//! timestamps, and applies FIB updates to the live data plane — unless a
//! *FIB gate* (the verifier's interposition point, Fig. 3) blocks them.

use crate::io::{EventId, IoEvent, IoKind, Proto, Trace};
use crate::latency::{CaptureProfile, LatencyProfile};
use crate::router::{IgpMsg, IgpTableView, RouterConfig, SimRouter};
use crate::sink::EventSink;
use cpvr_bgp::{BgpOutputs, BgpUpdate, ConfigChange, PeerRef};
use cpvr_dataplane::{DataPlane, FibAction, FibUpdate, UpdateKind};
use cpvr_igp::IgpOutputs;
use cpvr_topo::{ExtPeerId, LinkId, LinkState, Topology};
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;

/// Decides whether a FIB update may reach the hardware. Returning `false`
/// blocks it: the control plane believes the update happened, the data
/// plane stays stale — the exact inconsistency the paper's Fig. 2b warns
/// naive blocking causes.
pub type FibGate = Box<dyn FnMut(&FibUpdate) -> bool>;

/// An event scheduled for execution.
struct Scheduled {
    at: SimTime,
    seq: u64,
    ev: SimEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reversed: BinaryHeap becomes a min-heap on (at, seq).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

enum SimEvent {
    /// An IGP message arrives.
    DeliverIgp {
        from: RouterId,
        to: RouterId,
        msg: IgpMsg,
        causes: Vec<EventId>,
    },
    /// A BGP update arrives. Cause ids align with the update's announce /
    /// withdraw vectors (None = external origin, outside the capture
    /// domain).
    DeliverBgp {
        from: PeerRef,
        to: RouterId,
        update: BgpUpdate,
        announce_causes: Vec<Option<EventId>>,
        withdraw_causes: Vec<Option<EventId>>,
    },
    /// An operator enters a configuration change (e.g. on the console).
    ConfigEntered {
        router: RouterId,
        change: ConfigChange,
    },
    /// The control plane begins applying a previously entered change
    /// (soft reconfiguration).
    ApplyConfig {
        router: RouterId,
        change: ConfigChange,
        cause: Option<EventId>,
    },
    /// An internal link changes state.
    LinkChange { link: LinkId, up: bool },
    /// An external peer attachment (uplink) changes state.
    ExtPeerChange { peer: ExtPeerId, up: bool },
    /// A FIB update reaches the hardware (or the gate).
    FibApply { update: FibUpdate },
}

/// The simulation: see the module docs.
pub struct Simulation {
    topo: Topology,
    routers: Vec<SimRouter>,
    dataplane: DataPlane,
    queue: BinaryHeap<Scheduled>,
    seq: u64,
    time: SimTime,
    rng: StdRng,
    latency: LatencyProfile,
    capture: CaptureProfile,
    trace: Trace,
    fib_gate: Option<FibGate>,
    blocked: Vec<FibUpdate>,
    sink: Option<Box<dyn EventSink>>,
}

impl Simulation {
    /// Builds a simulation. `configs[i]` configures router `i`; the
    /// vector's length must equal the topology's router count.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree.
    pub fn new(
        topo: Topology,
        configs: Vec<RouterConfig>,
        latency: LatencyProfile,
        capture: CaptureProfile,
        seed: u64,
    ) -> Self {
        assert_eq!(topo.num_routers(), configs.len(), "one config per router");
        let n = topo.num_routers();
        let routers = configs.iter().map(SimRouter::new).collect();
        Simulation {
            topo,
            routers,
            dataplane: DataPlane::new(n),
            queue: BinaryHeap::new(),
            seq: 0,
            time: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            latency,
            capture,
            trace: Trace::default(),
            fib_gate: None,
            blocked: Vec::new(),
            sink: None,
        }
    }

    /// Installs a sink that observes every subsequently captured event
    /// (replacing any previous sink). Events already in the trace are not
    /// replayed; seed the consumer from [`trace`](Self::trace) first if
    /// it needs history. Any `FnMut(&IoEvent)` closure is a valid sink.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Removes the event sink, if any, and returns it (flushed).
    pub fn clear_event_sink(&mut self) -> Option<Box<dyn EventSink>> {
        let mut sink = self.sink.take();
        if let Some(s) = &mut sink {
            s.flush();
        }
        sink
    }

    // ---- accessors ------------------------------------------------------

    /// The topology (including current link state).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The live (hardware) data plane.
    pub fn dataplane(&self) -> &DataPlane {
        &self.dataplane
    }

    /// The captured trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// One router's control plane, for inspection.
    pub fn router(&self, r: RouterId) -> &SimRouter {
        &self.routers[r.index()]
    }

    /// FIB updates the gate blocked, in order.
    pub fn blocked_updates(&self) -> &[FibUpdate] {
        &self.blocked
    }

    /// Installs a FIB gate (the verifier's interposition point). Replaces
    /// any existing gate.
    pub fn set_fib_gate(&mut self, gate: FibGate) {
        self.fib_gate = Some(gate);
    }

    /// Removes the FIB gate.
    pub fn clear_fib_gate(&mut self) {
        self.fib_gate = None;
    }

    // ---- scheduling -----------------------------------------------------

    fn push(&mut self, at: SimTime, ev: SimEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, ev });
    }

    /// Boots every router's IGP at the current time. Each boot is rooted
    /// at a synthetic "igp start" config input so that all subsequent
    /// events have ancestors.
    pub fn start(&mut self) {
        let now = self.time;
        for r in 0..self.routers.len() {
            let rid = RouterId(r as u32);
            let root = self.emit(
                rid,
                now,
                IoKind::ConfigChange {
                    desc: format!("start {} instance", self.routers[r].igp.proto()),
                    change: None,
                    inverse: None,
                },
                &[],
            );
            let out = self.routers[r].igp.start(&self.topo);
            self.process_igp_outputs(rid, now, out, vec![root]);
        }
    }

    /// Schedules a configuration change entered at `at`.
    pub fn schedule_config(&mut self, at: SimTime, router: RouterId, change: ConfigChange) {
        self.push(at, SimEvent::ConfigEntered { router, change });
    }

    /// Schedules an external peer announcing `prefixes` at `at`.
    pub fn schedule_ext_announce(&mut self, at: SimTime, peer: ExtPeerId, prefixes: &[Ipv4Prefix]) {
        let p = self.topo.ext_peer(peer);
        let (router, _) = p.attach;
        let asn = p.asn;
        let announce: Vec<_> = prefixes
            .iter()
            .map(|px| cpvr_bgp::BgpRoute::external(*px, peer, asn, router))
            .collect();
        let n = announce.len();
        let prop = self.latency.link_prop.sample(&mut self.rng);
        self.push(
            at + prop,
            SimEvent::DeliverBgp {
                from: PeerRef::External(peer),
                to: router,
                update: BgpUpdate {
                    announce,
                    withdraw: vec![],
                },
                announce_causes: vec![None; n],
                withdraw_causes: vec![],
            },
        );
    }

    /// Schedules an external peer withdrawing `prefixes` at `at`.
    pub fn schedule_ext_withdraw(&mut self, at: SimTime, peer: ExtPeerId, prefixes: &[Ipv4Prefix]) {
        let p = self.topo.ext_peer(peer);
        let (router, _) = p.attach;
        let withdraw: Vec<_> = prefixes.iter().map(|px| (*px, None)).collect();
        let n = withdraw.len();
        let prop = self.latency.link_prop.sample(&mut self.rng);
        self.push(
            at + prop,
            SimEvent::DeliverBgp {
                from: PeerRef::External(peer),
                to: router,
                update: BgpUpdate {
                    announce: vec![],
                    withdraw,
                },
                announce_causes: vec![],
                withdraw_causes: vec![None; n],
            },
        );
    }

    /// Schedules an internal link state change.
    pub fn schedule_link_change(&mut self, at: SimTime, link: LinkId, up: bool) {
        self.push(at, SimEvent::LinkChange { link, up });
    }

    /// Schedules an uplink (external peer attachment) state change.
    pub fn schedule_ext_peer_change(&mut self, at: SimTime, peer: ExtPeerId, up: bool) {
        self.push(at, SimEvent::ExtPeerChange { peer, up });
    }

    // ---- running --------------------------------------------------------

    /// Processes events until the queue is empty or `max_events` have been
    /// handled. Returns the number processed.
    pub fn run_to_quiescence(&mut self, max_events: usize) -> usize {
        let mut n = 0;
        while n < max_events {
            let Some(s) = self.queue.pop() else { break };
            self.time = s.at;
            self.dispatch(s.ev, s.at);
            n += 1;
        }
        n
    }

    /// Processes all events scheduled at or before `t`, then advances the
    /// clock to `t`.
    pub fn run_until(&mut self, t: SimTime) -> usize {
        let mut n = 0;
        while let Some(head) = self.queue.peek() {
            if head.at > t {
                break;
            }
            let s = self.queue.pop().expect("peeked");
            self.time = s.at;
            self.dispatch(s.ev, s.at);
            n += 1;
        }
        self.time = t;
        n
    }

    /// True if no events remain.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    // ---- internals ------------------------------------------------------

    /// Captures one I/O event and its truth edges; returns the new id.
    fn emit(
        &mut self,
        router: RouterId,
        time: SimTime,
        kind: IoKind,
        parents: &[EventId],
    ) -> EventId {
        let id = EventId(self.trace.events.len() as u32);
        let arrived_at = self.capture.sample(time, &mut self.rng);
        self.trace.events.push(IoEvent {
            id,
            router,
            time,
            arrived_at,
            kind,
        });
        if let Some(sink) = &mut self.sink {
            sink.on_event(self.trace.events.last().expect("just pushed"));
        }
        for p in parents {
            self.trace.truth_edges.push((*p, id));
        }
        id
    }

    fn dispatch(&mut self, ev: SimEvent, t: SimTime) {
        match ev {
            SimEvent::DeliverIgp {
                from,
                to,
                msg,
                causes,
            } => {
                let proto = self.routers[to.index()].igp.proto();
                let mut recv_ids = Vec::new();
                for (prefix, is_withdraw) in msg.captured_prefixes() {
                    let kind = if is_withdraw {
                        IoKind::RecvWithdraw {
                            proto,
                            prefix,
                            from: Some(PeerRef::Internal(from)),
                        }
                    } else {
                        IoKind::RecvAdvert {
                            proto,
                            prefix,
                            from: Some(PeerRef::Internal(from)),
                            route: None,
                        }
                    };
                    recv_ids.push(self.emit(to, t, kind, &causes));
                }
                let out = self.routers[to.index()].igp.recv(&self.topo, from, msg);
                self.process_igp_outputs(to, t, out, recv_ids);
            }
            SimEvent::DeliverBgp {
                from,
                to,
                update,
                announce_causes,
                withdraw_causes,
            } => {
                // Emit recv events, tracking parents per prefix.
                let mut parents: BTreeMap<Ipv4Prefix, Vec<EventId>> = BTreeMap::new();
                for (i, (prefix, _orig)) in update.withdraw.iter().enumerate() {
                    let cause = withdraw_causes.get(i).copied().flatten();
                    let id = self.emit(
                        to,
                        t,
                        IoKind::RecvWithdraw {
                            proto: Proto::Bgp,
                            prefix: Some(*prefix),
                            from: Some(from),
                        },
                        cause.as_slice(),
                    );
                    parents.entry(*prefix).or_default().push(id);
                }
                for (i, route) in update.announce.iter().enumerate() {
                    let cause = announce_causes.get(i).copied().flatten();
                    let id = self.emit(
                        to,
                        t,
                        IoKind::RecvAdvert {
                            proto: Proto::Bgp,
                            prefix: Some(route.prefix),
                            from: Some(from),
                            route: Some(route.clone()),
                        },
                        cause.as_slice(),
                    );
                    parents.entry(route.prefix).or_default().push(id);
                }
                let out = {
                    let router = &mut self.routers[to.index()];
                    let view = IgpTableView::new(router.igp.table(), &self.topo);
                    router.bgp.recv_update(from, update, &view)
                };
                self.process_bgp_outputs(to, t, out, &parents, &[]);
            }
            SimEvent::ConfigEntered { router, change } => {
                // Compute the inverse against the configuration currently
                // in force (the "version system" the paper leans on).
                let inverse = change.inverse(self.routers[router.index()].bgp.config());
                let id = self.emit(
                    router,
                    t,
                    IoKind::ConfigChange {
                        desc: change.to_string(),
                        change: Some(change.clone()),
                        inverse,
                    },
                    &[],
                );
                let delay = self.latency.config_apply.sample(&mut self.rng);
                self.push(
                    t + delay,
                    SimEvent::ApplyConfig {
                        router,
                        change,
                        cause: Some(id),
                    },
                );
            }
            SimEvent::ApplyConfig {
                router,
                change,
                cause,
            } => {
                let soft = self.emit(
                    router,
                    t,
                    IoKind::SoftReconfig {
                        desc: change.to_string(),
                    },
                    cause.as_slice(),
                );
                let out = {
                    let r = &mut self.routers[router.index()];
                    let view = IgpTableView::new(r.igp.table(), &self.topo);
                    r.bgp.apply_config(&change, &view)
                };
                self.process_bgp_outputs(router, t, out, &BTreeMap::new(), &[soft]);
            }
            SimEvent::LinkChange { link, up } => {
                let state = if up { LinkState::Up } else { LinkState::Down };
                self.topo.set_link_state(link, state);
                let l = self.topo.link(link);
                let ends = [l.a.0, l.b.0];
                for r in ends {
                    let notify = self.latency.link_notify.sample(&mut self.rng);
                    let t_n = t + notify;
                    let id = self.emit(
                        r,
                        t_n,
                        IoKind::LinkStatus {
                            desc: format!("{link} {}", if up { "up" } else { "down" }),
                            up,
                            link: Some(link),
                            peer: None,
                        },
                        &[],
                    );
                    let out = self.routers[r.index()].igp.link_change(&self.topo);
                    self.process_igp_outputs(r, t_n, out, vec![id]);
                }
            }
            SimEvent::ExtPeerChange { peer, up } => {
                let state = if up { LinkState::Up } else { LinkState::Down };
                self.topo.set_ext_peer_state(peer, state);
                let (router, _) = self.topo.ext_peer(peer).attach;
                let notify = self.latency.link_notify.sample(&mut self.rng);
                let t_n = t + notify;
                let id = self.emit(
                    router,
                    t_n,
                    IoKind::LinkStatus {
                        desc: format!("{peer} {}", if up { "up" } else { "down" }),
                        up,
                        link: None,
                        peer: Some(peer),
                    },
                    &[],
                );
                if !up {
                    let out = {
                        let r = &mut self.routers[router.index()];
                        let view = IgpTableView::new(r.igp.table(), &self.topo);
                        r.bgp.peer_down(PeerRef::External(peer), &view)
                    };
                    self.process_bgp_outputs(router, t_n, out, &BTreeMap::new(), &[id]);
                }
            }
            SimEvent::FibApply { update } => {
                let allowed = match self.fib_gate.as_mut() {
                    Some(gate) => gate(&update),
                    None => true,
                };
                if allowed {
                    self.dataplane.apply(&update);
                } else {
                    self.blocked.push(update);
                }
            }
        }
    }

    /// Emits RIB / FIB / send events for one router's IGP outputs and
    /// schedules the consequences. `parents` are the causes of this whole
    /// batch (e.g. the recv or link-status events).
    fn process_igp_outputs(
        &mut self,
        router: RouterId,
        t: SimTime,
        out: IgpOutputs<IgpMsg>,
        parents: Vec<EventId>,
    ) {
        let proto = self.routers[router.index()].igp.proto();
        let after_fib = self.routers[router.index()].igp.adverts_after_fib();
        let t_rib = t + self.latency.decision.sample(&mut self.rng);
        let mut rib_ids: BTreeMap<Ipv4Prefix, EventId> = BTreeMap::new();
        let mut fib_ids: BTreeMap<Ipv4Prefix, EventId> = BTreeMap::new();
        let mut t_fib_max = t_rib;
        let had_deltas = !out.deltas.is_empty();
        for d in &out.deltas {
            let kind = match d.route {
                Some(_) => IoKind::RibInstall {
                    proto,
                    prefix: d.prefix,
                    route: None,
                },
                None => IoKind::RibRemove {
                    proto,
                    prefix: d.prefix,
                },
            };
            let id = self.emit(router, t_rib, kind, &parents);
            rib_ids.insert(d.prefix, id);
            // IGP routes are installed in the FIB too.
            let t_fib = t_rib + self.latency.fib_install.sample(&mut self.rng);
            t_fib_max = t_fib_max.max(t_fib);
            let (kind, action) = match d.route {
                Some(r) => {
                    let action = match r.next_hop {
                        None => FibAction::Local,
                        Some((_, link)) => FibAction::Forward(link),
                    };
                    (
                        IoKind::FibInstall {
                            prefix: d.prefix,
                            action,
                        },
                        Some(action),
                    )
                }
                None => (IoKind::FibRemove { prefix: d.prefix }, None),
            };
            let fid = self.emit(router, t_fib, kind, &[id]);
            fib_ids.insert(d.prefix, fid);
            let update = FibUpdate {
                router,
                prefix: d.prefix,
                kind: if action.is_some() {
                    UpdateKind::Install
                } else {
                    UpdateKind::Remove
                },
                action: action.unwrap_or(FibAction::Drop),
                at: t_fib,
            };
            self.push(t_fib, SimEvent::FibApply { update });
        }
        // Messages. EIGRP advertises only after the FIB install (§4.1).
        let send_base = if after_fib { t_fib_max } else { t_rib };
        for (to, msg) in out.msgs {
            let t_send = send_base + self.latency.advert_send.sample(&mut self.rng);
            let mut send_ids = Vec::new();
            for (prefix, is_withdraw) in msg.captured_prefixes() {
                // Parent: the RIB (or FIB for EIGRP) event for this
                // prefix when one exists, otherwise the batch parents.
                let own: Vec<EventId> = match prefix.and_then(|p| {
                    if after_fib {
                        fib_ids.get(&p)
                    } else {
                        rib_ids.get(&p)
                    }
                }) {
                    Some(id) => vec![*id],
                    None => parents.clone(),
                };
                let kind = if is_withdraw {
                    IoKind::SendWithdraw {
                        proto,
                        prefix,
                        to: Some(PeerRef::Internal(to)),
                    }
                } else {
                    IoKind::SendAdvert {
                        proto,
                        prefix,
                        to: Some(PeerRef::Internal(to)),
                        route: None,
                    }
                };
                send_ids.push(self.emit(router, t_send, kind, &own));
            }
            let prop = self.latency.link_prop.sample(&mut self.rng);
            self.push(
                t_send + prop,
                SimEvent::DeliverIgp {
                    from: router,
                    to,
                    msg,
                    causes: send_ids,
                },
            );
        }
        // IGP table changed → BGP must re-resolve next hops.
        if had_deltas {
            let out = {
                let r = &mut self.routers[router.index()];
                let view = IgpTableView::new(r.igp.table(), &self.topo);
                r.bgp.igp_changed(&view)
            };
            if !out.is_empty() {
                let rib_parents: Vec<EventId> = rib_ids.values().copied().collect();
                self.process_bgp_outputs(router, t_rib, out, &BTreeMap::new(), &rib_parents);
            }
        }
    }

    /// Emits RIB / FIB / send events for one router's BGP outputs and
    /// schedules message deliveries. Parents for a prefix come from
    /// `parents_by_prefix`, falling back to `default_parents`.
    fn process_bgp_outputs(
        &mut self,
        router: RouterId,
        t: SimTime,
        out: BgpOutputs,
        parents_by_prefix: &BTreeMap<Ipv4Prefix, Vec<EventId>>,
        default_parents: &[EventId],
    ) {
        let lookup = |prefix: Ipv4Prefix,
                      parents_by_prefix: &BTreeMap<Ipv4Prefix, Vec<EventId>>|
         -> Vec<EventId> {
            parents_by_prefix
                .get(&prefix)
                .cloned()
                .unwrap_or_else(|| default_parents.to_vec())
        };
        let t_rib = t + self.latency.decision.sample(&mut self.rng);
        let mut rib_ids: BTreeMap<Ipv4Prefix, EventId> = BTreeMap::new();
        for c in &out.rib_changes {
            let parents = lookup(c.prefix, parents_by_prefix);
            let kind = match &c.route {
                Some(r) => IoKind::RibInstall {
                    proto: Proto::Bgp,
                    prefix: c.prefix,
                    route: Some(r.clone()),
                },
                None => IoKind::RibRemove {
                    proto: Proto::Bgp,
                    prefix: c.prefix,
                },
            };
            let id = self.emit(router, t_rib, kind, &parents);
            rib_ids.insert(c.prefix, id);
        }
        for c in &out.fib_changes {
            let t_fib = t_rib + self.latency.fib_install.sample(&mut self.rng);
            let parents: Vec<EventId> = match rib_ids.get(&c.prefix) {
                Some(id) => vec![*id],
                None => lookup(c.prefix, parents_by_prefix),
            };
            let kind = match c.action {
                Some(a) => IoKind::FibInstall {
                    prefix: c.prefix,
                    action: a,
                },
                None => IoKind::FibRemove { prefix: c.prefix },
            };
            let _fid = self.emit(router, t_fib, kind, &parents);
            let update = FibUpdate {
                router,
                prefix: c.prefix,
                kind: if c.action.is_some() {
                    UpdateKind::Install
                } else {
                    UpdateKind::Remove
                },
                action: c.action.unwrap_or(FibAction::Drop),
                at: t_fib,
            };
            self.push(t_fib, SimEvent::FibApply { update });
        }
        // BGP advertises after the RIB install ([R install P in BGP RIB] →
        // [R send BGP advertisement for P], §4.1).
        for (peer, update) in out.msgs {
            let t_send = t_rib + self.latency.advert_send.sample(&mut self.rng);
            let mut withdraw_causes: Vec<Option<EventId>> = Vec::new();
            for (prefix, _orig) in &update.withdraw {
                let parents: Vec<EventId> = match rib_ids.get(prefix) {
                    Some(id) => vec![*id],
                    None => lookup(*prefix, parents_by_prefix),
                };
                let id = self.emit(
                    router,
                    t_send,
                    IoKind::SendWithdraw {
                        proto: Proto::Bgp,
                        prefix: Some(*prefix),
                        to: Some(peer),
                    },
                    &parents,
                );
                withdraw_causes.push(Some(id));
            }
            let mut announce_causes: Vec<Option<EventId>> = Vec::new();
            for route in &update.announce {
                let parents: Vec<EventId> = match rib_ids.get(&route.prefix) {
                    Some(id) => vec![*id],
                    None => lookup(route.prefix, parents_by_prefix),
                };
                let id = self.emit(
                    router,
                    t_send,
                    IoKind::SendAdvert {
                        proto: Proto::Bgp,
                        prefix: Some(route.prefix),
                        to: Some(peer),
                        route: Some(route.clone()),
                    },
                    &parents,
                );
                announce_causes.push(Some(id));
            }
            if let PeerRef::Internal(to) = peer {
                let prop = self.latency.link_prop.sample(&mut self.rng);
                self.push(
                    t_send + prop,
                    SimEvent::DeliverBgp {
                        from: PeerRef::Internal(router),
                        to,
                        update,
                        announce_causes,
                        withdraw_causes,
                    },
                );
            }
        }
    }
}
