//! Captured control-plane I/O events and traces.
//!
//! An [`IoEvent`] is one line of the (idealized) router log: a control
//! plane input or output, stamped with the router's local time and with
//! the time the record reached the central verifier. A [`Trace`] is the
//! full capture of a simulation run plus the simulator's ground-truth
//! dependency edges.

use cpvr_bgp::{BgpRoute, PeerRef};
use cpvr_dataplane::{DataPlane, FibAction, FibUpdate, UpdateKind};
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use std::fmt;

/// Index of an event in its [`Trace`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// The id as a `usize` for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Which protocol an event belongs to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Proto {
    /// Border Gateway Protocol.
    Bgp,
    /// OSPF-lite link-state IGP.
    Ospf,
    /// RIP distance-vector IGP.
    Rip,
    /// EIGRP-lite DUAL IGP.
    Eigrp,
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proto::Bgp => write!(f, "BGP"),
            Proto::Ospf => write!(f, "OSPF"),
            Proto::Rip => write!(f, "RIP"),
            Proto::Eigrp => write!(f, "EIGRP"),
        }
    }
}

/// The I/O classes of the paper's §4.1.
///
/// Inputs: [`ConfigChange`](IoKind::ConfigChange),
/// [`LinkStatus`](IoKind::LinkStatus), [`RecvAdvert`](IoKind::RecvAdvert),
/// [`RecvWithdraw`](IoKind::RecvWithdraw).
/// Outputs: [`RibInstall`](IoKind::RibInstall) /
/// [`RibRemove`](IoKind::RibRemove), [`FibInstall`](IoKind::FibInstall) /
/// [`FibRemove`](IoKind::FibRemove), [`SendAdvert`](IoKind::SendAdvert),
/// [`SendWithdraw`](IoKind::SendWithdraw). [`SoftReconfig`] is the
/// processing marker the paper's Fig. 5 shows between a TTY config change
/// and the routes it produces.
///
/// [`SoftReconfig`]: IoKind::SoftReconfig
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoKind {
    /// Input: a configuration change was entered (e.g. on the console).
    ConfigChange {
        /// Human-readable description, e.g. `"set import[Ext1] LP=10"`.
        desc: String,
        /// The structured change, when it targets BGP (repair needs it to
        /// compute the inverse). Synthetic roots (e.g. protocol start)
        /// carry `None`.
        change: Option<cpvr_bgp::ConfigChange>,
        /// The inverse change, computed against the configuration in
        /// force when the change was entered — the capture-side analogue
        /// of the configuration version system the paper's §7 says makes
        /// rollback easy.
        inverse: Option<cpvr_bgp::ConfigChange>,
    },
    /// Marker: the control plane began applying a configuration change
    /// (BGP soft reconfiguration — re-running the decision process over
    /// stored routes).
    SoftReconfig {
        /// Description of what is being recomputed.
        desc: String,
    },
    /// Input: a hardware status change (link or uplink up/down).
    LinkStatus {
        /// What changed, e.g. `"L2 down"` or `"Ext1 up"`.
        desc: String,
        /// New state.
        up: bool,
        /// The internal link, when the change concerns one.
        link: Option<cpvr_topo::LinkId>,
        /// The external peer attachment, when the change concerns one.
        peer: Option<cpvr_topo::ExtPeerId>,
    },
    /// Input: a route advertisement arrived.
    RecvAdvert {
        /// Protocol.
        proto: Proto,
        /// The advertised prefix, when the protocol message is
        /// per-prefix (BGP, RIP, EIGRP). OSPF LSAs carry `None`.
        prefix: Option<Ipv4Prefix>,
        /// Sending peer, if identifiable.
        from: Option<PeerRef>,
        /// The BGP route carried, for BGP advertisements.
        route: Option<BgpRoute>,
    },
    /// Input: a route withdrawal arrived.
    RecvWithdraw {
        /// Protocol.
        proto: Proto,
        /// The withdrawn prefix.
        prefix: Option<Ipv4Prefix>,
        /// Sending peer, if identifiable.
        from: Option<PeerRef>,
    },
    /// Output: a route was installed or replaced in a protocol RIB.
    RibInstall {
        /// Protocol.
        proto: Proto,
        /// The prefix.
        prefix: Ipv4Prefix,
        /// The BGP route installed, for BGP RIB events.
        route: Option<BgpRoute>,
    },
    /// Output: a route left a protocol RIB.
    RibRemove {
        /// Protocol.
        proto: Proto,
        /// The prefix.
        prefix: Ipv4Prefix,
    },
    /// Output: a FIB entry was installed or replaced.
    FibInstall {
        /// The prefix.
        prefix: Ipv4Prefix,
        /// The forwarding action.
        action: FibAction,
    },
    /// Output: a FIB entry was removed.
    FibRemove {
        /// The prefix.
        prefix: Ipv4Prefix,
    },
    /// Output: a route advertisement was sent.
    SendAdvert {
        /// Protocol.
        proto: Proto,
        /// The advertised prefix (see [`IoKind::RecvAdvert`]).
        prefix: Option<Ipv4Prefix>,
        /// Destination peer.
        to: Option<PeerRef>,
        /// The BGP route carried, for BGP advertisements.
        route: Option<BgpRoute>,
    },
    /// Output: a route withdrawal was sent.
    SendWithdraw {
        /// Protocol.
        proto: Proto,
        /// The withdrawn prefix.
        prefix: Option<Ipv4Prefix>,
        /// Destination peer.
        to: Option<PeerRef>,
    },
}

impl IoKind {
    /// True for control-plane inputs (configs, hardware, received
    /// routes).
    pub fn is_input(&self) -> bool {
        matches!(
            self,
            IoKind::ConfigChange { .. }
                | IoKind::LinkStatus { .. }
                | IoKind::RecvAdvert { .. }
                | IoKind::RecvWithdraw { .. }
        )
    }

    /// The prefix the event concerns, if any.
    pub fn prefix(&self) -> Option<Ipv4Prefix> {
        match self {
            IoKind::RecvAdvert { prefix, .. }
            | IoKind::RecvWithdraw { prefix, .. }
            | IoKind::SendAdvert { prefix, .. }
            | IoKind::SendWithdraw { prefix, .. } => *prefix,
            IoKind::RibInstall { prefix, .. }
            | IoKind::RibRemove { prefix, .. }
            | IoKind::FibInstall { prefix, .. }
            | IoKind::FibRemove { prefix, .. } => Some(*prefix),
            IoKind::ConfigChange { .. }
            | IoKind::SoftReconfig { .. }
            | IoKind::LinkStatus { .. } => None,
        }
    }

    /// The protocol the event belongs to, if protocol-specific.
    pub fn proto(&self) -> Option<Proto> {
        match self {
            IoKind::RecvAdvert { proto, .. }
            | IoKind::RecvWithdraw { proto, .. }
            | IoKind::SendAdvert { proto, .. }
            | IoKind::SendWithdraw { proto, .. }
            | IoKind::RibInstall { proto, .. }
            | IoKind::RibRemove { proto, .. } => Some(*proto),
            _ => None,
        }
    }

    /// Short label for display and HBG rendering.
    pub fn label(&self) -> String {
        match self {
            IoKind::ConfigChange { desc, .. } => format!("config: {desc}"),
            IoKind::SoftReconfig { desc } => format!("soft-reconfig: {desc}"),
            IoKind::LinkStatus { desc, .. } => format!("link: {desc}"),
            IoKind::RecvAdvert {
                proto,
                prefix,
                from,
                ..
            } => format!(
                "recv {proto} advert {} from {}",
                opt_pfx(prefix),
                opt_disp(from)
            ),
            IoKind::RecvWithdraw {
                proto,
                prefix,
                from,
            } => format!(
                "recv {proto} withdraw {} from {}",
                opt_pfx(prefix),
                opt_disp(from)
            ),
            IoKind::RibInstall {
                proto,
                prefix,
                route,
            } => match route {
                Some(r) => format!(
                    "install {prefix} LP={} via {} in {proto} RIB",
                    r.local_pref, r.next_hop
                ),
                None => format!("install {prefix} in {proto} RIB"),
            },
            IoKind::RibRemove { proto, prefix } => format!("remove {prefix} from {proto} RIB"),
            IoKind::FibInstall { prefix, action } => format!("install {prefix} -> {action} in FIB"),
            IoKind::FibRemove { prefix } => format!("remove {prefix} from FIB"),
            IoKind::SendAdvert {
                proto, prefix, to, ..
            } => format!(
                "send {proto} advert {} to {}",
                opt_pfx(prefix),
                opt_disp(to)
            ),
            IoKind::SendWithdraw { proto, prefix, to } => format!(
                "send {proto} withdraw {} to {}",
                opt_pfx(prefix),
                opt_disp(to)
            ),
        }
    }
}

fn opt_pfx(p: &Option<Ipv4Prefix>) -> String {
    match p {
        Some(p) => p.to_string(),
        None => "*".to_string(),
    }
}

fn opt_disp<T: fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "?".to_string(),
    }
}

/// One captured control-plane I/O.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IoEvent {
    /// Capture id (index in the trace).
    pub id: EventId,
    /// The router the event occurred on.
    pub router: RouterId,
    /// The router-local time of the event.
    pub time: SimTime,
    /// When the record reached the central verifier; `None` = the log
    /// record was lost.
    pub arrived_at: Option<SimTime>,
    /// What happened.
    pub kind: IoKind,
}

impl fmt::Display for IoEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} @{}] {} {}",
            self.id,
            self.time,
            self.router,
            self.kind.label()
        )
    }
}

/// The full capture of a run: every I/O event plus the simulator's
/// ground-truth causal edges (used only for evaluating inference, never by
/// the inference itself).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All events; `events[i].id == EventId(i)`.
    pub events: Vec<IoEvent>,
    /// Ground truth: `(cause, effect)` pairs.
    pub truth_edges: Vec<(EventId, EventId)>,
}

impl Trace {
    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events sorted by router-local time (stable: ties keep capture
    /// order).
    pub fn by_time(&self) -> Vec<&IoEvent> {
        let mut v: Vec<&IoEvent> = self.events.iter().collect();
        v.sort_by_key(|e| (e.time, e.id));
        v
    }

    /// Events of one router, in capture order.
    pub fn of_router(&self, r: RouterId) -> Vec<&IoEvent> {
        self.events.iter().filter(|e| e.router == r).collect()
    }

    /// Effective capture arrival times under per-router FIFO export: a
    /// router ships its log records in local-time order (syslog over a
    /// stream), so a record cannot arrive before any earlier record of
    /// the same router. Computed as a per-router running maximum over the
    /// raw sampled arrivals; lost records stay lost.
    pub fn effective_arrivals(&self) -> Vec<Option<SimTime>> {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| (self.events[i].time, self.events[i].id));
        let mut high: std::collections::BTreeMap<cpvr_types::RouterId, SimTime> =
            std::collections::BTreeMap::new();
        let mut out = vec![None; self.events.len()];
        for i in order {
            let e = &self.events[i];
            if let Some(a) = e.arrived_at {
                let eff = match high.get(&e.router) {
                    Some(h) => a.max(*h),
                    None => a,
                };
                high.insert(e.router, eff);
                out[i] = Some(eff);
            }
        }
        out
    }

    /// Events whose record had *arrived at the verifier* by `t` (under
    /// the FIFO export model of [`effective_arrivals`](Self::effective_arrivals)),
    /// i.e. the verifier's view of the network at wall-clock `t`.
    pub fn arrived_by(&self, t: SimTime) -> Vec<&IoEvent> {
        let eff = self.effective_arrivals();
        self.events
            .iter()
            .filter(|e| matches!(eff[e.id.index()], Some(a) if a <= t))
            .collect()
    }

    /// Reconstructs the FIB-only data-plane state as seen by applying, for
    /// each router `r`, the FIB events with `time <= cutoffs[r]`. This is
    /// how a (possibly skewed) distributed snapshot is assembled.
    ///
    /// # Panics
    ///
    /// Panics if `cutoffs.len()` is smaller than the largest router index
    /// in the trace.
    pub fn fib_snapshot(&self, cutoffs: &[SimTime]) -> DataPlane {
        let mut dp = DataPlane::new(cutoffs.len());
        for (r, t) in cutoffs.iter().enumerate() {
            dp.set_taken_at(RouterId(r as u32), *t);
        }
        for e in self.by_time() {
            let cutoff = cutoffs[e.router.index()];
            if e.time > cutoff {
                continue;
            }
            match &e.kind {
                IoKind::FibInstall { prefix, action } => {
                    dp.apply(&FibUpdate {
                        router: e.router,
                        prefix: *prefix,
                        kind: UpdateKind::Install,
                        action: *action,
                        at: e.time,
                    });
                }
                IoKind::FibRemove { prefix } => {
                    dp.apply(&FibUpdate {
                        router: e.router,
                        prefix: *prefix,
                        kind: UpdateKind::Remove,
                        // Action is irrelevant for removals.
                        action: FibAction::Drop,
                        at: e.time,
                    });
                }
                _ => {}
            }
        }
        dp
    }

    /// A uniform snapshot: every router cut at the same instant.
    pub fn fib_snapshot_at(&self, n_routers: usize, t: SimTime) -> DataPlane {
        self.fib_snapshot(&vec![t; n_routers])
    }

    /// The ground-truth ancestors of `e` (transitive closure over
    /// `truth_edges`).
    pub fn truth_ancestors(&self, e: EventId) -> Vec<EventId> {
        let mut seen = vec![false; self.events.len()];
        let mut stack = vec![e];
        let mut out = Vec::new();
        while let Some(cur) = stack.pop() {
            for (a, b) in &self.truth_edges {
                if *b == cur && !seen[a.index()] {
                    seen[a.index()] = true;
                    out.push(*a);
                    stack.push(*a);
                }
            }
        }
        out.sort();
        out
    }

    /// A summary of the trace: `(class label, count)` per event class,
    /// in a stable order — handy for reports and sanity checks.
    pub fn stats(&self) -> Vec<(&'static str, usize)> {
        let mut counts = [0usize; 9];
        for e in &self.events {
            let idx = match &e.kind {
                IoKind::ConfigChange { .. } => 0,
                IoKind::SoftReconfig { .. } => 1,
                IoKind::LinkStatus { .. } => 2,
                IoKind::RecvAdvert { .. } => 3,
                IoKind::RecvWithdraw { .. } => 4,
                IoKind::RibInstall { .. } | IoKind::RibRemove { .. } => 5,
                IoKind::FibInstall { .. } | IoKind::FibRemove { .. } => 6,
                IoKind::SendAdvert { .. } => 7,
                IoKind::SendWithdraw { .. } => 8,
            };
            counts[idx] += 1;
        }
        const LABELS: [&str; 9] = [
            "config",
            "soft-reconfig",
            "link-status",
            "recv-advert",
            "recv-withdraw",
            "rib",
            "fib",
            "send-advert",
            "send-withdraw",
        ];
        LABELS.iter().copied().zip(counts).collect()
    }

    /// Renders the trace as a human-readable log.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in self.by_time() {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_topo::LinkId;

    fn pfx(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn ev(id: u32, router: u32, t_ms: u64, kind: IoKind) -> IoEvent {
        IoEvent {
            id: EventId(id),
            router: RouterId(router),
            time: SimTime::from_millis(t_ms),
            arrived_at: Some(SimTime::from_millis(t_ms + 1)),
            kind,
        }
    }

    #[test]
    fn kind_classification() {
        assert!(IoKind::ConfigChange {
            desc: "x".into(),
            change: None,
            inverse: None
        }
        .is_input());
        assert!(!IoKind::FibRemove {
            prefix: pfx("8.8.8.0/24")
        }
        .is_input());
        assert_eq!(
            IoKind::FibRemove {
                prefix: pfx("8.8.8.0/24")
            }
            .prefix(),
            Some(pfx("8.8.8.0/24"))
        );
        assert_eq!(IoKind::SoftReconfig { desc: "x".into() }.prefix(), None);
        assert_eq!(
            IoKind::RibRemove {
                proto: Proto::Bgp,
                prefix: pfx("8.8.8.0/24")
            }
            .proto(),
            Some(Proto::Bgp)
        );
    }

    #[test]
    fn trace_time_ordering() {
        let mut tr = Trace::default();
        tr.events
            .push(ev(0, 0, 10, IoKind::SoftReconfig { desc: "a".into() }));
        tr.events
            .push(ev(1, 1, 5, IoKind::SoftReconfig { desc: "b".into() }));
        let order: Vec<u32> = tr.by_time().iter().map(|e| e.id.0).collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn arrived_by_respects_loss_and_delay() {
        let mut tr = Trace::default();
        tr.events
            .push(ev(0, 0, 10, IoKind::SoftReconfig { desc: "a".into() }));
        let mut lost = ev(1, 0, 12, IoKind::SoftReconfig { desc: "b".into() });
        lost.arrived_at = None;
        tr.events.push(lost);
        tr.events
            .push(ev(2, 0, 100, IoKind::SoftReconfig { desc: "c".into() }));
        let got: Vec<u32> = tr
            .arrived_by(SimTime::from_millis(50))
            .iter()
            .map(|e| e.id.0)
            .collect();
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn snapshot_applies_cutoffs_per_router() {
        let mut tr = Trace::default();
        let act = FibAction::Forward(LinkId(0));
        tr.events.push(ev(
            0,
            0,
            10,
            IoKind::FibInstall {
                prefix: pfx("8.8.8.0/24"),
                action: act,
            },
        ));
        tr.events.push(ev(
            1,
            1,
            20,
            IoKind::FibInstall {
                prefix: pfx("8.8.8.0/24"),
                action: act,
            },
        ));
        // Cut router 0 at 15ms (sees its install), router 1 at 15ms (does
        // not).
        let dp = tr.fib_snapshot(&[SimTime::from_millis(15), SimTime::from_millis(15)]);
        assert_eq!(dp.fib(RouterId(0)).len(), 1);
        assert_eq!(dp.fib(RouterId(1)).len(), 0);
        // Uniform later snapshot sees both.
        let dp = tr.fib_snapshot_at(2, SimTime::from_millis(30));
        assert_eq!(dp.fib(RouterId(1)).len(), 1);
    }

    #[test]
    fn snapshot_applies_removals() {
        let mut tr = Trace::default();
        let act = FibAction::Forward(LinkId(0));
        tr.events.push(ev(
            0,
            0,
            10,
            IoKind::FibInstall {
                prefix: pfx("8.8.8.0/24"),
                action: act,
            },
        ));
        tr.events.push(ev(
            1,
            0,
            20,
            IoKind::FibRemove {
                prefix: pfx("8.8.8.0/24"),
            },
        ));
        let dp = tr.fib_snapshot_at(1, SimTime::from_millis(30));
        assert_eq!(dp.fib(RouterId(0)).len(), 0);
    }

    #[test]
    fn truth_ancestors_transitive() {
        let mut tr = Trace::default();
        for i in 0..4 {
            tr.events.push(ev(
                i,
                0,
                i as u64,
                IoKind::SoftReconfig {
                    desc: String::new(),
                },
            ));
        }
        tr.truth_edges.push((EventId(0), EventId(1)));
        tr.truth_edges.push((EventId(1), EventId(2)));
        tr.truth_edges.push((EventId(3), EventId(2)));
        let anc = tr.truth_ancestors(EventId(2));
        assert_eq!(anc, vec![EventId(0), EventId(1), EventId(3)]);
        assert!(tr.truth_ancestors(EventId(0)).is_empty());
    }

    #[test]
    fn display_renders_labels() {
        let e = ev(
            0,
            1,
            25_000,
            IoKind::SendAdvert {
                proto: Proto::Bgp,
                prefix: Some(pfx("8.8.8.0/24")),
                to: Some(PeerRef::Internal(RouterId(0))),
                route: None,
            },
        );
        let s = e.to_string();
        assert!(s.contains("R2"), "{s}");
        assert!(s.contains("send BGP advert 8.8.8.0/24 to R1"), "{s}");
        assert!(s.contains("25s"), "{s}");
    }

    #[test]
    fn stats_count_event_classes() {
        let mut tr = Trace::default();
        tr.events
            .push(ev(0, 0, 1, IoKind::SoftReconfig { desc: "a".into() }));
        tr.events.push(ev(
            1,
            0,
            2,
            IoKind::FibRemove {
                prefix: pfx("8.8.8.0/24"),
            },
        ));
        tr.events.push(ev(
            2,
            0,
            3,
            IoKind::FibInstall {
                prefix: pfx("8.8.8.0/24"),
                action: FibAction::Drop,
            },
        ));
        let stats = tr.stats();
        let get = |label: &str| stats.iter().find(|(l, _)| *l == label).unwrap().1;
        assert_eq!(get("soft-reconfig"), 1);
        assert_eq!(get("fib"), 2);
        assert_eq!(get("config"), 0);
        assert_eq!(stats.iter().map(|(_, c)| c).sum::<usize>(), 3);
    }
}

cpvr_types::impl_json_newtype!(crate::io, EventId);
cpvr_types::impl_json_enum!(Proto {
    Bgp,
    Ospf,
    Rip,
    Eigrp,
});
cpvr_types::impl_json_enum!(IoKind {
    ConfigChange { desc, change, inverse },
    SoftReconfig { desc },
    LinkStatus { desc, up, link, peer },
    RecvAdvert { proto, prefix, from, route },
    RecvWithdraw { proto, prefix, from },
    RibInstall { proto, prefix, route },
    RibRemove { proto, prefix },
    FibInstall { prefix, action },
    FibRemove { prefix },
    SendAdvert { proto, prefix, to, route },
    SendWithdraw { proto, prefix, to },
});
cpvr_types::impl_json_struct!(IoEvent {
    id,
    router,
    time,
    arrived_at,
    kind,
});
cpvr_types::impl_json_struct!(Trace {
    events,
    truth_edges
});
