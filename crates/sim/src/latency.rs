//! Latency and capture models.
//!
//! Every delay the simulator applies is sampled from one of these
//! profiles. The [`LatencyProfile::cisco`] profile is calibrated to the
//! paper's Fig. 5 measurements of real IOS routers in GNS3:
//!
//! * console config → soft reconfiguration: ~25 s (the surprisingly large
//!   gap §7 remarks on),
//! * soft reconfiguration / received advert → RIB+decision: ~4 ms,
//! * RIB → FIB install: 0.1–4 ms,
//! * RIB → advertisement sent: ~4 ms,
//! * advertisement propagation between routers: ~8 ms.

use cpvr_types::SimTime;
use rand::Rng;

/// A delay distribution: `base ± jitter`, uniform.
#[derive(Clone, Copy, Debug)]
pub struct Delay {
    /// Mean delay.
    pub base: SimTime,
    /// Maximum absolute deviation from the mean.
    pub jitter: SimTime,
}

impl Delay {
    /// A constant (jitter-free) delay.
    pub const fn fixed(t: SimTime) -> Self {
        Delay {
            base: t,
            jitter: SimTime::ZERO,
        }
    }

    /// Samples the delay.
    pub fn sample(&self, rng: &mut impl Rng) -> SimTime {
        if self.jitter.as_nanos() == 0 {
            return self.base;
        }
        let j = self.jitter.as_nanos();
        let lo = self.base.as_nanos().saturating_sub(j);
        let hi = self.base.as_nanos() + j;
        SimTime::from_nanos(rng.gen_range(lo..=hi))
    }
}

/// All control-plane processing and propagation delays.
#[derive(Clone, Copy, Debug)]
pub struct LatencyProfile {
    /// Config entered → control plane starts applying it (soft
    /// reconfiguration).
    pub config_apply: Delay,
    /// Input processed → RIB updated (the decision process).
    pub decision: Delay,
    /// RIB updated → FIB entry programmed.
    pub fib_install: Delay,
    /// RIB updated → advertisement leaves the router.
    pub advert_send: Delay,
    /// Advertisement propagation across a link (includes the peer's
    /// ingress processing).
    pub link_prop: Delay,
    /// Hardware status change → control plane notices.
    pub link_notify: Delay,
}

impl LatencyProfile {
    /// Near-zero latencies with no jitter — for unit tests and logical
    /// convergence checks.
    pub fn fast() -> Self {
        let us = |n| Delay::fixed(SimTime::from_micros(n));
        LatencyProfile {
            config_apply: us(10),
            decision: us(1),
            fib_install: us(1),
            advert_send: us(1),
            link_prop: us(5),
            link_notify: us(1),
        }
    }

    /// Calibrated to the paper's Fig. 5 Cisco/GNS3 measurements.
    pub fn cisco() -> Self {
        LatencyProfile {
            config_apply: Delay {
                base: SimTime::from_secs(25),
                jitter: SimTime::from_secs(3),
            },
            decision: Delay {
                base: SimTime::from_millis(4),
                jitter: SimTime::from_millis(1),
            },
            fib_install: Delay {
                base: SimTime::from_micros(500),
                jitter: SimTime::from_micros(400),
            },
            advert_send: Delay {
                base: SimTime::from_millis(4),
                jitter: SimTime::from_millis(1),
            },
            link_prop: Delay {
                base: SimTime::from_millis(8),
                jitter: SimTime::from_millis(2),
            },
            link_notify: Delay {
                base: SimTime::from_millis(1),
                jitter: SimTime::from_micros(500),
            },
        }
    }
}

/// How captured I/O records travel to the central verifier.
#[derive(Clone, Copy, Debug)]
pub struct CaptureProfile {
    /// Export delay from router to verifier.
    pub delay: Delay,
    /// Probability a record is lost entirely (`0.0..=1.0`).
    pub loss: f64,
}

impl CaptureProfile {
    /// Instant, lossless capture — the idealized setting.
    pub fn ideal() -> Self {
        CaptureProfile {
            delay: Delay::fixed(SimTime::ZERO),
            loss: 0.0,
        }
    }

    /// Syslog-ish capture: tens of milliseconds of skew, no loss.
    pub fn syslog() -> Self {
        CaptureProfile {
            delay: Delay {
                base: SimTime::from_millis(50),
                jitter: SimTime::from_millis(45),
            },
            loss: 0.0,
        }
    }

    /// Lossy capture for stress experiments.
    pub fn lossy(loss: f64) -> Self {
        CaptureProfile {
            delay: CaptureProfile::syslog().delay,
            loss,
        }
    }

    /// Samples the arrival time at the verifier for an event at `t`;
    /// `None` = the record is lost.
    pub fn sample(&self, t: SimTime, rng: &mut impl Rng) -> Option<SimTime> {
        if self.loss > 0.0 && rng.gen_bool(self.loss.min(1.0)) {
            return None;
        }
        Some(t + self.delay.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_delay_has_no_jitter() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Delay::fixed(SimTime::from_millis(5));
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), SimTime::from_millis(5));
        }
    }

    #[test]
    fn jittered_delay_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Delay {
            base: SimTime::from_millis(8),
            jitter: SimTime::from_millis(2),
        };
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!(
                s >= SimTime::from_millis(6) && s <= SimTime::from_millis(10),
                "{s}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Delay {
            base: SimTime::from_millis(8),
            jitter: SimTime::from_millis(2),
        };
        let seq1: Vec<SimTime> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| d.sample(&mut rng)).collect()
        };
        let seq2: Vec<SimTime> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn cisco_profile_matches_fig5_scales() {
        let p = LatencyProfile::cisco();
        assert!(p.config_apply.base >= SimTime::from_secs(20));
        assert_eq!(p.decision.base, SimTime::from_millis(4));
        assert_eq!(p.link_prop.base, SimTime::from_millis(8));
        assert!(p.fib_install.base < SimTime::from_millis(1));
    }

    #[test]
    fn ideal_capture_is_instant_and_lossless() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = CaptureProfile::ideal();
        let t = SimTime::from_millis(7);
        for _ in 0..10 {
            assert_eq!(c.sample(t, &mut rng), Some(t));
        }
    }

    #[test]
    fn lossy_capture_drops_records() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = CaptureProfile::lossy(0.5);
        let t = SimTime::from_millis(7);
        let lost = (0..1000)
            .filter(|_| c.sample(t, &mut rng).is_none())
            .count();
        assert!((300..700).contains(&lost), "loss rate wildly off: {lost}");
    }

    #[test]
    fn syslog_capture_delays_records() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = CaptureProfile::syslog();
        let t = SimTime::from_millis(100);
        let a = c.sample(t, &mut rng).unwrap();
        assert!(a > t);
        assert!(a <= t + SimTime::from_millis(95));
    }
}
