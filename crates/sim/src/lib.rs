//! A deterministic discrete-event simulator for distributed control planes.
//!
//! This crate is the substitute for the paper's GNS3-emulated Cisco
//! routers (§7): it hosts the real protocol implementations from
//! `cpvr-bgp` and `cpvr-igp` on a simulated network, delivers their
//! messages with configurable latencies (including a profile calibrated to
//! the paper's Fig. 5 measurements), applies FIB updates to a live
//! [`DataPlane`](cpvr_dataplane::DataPlane), and — crucially — **captures
//! every control-plane I/O** as an [`IoEvent`]:
//!
//! * inputs: configuration changes, hardware (link) status changes,
//!   received route advertisements and withdrawals;
//! * outputs: RIB updates, FIB updates, sent advertisements and
//!   withdrawals —
//!
//! exactly the six I/O classes of the paper's §4.1. Each event records
//! both the local (router) timestamp and the time it *arrives at the
//! verifier*, with configurable per-router capture delay and loss, because
//! the gap between those two clocks is what makes naive data-plane
//! snapshots inconsistent (Fig. 1c).
//!
//! The simulator also records the **ground-truth dependency edges**
//! between I/O events (it knows which input caused which outputs). The
//! inference machinery in `cpvr-core` never reads them; they exist so the
//! accuracy of inferred happens-before relationships can be measured
//! (experiment A2).
//!
//! Everything is deterministic: a seeded RNG drives all jitter, and the
//! event queue breaks time ties by insertion order. Same seed, same
//! scenario → byte-identical trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod io;
pub mod latency;
pub mod router;
pub mod scenario;
pub mod sink;
pub mod wire;
pub mod workload;

pub use engine::{FibGate, Simulation};
pub use io::{EventId, IoEvent, IoKind, Proto, Trace};
pub use latency::{CaptureProfile, LatencyProfile};
pub use router::{IgpKind, RouterConfig};
pub use scenario::paper_scenario;
pub use sink::{EventSink, RecordingSink, RouterShardSink};
