//! The per-router bundle: a BGP speaker plus one IGP instance.

use crate::io::Proto;
use cpvr_bgp::{BgpConfig, BgpInstance, IgpView};
use cpvr_igp::eigrp::{EigrpInstance, EigrpMsg};
use cpvr_igp::ospf::{OspfInstance, OspfMsg};
use cpvr_igp::rip::{RipInstance, RipMsg};
use cpvr_igp::{IgpOutputs, IgpRoute};
use cpvr_topo::{LinkId, Topology};
use cpvr_types::{Ipv4Prefix, RouterId};
use std::collections::BTreeMap;

/// Which IGP a router runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IgpKind {
    /// OSPF-lite (link-state). The default.
    #[default]
    Ospf,
    /// RIP (distance-vector).
    Rip,
    /// EIGRP-lite (DUAL). Note its different happens-before rule: it
    /// advertises only after the FIB install (§4.1).
    Eigrp,
}

/// Static configuration for one simulated router.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// BGP configuration (sessions, policies, vendor profile, Add-Path).
    pub bgp: BgpConfig,
    /// Which IGP to run.
    pub igp: IgpKind,
}

/// A unified IGP protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IgpMsg {
    /// An OSPF message.
    Ospf(OspfMsg),
    /// A RIP message.
    Rip(RipMsg),
    /// An EIGRP message.
    Eigrp(EigrpMsg),
}

impl IgpMsg {
    /// `(prefix, is_withdraw)` pairs this message conveys, for I/O
    /// capture. OSPF LSAs are not per-prefix and yield a single
    /// `(None, false)` entry.
    pub fn captured_prefixes(&self) -> Vec<(Option<Ipv4Prefix>, bool)> {
        match self {
            IgpMsg::Ospf(_) => vec![(None, false)],
            IgpMsg::Rip(m) => m
                .routes
                .iter()
                .map(|(p, metric)| (Some(*p), *metric >= cpvr_igp::rip::INFINITY))
                .collect(),
            IgpMsg::Eigrp(EigrpMsg::Update { routes }) => routes
                .iter()
                .map(|(p, rd)| (Some(*p), *rd == cpvr_igp::eigrp::UNREACHABLE))
                .collect(),
            IgpMsg::Eigrp(EigrpMsg::Query { prefix }) => vec![(Some(*prefix), true)],
            IgpMsg::Eigrp(EigrpMsg::Reply { prefix, rd }) => {
                vec![(Some(*prefix), *rd == cpvr_igp::eigrp::UNREACHABLE)]
            }
        }
    }
}

/// One router's IGP instance, protocol-erased.
#[derive(Clone, Debug)]
pub enum IgpRunner {
    /// OSPF-lite.
    Ospf(OspfInstance),
    /// RIP.
    Rip(RipInstance),
    /// EIGRP-lite.
    Eigrp(EigrpInstance),
}

fn wrap<M>(out: IgpOutputs<M>, f: impl Fn(M) -> IgpMsg) -> IgpOutputs<IgpMsg> {
    IgpOutputs {
        msgs: out.msgs.into_iter().map(|(to, m)| (to, f(m))).collect(),
        deltas: out.deltas,
    }
}

impl IgpRunner {
    /// Creates the chosen IGP for router `me`.
    pub fn new(kind: IgpKind, me: RouterId) -> Self {
        match kind {
            IgpKind::Ospf => IgpRunner::Ospf(OspfInstance::new(me)),
            IgpKind::Rip => IgpRunner::Rip(RipInstance::new(me)),
            IgpKind::Eigrp => IgpRunner::Eigrp(EigrpInstance::new(me)),
        }
    }

    /// Which protocol this is, for I/O event tagging.
    pub fn proto(&self) -> Proto {
        match self {
            IgpRunner::Ospf(_) => Proto::Ospf,
            IgpRunner::Rip(_) => Proto::Rip,
            IgpRunner::Eigrp(_) => Proto::Eigrp,
        }
    }

    /// Does this protocol advertise only after the FIB install (EIGRP)?
    /// Determines the happens-before structure of emitted send events.
    pub fn adverts_after_fib(&self) -> bool {
        matches!(self, IgpRunner::Eigrp(_))
    }

    /// Starts the instance.
    pub fn start(&mut self, topo: &Topology) -> IgpOutputs<IgpMsg> {
        match self {
            IgpRunner::Ospf(i) => wrap(i.start(topo), IgpMsg::Ospf),
            IgpRunner::Rip(i) => wrap(i.start(topo), IgpMsg::Rip),
            IgpRunner::Eigrp(i) => wrap(i.start(topo), IgpMsg::Eigrp),
        }
    }

    /// Reacts to a local link status change.
    pub fn link_change(&mut self, topo: &Topology) -> IgpOutputs<IgpMsg> {
        match self {
            IgpRunner::Ospf(i) => wrap(i.link_change(topo), IgpMsg::Ospf),
            IgpRunner::Rip(i) => wrap(i.link_change(topo), IgpMsg::Rip),
            IgpRunner::Eigrp(i) => wrap(i.link_change(topo), IgpMsg::Eigrp),
        }
    }

    /// Handles a protocol message from a neighbor. Messages of the wrong
    /// protocol are ignored (cannot happen in a well-formed simulation).
    pub fn recv(&mut self, topo: &Topology, from: RouterId, msg: IgpMsg) -> IgpOutputs<IgpMsg> {
        match (self, msg) {
            (IgpRunner::Ospf(i), IgpMsg::Ospf(m)) => wrap(i.recv(topo, from, m), IgpMsg::Ospf),
            (IgpRunner::Rip(i), IgpMsg::Rip(m)) => wrap(i.recv(topo, from, m), IgpMsg::Rip),
            (IgpRunner::Eigrp(i), IgpMsg::Eigrp(m)) => wrap(i.recv(topo, from, m), IgpMsg::Eigrp),
            _ => IgpOutputs::empty(),
        }
    }

    /// The current IGP route table.
    pub fn table(&self) -> &BTreeMap<Ipv4Prefix, IgpRoute> {
        match self {
            IgpRunner::Ospf(i) => i.table(),
            IgpRunner::Rip(i) => i.table(),
            IgpRunner::Eigrp(i) => i.table(),
        }
    }
}

/// Adapts an IGP route table to the [`IgpView`] BGP consumes: loopback
/// reachability is looked up as a /32 host route.
pub struct IgpTableView<'a> {
    table: &'a BTreeMap<Ipv4Prefix, IgpRoute>,
    topo: &'a Topology,
}

impl<'a> IgpTableView<'a> {
    /// Wraps a table and its topology.
    pub fn new(table: &'a BTreeMap<Ipv4Prefix, IgpRoute>, topo: &'a Topology) -> Self {
        IgpTableView { table, topo }
    }
}

impl IgpView for IgpTableView<'_> {
    fn metric_to(&self, r: RouterId) -> Option<u32> {
        let lb = Ipv4Prefix::host(self.topo.router(r).loopback);
        self.table.get(&lb).map(|route| route.metric)
    }
    fn next_hop_to(&self, r: RouterId) -> Option<(RouterId, LinkId)> {
        let lb = Ipv4Prefix::host(self.topo.router(r).loopback);
        self.table.get(&lb).and_then(|route| route.next_hop)
    }
}

/// One simulated router: control plane instances. Its FIB lives in the
/// simulation's shared [`DataPlane`](cpvr_dataplane::DataPlane).
#[derive(Clone, Debug)]
pub struct SimRouter {
    /// The BGP speaker.
    pub bgp: BgpInstance,
    /// The IGP instance.
    pub igp: IgpRunner,
}

impl SimRouter {
    /// Builds a router from its configuration.
    pub fn new(cfg: &RouterConfig) -> Self {
        let me = cfg.bgp.router;
        SimRouter {
            bgp: BgpInstance::new(cfg.bgp.clone()),
            igp: IgpRunner::new(cfg.igp, me),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_topo::builder::shapes;
    use cpvr_types::AsNum;

    #[test]
    fn runner_dispatch_and_proto_tags() {
        let topo = shapes::line(2);
        for (kind, proto, after_fib) in [
            (IgpKind::Ospf, Proto::Ospf, false),
            (IgpKind::Rip, Proto::Rip, false),
            (IgpKind::Eigrp, Proto::Eigrp, true),
        ] {
            let mut r = IgpRunner::new(kind, RouterId(0));
            assert_eq!(r.proto(), proto);
            assert_eq!(r.adverts_after_fib(), after_fib);
            let out = r.start(&topo);
            assert!(
                !out.deltas.is_empty(),
                "{kind:?} must install local prefixes"
            );
            assert!(!r.table().is_empty());
        }
    }

    #[test]
    fn wrong_protocol_message_ignored() {
        let topo = shapes::line(2);
        let mut r = IgpRunner::new(IgpKind::Ospf, RouterId(0));
        let _ = r.start(&topo);
        let out = r.recv(&topo, RouterId(1), IgpMsg::Rip(RipMsg { routes: vec![] }));
        assert!(out.msgs.is_empty() && out.deltas.is_empty());
    }

    #[test]
    fn table_view_resolves_loopbacks() {
        let topo = shapes::line(2);
        let mut a = IgpRunner::new(IgpKind::Ospf, RouterId(0));
        let mut b = IgpRunner::new(IgpKind::Ospf, RouterId(1));
        let oa = a.start(&topo);
        let ob = b.start(&topo);
        // Exchange initial LSAs directly.
        for (_, m) in ob.msgs {
            let _ = a.recv(&topo, RouterId(1), m);
        }
        for (_, m) in oa.msgs {
            let _ = b.recv(&topo, RouterId(0), m);
        }
        let view = IgpTableView::new(a.table(), &topo);
        assert_eq!(view.metric_to(RouterId(1)), Some(10));
        assert_eq!(view.next_hop_to(RouterId(1)).unwrap().0, RouterId(1));
        assert_eq!(
            view.metric_to(RouterId(0)),
            Some(0),
            "self loopback is local"
        );
    }

    #[test]
    fn captured_prefixes_classify_withdrawals() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let m = IgpMsg::Rip(RipMsg {
            routes: vec![(p, 3), (p, cpvr_igp::rip::INFINITY)],
        });
        let got = m.captured_prefixes();
        assert_eq!(got, vec![(Some(p), false), (Some(p), true)]);
        let q = IgpMsg::Eigrp(EigrpMsg::Query { prefix: p });
        assert_eq!(q.captured_prefixes(), vec![(Some(p), true)]);
        let lsa_like = IgpMsg::Ospf(OspfMsg::Flood(cpvr_igp::ospf::Lsa {
            origin: RouterId(0),
            seq: 1,
            links: vec![],
            stubs: vec![],
        }));
        assert_eq!(lsa_like.captured_prefixes(), vec![(None, false)]);
    }

    #[test]
    fn sim_router_bundles_instances() {
        let cfg = RouterConfig {
            bgp: BgpConfig::new(RouterId(0), AsNum(65000)),
            igp: IgpKind::Ospf,
        };
        let r = SimRouter::new(&cfg);
        assert_eq!(r.bgp.router(), RouterId(0));
        assert_eq!(r.igp.proto(), Proto::Ospf);
    }
}
