//! Ready-made scenarios, starting with the paper's running example.

use crate::engine::Simulation;
use crate::latency::{CaptureProfile, LatencyProfile};
use crate::router::{IgpKind, RouterConfig};
use cpvr_bgp::{BgpConfig, PeerRef, RouteMap, SessionCfg, SetAction, VendorProfile};
use cpvr_topo::builder::shapes;
use cpvr_topo::ExtPeerId;
use cpvr_types::{AsNum, Ipv4Prefix, RouterId};

/// The paper's three-router scenario, assembled and ready to run.
pub struct PaperScenario {
    /// The simulation (call [`Simulation::start`] then schedule stimuli).
    pub sim: Simulation,
    /// The external prefix `P` of the figures.
    pub prefix: Ipv4Prefix,
    /// The uplink peer attached to R1 (import LP 20).
    pub ext_r1: ExtPeerId,
    /// The uplink peer attached to R2 (import LP 30 — the preferred exit).
    pub ext_r2: ExtPeerId,
}

/// Builds the Figs. 1/2/5 network: routers R1–R3 in AS 65000, full iBGP
/// mesh over a triangle of links, uplinks at R1 (local-pref 20) and R2
/// (local-pref 30), so the policy "exit via R2 when its uplink is up"
/// holds by configuration. OSPF underlay.
pub fn paper_scenario(
    latency: LatencyProfile,
    capture: CaptureProfile,
    seed: u64,
) -> PaperScenario {
    paper_scenario_with_igp(latency, capture, seed, IgpKind::Ospf)
}

/// [`paper_scenario`] with a selectable IGP underlay — RIP and EIGRP
/// variants exercise the protocol-specific happens-before rules of §4.1.
pub fn paper_scenario_with_igp(
    latency: LatencyProfile,
    capture: CaptureProfile,
    seed: u64,
    igp: IgpKind,
) -> PaperScenario {
    let (topo, ext_r1, ext_r2) = shapes::paper_triangle();
    let asn = AsNum(65000);
    let mut configs = Vec::new();
    for r in 0..3u32 {
        let mut bgp = BgpConfig::new(RouterId(r), asn);
        bgp.vendor = VendorProfile::Cisco;
        for other in 0..3u32 {
            if other != r {
                bgp.sessions
                    .push(SessionCfg::new(PeerRef::Internal(RouterId(other))));
            }
        }
        configs.push(RouterConfig { bgp, igp });
    }
    configs[0].bgp.sessions.push(SessionCfg {
        peer: PeerRef::External(ext_r1),
        import: RouteMap::set_all(vec![SetAction::LocalPref(20)]),
        export: RouteMap::permit_any(),
        weight: 0,
        ebgp: true,
        rr_client: false,
    });
    configs[1].bgp.sessions.push(SessionCfg {
        peer: PeerRef::External(ext_r2),
        import: RouteMap::set_all(vec![SetAction::LocalPref(30)]),
        export: RouteMap::permit_any(),
        weight: 0,
        ebgp: true,
        rr_client: false,
    });
    let sim = Simulation::new(topo, configs, latency, capture, seed);
    PaperScenario {
        sim,
        prefix: "8.8.8.0/24".parse().expect("static prefix"),
        ext_r1,
        ext_r2,
    }
}

/// A scaled generalization: a line of `n` routers with uplinks at both
/// ends (left LP 20, right LP 30), full iBGP mesh, OSPF underneath.
/// Returns the simulation plus the two uplink ids.
pub fn two_exit_scenario(
    n: usize,
    latency: LatencyProfile,
    capture: CaptureProfile,
    seed: u64,
) -> (Simulation, ExtPeerId, ExtPeerId) {
    let (topo, left, right) = shapes::two_exit_line(n);
    let asn = AsNum(65000);
    let mut configs = Vec::new();
    for r in 0..n as u32 {
        let mut bgp = BgpConfig::new(RouterId(r), asn);
        for other in 0..n as u32 {
            if other != r {
                bgp.sessions
                    .push(SessionCfg::new(PeerRef::Internal(RouterId(other))));
            }
        }
        configs.push(RouterConfig {
            bgp,
            igp: IgpKind::Ospf,
        });
    }
    configs[0].bgp.sessions.push(SessionCfg {
        peer: PeerRef::External(left),
        import: RouteMap::set_all(vec![SetAction::LocalPref(20)]),
        export: RouteMap::permit_any(),
        weight: 0,
        ebgp: true,
        rr_client: false,
    });
    configs[n - 1].bgp.sessions.push(SessionCfg {
        peer: PeerRef::External(right),
        import: RouteMap::set_all(vec![SetAction::LocalPref(30)]),
        export: RouteMap::permit_any(),
        weight: 0,
        ebgp: true,
        rr_client: false,
    });
    let sim = Simulation::new(topo, configs, latency, capture, seed);
    (sim, left, right)
}

/// A two-AS inter-domain scenario: AS 65000 (R1—R2) peers with AS 65001
/// (R3—R4) over an eBGP session on the R2—R3 link; an external provider
/// attaches to R4. iBGP inside each AS, eBGP across.
///
/// Simplification (documented in DESIGN.md): a single OSPF domain spans
/// both ASes — in a real deployment each AS runs its own IGP, but the
/// only thing BGP consumes from it is next-hop reachability, which is
/// identical here.
///
/// Returns `(simulation, provider peer id)`.
pub fn two_as_scenario(
    latency: LatencyProfile,
    capture: CaptureProfile,
    seed: u64,
) -> (Simulation, ExtPeerId) {
    use cpvr_topo::TopologyBuilder;
    let as_a = AsNum(65000);
    let as_b = AsNum(65001);
    let mut b = TopologyBuilder::new(as_a);
    let r1 = b.router_in_as("R1", as_a);
    let r2 = b.router_in_as("R2", as_a);
    let r3 = b.router_in_as("R3", as_b);
    let r4 = b.router_in_as("R4", as_b);
    b.link(r1, r2, 10);
    b.link(r2, r3, 10);
    b.link(r3, r4, 10);
    let provider = b.external_peer("Provider", AsNum(200), r4);
    let topo = b.build();
    let mk = |me: RouterId, asn: AsNum| RouterConfig {
        bgp: BgpConfig::new(me, asn),
        igp: IgpKind::Ospf,
    };
    let mut c1 = mk(r1, as_a);
    c1.bgp.sessions.push(SessionCfg::new(PeerRef::Internal(r2)));
    let mut c2 = mk(r2, as_a);
    c2.bgp.sessions.push(SessionCfg::new(PeerRef::Internal(r1)));
    c2.bgp.sessions.push(SessionCfg::ebgp_to_router(r3));
    let mut c3 = mk(r3, as_b);
    c3.bgp.sessions.push(SessionCfg::new(PeerRef::Internal(r4)));
    c3.bgp.sessions.push(SessionCfg::ebgp_to_router(r2));
    let mut c4 = mk(r4, as_b);
    c4.bgp.sessions.push(SessionCfg::new(PeerRef::Internal(r3)));
    c4.bgp
        .sessions
        .push(SessionCfg::new(PeerRef::External(provider)));
    let sim = Simulation::new(topo, vec![c1, c2, c3, c4], latency, capture, seed);
    (sim, provider)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_shape() {
        let s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), 1);
        assert_eq!(s.sim.topology().num_routers(), 3);
        assert_eq!(s.sim.topology().num_ext_peers(), 2);
        assert_eq!(s.prefix.to_string(), "8.8.8.0/24");
    }

    #[test]
    fn two_exit_scales() {
        let (sim, l, r) = two_exit_scenario(8, LatencyProfile::fast(), CaptureProfile::ideal(), 1);
        assert_eq!(sim.topology().num_routers(), 8);
        assert_ne!(l, r);
    }
}
