//! The event-sink interface: where captured control-plane I/Os go.
//!
//! The paper's architecture (§4.1) assumes every router's control-plane
//! I/Os are captured *and shipped to the verifier*. [`EventSink`] is the
//! seam between capture and shipping: the simulator calls
//! [`on_event`](EventSink::on_event) for every [`IoEvent`] at the moment
//! it is recorded, and what happens next depends on the sink —
//!
//! * an in-process tap feeds an incremental `HbgBuilder` /
//!   `ConsistencyTracker` directly (what `ControlLoop::run` installs);
//! * `cpvr-collector`'s `SocketSink` frames the event onto a TCP stream
//!   toward a remote collector;
//! * a [`RecordingSink`] accumulates events for tests.
//!
//! Closures keep working: any `FnMut(&IoEvent)` is an `EventSink` via
//! the blanket impl, so `sim.set_event_sink(Box::new(|e| ...))` stays
//! valid.

use crate::io::IoEvent;

/// A consumer of captured I/O events, invoked synchronously for every
/// event at the moment it is recorded.
///
/// Object-safe by design: the simulator, the collector's client shim,
/// and test recorders all hold `Box<dyn EventSink>`.
pub trait EventSink {
    /// Observes one freshly captured event.
    fn on_event(&mut self, e: &IoEvent);

    /// A hint that a batch of events is complete (e.g. the simulation
    /// clock finished a step). Network-backed sinks flush their buffers
    /// here; the default does nothing.
    fn flush(&mut self) {}
}

impl<F: FnMut(&IoEvent)> EventSink for F {
    fn on_event(&mut self, e: &IoEvent) {
        self(e)
    }
}

/// A sink that clones every event into a vector — the test recorder.
#[derive(Debug, Default)]
pub struct RecordingSink {
    /// Everything observed, in capture order.
    pub events: Vec<IoEvent>,
}

impl RecordingSink {
    /// An empty recorder.
    pub fn new() -> Self {
        RecordingSink::default()
    }
}

impl EventSink for RecordingSink {
    fn on_event(&mut self, e: &IoEvent) {
        self.events.push(e.clone());
    }
}

/// A sink that routes each event to one of several inner sinks by the
/// event's router — how a multi-router deployment ships each router's
/// log over that router's own connection.
///
/// # Panics
///
/// [`on_event`](EventSink::on_event) panics if an event names a router
/// with no corresponding sink.
pub struct RouterShardSink {
    shards: Vec<Box<dyn EventSink>>,
}

impl RouterShardSink {
    /// A sharded sink; `shards[i]` receives router `i`'s events.
    pub fn new(shards: Vec<Box<dyn EventSink>>) -> Self {
        RouterShardSink { shards }
    }

    /// The inner sinks, for teardown.
    pub fn into_shards(self) -> Vec<Box<dyn EventSink>> {
        self.shards
    }
}

impl EventSink for RouterShardSink {
    fn on_event(&mut self, e: &IoEvent) {
        self.shards[e.router.index()].on_event(e);
    }

    fn flush(&mut self) {
        for s in &mut self.shards {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{EventId, IoKind};
    use cpvr_types::{RouterId, SimTime};

    fn ev(id: u32, router: u32) -> IoEvent {
        IoEvent {
            id: EventId(id),
            router: RouterId(router),
            time: SimTime::from_millis(id as u64),
            arrived_at: None,
            kind: IoKind::SoftReconfig { desc: "x".into() },
        }
    }

    #[test]
    fn recording_sink_keeps_capture_order() {
        let mut s = RecordingSink::new();
        s.on_event(&ev(0, 0));
        s.on_event(&ev(1, 1));
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].id, EventId(0));
        assert_eq!(s.events[1].router, RouterId(1));
    }

    #[test]
    fn closures_are_sinks() {
        let mut n = 0usize;
        {
            let mut sink: Box<dyn EventSink> = Box::new(|_: &IoEvent| n += 1);
            sink.on_event(&ev(0, 0));
            sink.on_event(&ev(1, 0));
            sink.flush();
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn shard_sink_routes_by_router() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<(usize, u32)>>> = Rc::new(RefCell::new(Vec::new()));
        let shard = |i: usize| -> Box<dyn EventSink> {
            let seen = Rc::clone(&seen);
            Box::new(move |e: &IoEvent| seen.borrow_mut().push((i, e.id.0)))
        };
        let mut sharded = RouterShardSink::new(vec![shard(0), shard(1)]);
        sharded.on_event(&ev(0, 1));
        sharded.on_event(&ev(1, 0));
        sharded.on_event(&ev(2, 1));
        assert_eq!(*seen.borrow(), vec![(1, 0), (0, 1), (1, 2)]);
    }
}
