//! Binary event bodies for the collector's codec v3.
//!
//! Codec v2 ships every [`IoEvent`] as compact JSON: the router renders
//! a `String`, the collector parses it back through a `Value` tree, and
//! every router name, prefix, and description lands in its own heap
//! allocation. This module is the v3 alternative: a dense binary layout
//! read in a single left-to-right pass, with varint integers
//! ([`cpvr_types::varint`]) and interned symbols
//! ([`cpvr_types::intern`]) for the two repeated byte-string shapes —
//! event descriptions and 5-byte prefix encodings.
//!
//! Layout of an event body (after the frame's varint sequence number):
//!
//! ```text
//! varint id · varint router · varint time · flags u8
//! [varint arrived_at if flags bit0] · kind tag u8 · fields…
//! [12-byte TraceCtx trailer if flags bit1]
//! ```
//!
//! Flags bit1 carries an optional causal-trace trailer
//! ([`cpvr_types::TraceCtx`]: `trace_id` LE64 + `parent` LE32) minted
//! at the sink for sampled event flights. Untraced events encode the
//! flags byte as plain 0/1 — byte-identical to the pre-trailer
//! layout, so old WALs and un-upgraded peers decode unchanged.
//!
//! Kind tags follow [`IoKind`]'s declaration order (0 = `ConfigChange`
//! … 10 = `SendWithdraw`). Prefixes appear as interned symbols whose
//! definition bytes are `[len, bits₀, bits₁, bits₂, bits₃]` (bits
//! little-endian); descriptions are interned UTF-8. The rare
//! `cpvr_bgp::ConfigChange` payloads ride as length-prefixed compact
//! JSON — they occur once per scenario mutation, so correctness beats
//! compactness there.
//!
//! Interning makes encode stateful: the first use of a symbol emits an
//! [`InternDef`] that the caller must frame *before* the event that
//! uses it. Decode is strict — every byte must be consumed, every tag
//! known, every symbol previously defined — so damaged frames are
//! quarantined rather than misread.

use std::collections::BTreeSet;
use std::fmt;

use cpvr_bgp::{BgpRoute, NextHop, Origin, PeerRef};
use cpvr_dataplane::FibAction;
use cpvr_topo::{ExtPeerId, LinkId};
use cpvr_types::intern::{InternStore, Interns, SPACE_PREFIX, SPACE_STRING};
use cpvr_types::json::{from_str, to_string_compact};
use cpvr_types::trace::TRACE_CTX_WIRE_LEN;
use cpvr_types::varint;
use cpvr_types::{AsNum, Ipv4Prefix, RouterId, SimTime, TraceCtx};

use crate::io::{EventId, IoEvent, IoKind, Proto};

/// Why a binary event body failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field (or a varint terminator).
    Truncated,
    /// An enum tag byte was out of range for the named field.
    BadTag(&'static str, u8),
    /// An interned symbol was used before any definition bound it.
    UnknownSymbol {
        /// The symbol space ([`SPACE_STRING`] / [`SPACE_PREFIX`]).
        space: u8,
        /// The unresolved symbol.
        symbol: u32,
    },
    /// A symbol resolved to bytes of the wrong shape (bad UTF-8 for a
    /// string, wrong length or length > 32 for a prefix).
    BadSymbolBytes(&'static str),
    /// An embedded JSON blob failed to parse.
    BadJson(&'static str),
    /// Bytes were left over after the last field — the frame length
    /// and the body disagree.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated event body"),
            WireError::BadTag(what, b) => write!(f, "bad {what} tag {b}"),
            WireError::UnknownSymbol { space, symbol } => {
                write!(f, "undefined intern symbol {symbol} in space {space}")
            }
            WireError::BadSymbolBytes(what) => write!(f, "malformed interned {what}"),
            WireError::BadJson(what) => write!(f, "bad embedded json for {what}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after event body"),
        }
    }
}

/// A fresh symbol definition produced during encode. The transport must
/// deliver it (as an `Intern` frame) before the event that uses it, and
/// journal it to the WAL in the same order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternDef {
    /// Source router the symbol is scoped to.
    pub router: u32,
    /// Symbol space ([`SPACE_STRING`] / [`SPACE_PREFIX`]).
    pub space: u8,
    /// The symbol being defined.
    pub symbol: u32,
    /// Its meaning.
    pub bytes: Vec<u8>,
}

/// Renders an intern definition as an `Intern` frame payload:
/// `varint router · space u8 · varint symbol · varint len · bytes`.
pub fn encode_intern_def(def: &InternDef, out: &mut Vec<u8>) {
    varint::write_u32(out, def.router);
    out.push(def.space);
    varint::write_u32(out, def.symbol);
    varint::write_u64(out, def.bytes.len() as u64);
    out.extend_from_slice(&def.bytes);
}

/// Parses an `Intern` frame payload. Strict: consumes the whole buffer.
pub fn decode_intern_def(buf: &[u8]) -> Result<InternDef, WireError> {
    let mut pos = 0;
    let router = varint::read_u32(buf, &mut pos).ok_or(WireError::Truncated)?;
    let space = *buf.get(pos).ok_or(WireError::Truncated)?;
    pos += 1;
    if space != SPACE_STRING && space != SPACE_PREFIX {
        return Err(WireError::BadTag("intern space", space));
    }
    let symbol = varint::read_u32(buf, &mut pos).ok_or(WireError::Truncated)?;
    let len = varint::read_u64(buf, &mut pos).ok_or(WireError::Truncated)? as usize;
    let rest = &buf[pos..];
    if rest.len() < len {
        return Err(WireError::Truncated);
    }
    if rest.len() > len {
        return Err(WireError::Trailing(rest.len() - len));
    }
    Ok(InternDef {
        router,
        space,
        symbol,
        bytes: rest.to_vec(),
    })
}

/// The 5-byte wire shape of a prefix: `[len, bits LE…]`.
fn prefix_bytes(p: Ipv4Prefix) -> [u8; 5] {
    let bits = p.bits().to_le_bytes();
    [p.len(), bits[0], bits[1], bits[2], bits[3]]
}

fn prefix_from_bytes(bytes: &[u8]) -> Option<Ipv4Prefix> {
    if bytes.len() != 5 || bytes[0] > 32 {
        return None;
    }
    let bits = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]);
    Some(Ipv4Prefix::from_bits(bits, bytes[0]))
}

/// Encoder state + output for one event body.
struct Enc<'a> {
    interns: &'a mut Interns,
    defs: &'a mut Vec<InternDef>,
    router: u32,
    out: &'a mut Vec<u8>,
}

impl Enc<'_> {
    fn byte(&mut self, b: u8) {
        self.out.push(b);
    }

    fn u32v(&mut self, v: u32) {
        varint::write_u32(self.out, v);
    }

    fn u64v(&mut self, v: u64) {
        varint::write_u64(self.out, v);
    }

    fn str_sym(&mut self, s: &str) {
        let (sym, fresh) = self.interns.strings.intern(s.as_bytes());
        if fresh {
            self.defs.push(InternDef {
                router: self.router,
                space: SPACE_STRING,
                symbol: sym,
                bytes: s.as_bytes().to_vec(),
            });
        }
        self.u32v(sym);
    }

    fn pfx_sym(&mut self, p: Ipv4Prefix) {
        let bytes = prefix_bytes(p);
        let (sym, fresh) = self.interns.prefixes.intern(&bytes);
        if fresh {
            self.defs.push(InternDef {
                router: self.router,
                space: SPACE_PREFIX,
                symbol: sym,
                bytes: bytes.to_vec(),
            });
        }
        self.u32v(sym);
    }

    fn opt_pfx(&mut self, p: &Option<Ipv4Prefix>) {
        match p {
            None => self.byte(0),
            Some(p) => {
                self.byte(1);
                self.pfx_sym(*p);
            }
        }
    }

    fn proto(&mut self, p: Proto) {
        self.byte(match p {
            Proto::Bgp => 0,
            Proto::Ospf => 1,
            Proto::Rip => 2,
            Proto::Eigrp => 3,
        });
    }

    fn peer(&mut self, p: &PeerRef) {
        match p {
            PeerRef::Internal(r) => {
                self.byte(0);
                self.u32v(r.0);
            }
            PeerRef::External(x) => {
                self.byte(1);
                self.u32v(x.0);
            }
        }
    }

    fn opt_peer(&mut self, p: &Option<PeerRef>) {
        match p {
            None => self.byte(0),
            Some(p) => {
                self.byte(1);
                self.peer(p);
            }
        }
    }

    fn route(&mut self, r: &BgpRoute) {
        self.pfx_sym(r.prefix);
        match r.next_hop {
            NextHop::External(x) => {
                self.byte(0);
                self.u32v(x.0);
            }
            NextHop::Router(rt) => {
                self.byte(1);
                self.u32v(rt.0);
            }
        }
        self.u32v(r.local_pref);
        self.u64v(r.as_path.len() as u64);
        for asn in &r.as_path {
            self.u32v(asn.0);
        }
        self.byte(match r.origin {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        });
        self.u32v(r.med);
        // BTreeSet iteration is sorted: the encoding is deterministic.
        self.u64v(r.communities.len() as u64);
        for c in &r.communities {
            self.u32v(*c);
        }
        self.u32v(r.originator.0);
    }

    fn opt_route(&mut self, r: &Option<BgpRoute>) {
        match r {
            None => self.byte(0),
            Some(r) => {
                self.byte(1);
                self.route(r);
            }
        }
    }

    /// `Option<ConfigChange>` rides as presence + length-prefixed JSON.
    fn opt_blob(&mut self, c: &Option<cpvr_bgp::ConfigChange>) {
        match c {
            None => self.byte(0),
            Some(c) => {
                self.byte(1);
                let json = to_string_compact(c);
                self.u64v(json.len() as u64);
                self.out.extend_from_slice(json.as_bytes());
            }
        }
    }

    fn action(&mut self, a: &FibAction) {
        match a {
            FibAction::Forward(l) => {
                self.byte(0);
                self.u32v(l.0);
            }
            FibAction::Exit(x) => {
                self.byte(1);
                self.u32v(x.0);
            }
            FibAction::Local => self.byte(2),
            FibAction::Drop => self.byte(3),
        }
    }

    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.byte(0),
            Some(v) => {
                self.byte(1);
                self.u32v(v);
            }
        }
    }
}

/// Appends `varint seq` + the binary body of `event` to `out`
/// (untraced). Equivalent to [`encode_event_traced`] with no context;
/// the bytes are identical, so callers that never trace pay nothing.
pub fn encode_event(
    seq: u64,
    event: &IoEvent,
    interns: &mut Interns,
    defs: &mut Vec<InternDef>,
    out: &mut Vec<u8>,
) {
    encode_event_traced(seq, event, None, interns, defs, out);
}

/// Appends `varint seq` + the binary body of `event` to `out`, with
/// an optional causal-trace trailer (flags bit1 + 12 bytes at the end
/// of the body).
///
/// `interns` is the encoder's per-router symbol state; fresh symbols
/// are appended to `defs` and must be framed (and journaled) before
/// this event's frame.
pub fn encode_event_traced(
    seq: u64,
    event: &IoEvent,
    trace: Option<TraceCtx>,
    interns: &mut Interns,
    defs: &mut Vec<InternDef>,
    out: &mut Vec<u8>,
) {
    varint::write_u64(out, seq);
    let mut e = Enc {
        interns,
        defs,
        router: event.router.0,
        out,
    };
    e.u32v(event.id.0);
    e.u32v(event.router.0);
    e.u64v(event.time.0);
    let mut flags = 0u8;
    if event.arrived_at.is_some() {
        flags |= 1;
    }
    if trace.is_some() {
        flags |= 2;
    }
    e.byte(flags);
    if let Some(t) = event.arrived_at {
        e.u64v(t.0);
    }
    match &event.kind {
        IoKind::ConfigChange {
            desc,
            change,
            inverse,
        } => {
            e.byte(0);
            e.str_sym(desc);
            e.opt_blob(change);
            e.opt_blob(inverse);
        }
        IoKind::SoftReconfig { desc } => {
            e.byte(1);
            e.str_sym(desc);
        }
        IoKind::LinkStatus {
            desc,
            up,
            link,
            peer,
        } => {
            e.byte(2);
            e.str_sym(desc);
            e.byte(u8::from(*up));
            e.opt_u32(link.map(|l| l.0));
            e.opt_u32(peer.map(|p| p.0));
        }
        IoKind::RecvAdvert {
            proto,
            prefix,
            from,
            route,
        } => {
            e.byte(3);
            e.proto(*proto);
            e.opt_pfx(prefix);
            e.opt_peer(from);
            e.opt_route(route);
        }
        IoKind::RecvWithdraw {
            proto,
            prefix,
            from,
        } => {
            e.byte(4);
            e.proto(*proto);
            e.opt_pfx(prefix);
            e.opt_peer(from);
        }
        IoKind::RibInstall {
            proto,
            prefix,
            route,
        } => {
            e.byte(5);
            e.proto(*proto);
            e.pfx_sym(*prefix);
            e.opt_route(route);
        }
        IoKind::RibRemove { proto, prefix } => {
            e.byte(6);
            e.proto(*proto);
            e.pfx_sym(*prefix);
        }
        IoKind::FibInstall { prefix, action } => {
            e.byte(7);
            e.pfx_sym(*prefix);
            e.action(action);
        }
        IoKind::FibRemove { prefix } => {
            e.byte(8);
            e.pfx_sym(*prefix);
        }
        IoKind::SendAdvert {
            proto,
            prefix,
            to,
            route,
        } => {
            e.byte(9);
            e.proto(*proto);
            e.opt_pfx(prefix);
            e.opt_peer(to);
            e.opt_route(route);
        }
        IoKind::SendWithdraw { proto, prefix, to } => {
            e.byte(10);
            e.proto(*proto);
            e.opt_pfx(prefix);
            e.opt_peer(to);
        }
    }
    if let Some(ctx) = trace {
        ctx.encode_to(e.out);
    }
}

/// Cursor over an event body during decode.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    interns: &'a Interns,
}

impl<'a> Dec<'a> {
    fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32v(&mut self) -> Result<u32, WireError> {
        varint::read_u32(self.buf, &mut self.pos).ok_or(WireError::Truncated)
    }

    fn u64v(&mut self) -> Result<u64, WireError> {
        varint::read_u64(self.buf, &mut self.pos).ok_or(WireError::Truncated)
    }

    fn desc(&mut self) -> Result<String, WireError> {
        let sym = self.u32v()?;
        let bytes = self
            .interns
            .strings
            .resolve(sym)
            .ok_or(WireError::UnknownSymbol {
                space: SPACE_STRING,
                symbol: sym,
            })?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError::BadSymbolBytes("string"))
    }

    fn pfx(&mut self) -> Result<Ipv4Prefix, WireError> {
        let sym = self.u32v()?;
        let bytes = self
            .interns
            .prefixes
            .resolve(sym)
            .ok_or(WireError::UnknownSymbol {
                space: SPACE_PREFIX,
                symbol: sym,
            })?;
        prefix_from_bytes(bytes).ok_or(WireError::BadSymbolBytes("prefix"))
    }

    fn presence(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::BadTag(what, b)),
        }
    }

    fn opt_pfx(&mut self) -> Result<Option<Ipv4Prefix>, WireError> {
        Ok(if self.presence("prefix presence")? {
            Some(self.pfx()?)
        } else {
            None
        })
    }

    fn proto(&mut self) -> Result<Proto, WireError> {
        match self.byte()? {
            0 => Ok(Proto::Bgp),
            1 => Ok(Proto::Ospf),
            2 => Ok(Proto::Rip),
            3 => Ok(Proto::Eigrp),
            b => Err(WireError::BadTag("proto", b)),
        }
    }

    fn peer(&mut self) -> Result<PeerRef, WireError> {
        match self.byte()? {
            0 => Ok(PeerRef::Internal(RouterId(self.u32v()?))),
            1 => Ok(PeerRef::External(ExtPeerId(self.u32v()?))),
            b => Err(WireError::BadTag("peer", b)),
        }
    }

    fn opt_peer(&mut self) -> Result<Option<PeerRef>, WireError> {
        Ok(if self.presence("peer presence")? {
            Some(self.peer()?)
        } else {
            None
        })
    }

    fn route(&mut self) -> Result<BgpRoute, WireError> {
        let prefix = self.pfx()?;
        let next_hop = match self.byte()? {
            0 => NextHop::External(ExtPeerId(self.u32v()?)),
            1 => NextHop::Router(RouterId(self.u32v()?)),
            b => return Err(WireError::BadTag("next_hop", b)),
        };
        let local_pref = self.u32v()?;
        let n = self.u64v()? as usize;
        if n > self.buf.len() - self.pos.min(self.buf.len()) {
            // A length a damaged frame can't back: fail before allocating.
            return Err(WireError::Truncated);
        }
        let mut as_path = Vec::with_capacity(n);
        for _ in 0..n {
            as_path.push(AsNum(self.u32v()?));
        }
        let origin = match self.byte()? {
            0 => Origin::Igp,
            1 => Origin::Egp,
            2 => Origin::Incomplete,
            b => return Err(WireError::BadTag("origin", b)),
        };
        let med = self.u32v()?;
        let n = self.u64v()? as usize;
        if n > self.buf.len() - self.pos.min(self.buf.len()) {
            return Err(WireError::Truncated);
        }
        let mut communities = BTreeSet::new();
        for _ in 0..n {
            communities.insert(self.u32v()?);
        }
        let originator = RouterId(self.u32v()?);
        Ok(BgpRoute {
            prefix,
            next_hop,
            local_pref,
            as_path,
            origin,
            med,
            communities,
            originator,
        })
    }

    fn opt_route(&mut self) -> Result<Option<BgpRoute>, WireError> {
        Ok(if self.presence("route presence")? {
            Some(self.route()?)
        } else {
            None
        })
    }

    fn opt_blob(&mut self) -> Result<Option<cpvr_bgp::ConfigChange>, WireError> {
        if !self.presence("blob presence")? {
            return Ok(None);
        }
        let len = self.u64v()? as usize;
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let text = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| WireError::BadJson("config change"))?;
        self.pos = end;
        from_str::<cpvr_bgp::ConfigChange>(text)
            .map(Some)
            .map_err(|_| WireError::BadJson("config change"))
    }

    fn action(&mut self) -> Result<FibAction, WireError> {
        match self.byte()? {
            0 => Ok(FibAction::Forward(LinkId(self.u32v()?))),
            1 => Ok(FibAction::Exit(ExtPeerId(self.u32v()?))),
            2 => Ok(FibAction::Local),
            3 => Ok(FibAction::Drop),
            b => Err(WireError::BadTag("fib action", b)),
        }
    }

    fn opt_u32(&mut self, what: &'static str) -> Result<Option<u32>, WireError> {
        Ok(if self.presence(what)? {
            Some(self.u32v()?)
        } else {
            None
        })
    }
}

/// Decodes a v3 event payload, dropping any causal-trace trailer.
/// Equivalent to [`decode_event_traced`] minus the context.
pub fn decode_event(buf: &[u8], store: &InternStore) -> Result<(u64, IoEvent), WireError> {
    decode_event_traced(buf, store).map(|(seq, event, _)| (seq, event))
}

/// Decodes a v3 event payload (`varint seq` + body) against the symbol
/// tables in `store`, returning the causal-trace trailer when the
/// flags byte carries one (bit1). Strict: every byte must be consumed,
/// unknown flag bits are rejected.
///
/// The body's own router field selects which router's tables apply, so
/// one store serves a whole fleet (and a WAL series that interleaves
/// routers).
pub fn decode_event_traced(
    buf: &[u8],
    store: &InternStore,
) -> Result<(u64, IoEvent, Option<TraceCtx>), WireError> {
    let empty = Interns::new();
    let mut pos = 0;
    let seq = varint::read_u64(buf, &mut pos).ok_or(WireError::Truncated)?;
    let id = varint::read_u32(buf, &mut pos).ok_or(WireError::Truncated)?;
    let router = varint::read_u32(buf, &mut pos).ok_or(WireError::Truncated)?;
    let mut d = Dec {
        buf,
        pos,
        interns: store.of(router).unwrap_or(&empty),
    };
    let time = SimTime(d.u64v()?);
    let flags = d.byte()?;
    if flags & !0b11 != 0 {
        return Err(WireError::BadTag("event flags", flags));
    }
    let arrived_at = if flags & 1 != 0 {
        Some(SimTime(d.u64v()?))
    } else {
        None
    };
    let kind = match d.byte()? {
        0 => IoKind::ConfigChange {
            desc: d.desc()?,
            change: d.opt_blob()?,
            inverse: d.opt_blob()?,
        },
        1 => IoKind::SoftReconfig { desc: d.desc()? },
        2 => IoKind::LinkStatus {
            desc: d.desc()?,
            up: d.presence("link up")?,
            link: d.opt_u32("link presence")?.map(LinkId),
            peer: d.opt_u32("ext peer presence")?.map(ExtPeerId),
        },
        3 => IoKind::RecvAdvert {
            proto: d.proto()?,
            prefix: d.opt_pfx()?,
            from: d.opt_peer()?,
            route: d.opt_route()?,
        },
        4 => IoKind::RecvWithdraw {
            proto: d.proto()?,
            prefix: d.opt_pfx()?,
            from: d.opt_peer()?,
        },
        5 => IoKind::RibInstall {
            proto: d.proto()?,
            prefix: d.pfx()?,
            route: d.opt_route()?,
        },
        6 => IoKind::RibRemove {
            proto: d.proto()?,
            prefix: d.pfx()?,
        },
        7 => IoKind::FibInstall {
            prefix: d.pfx()?,
            action: d.action()?,
        },
        8 => IoKind::FibRemove { prefix: d.pfx()? },
        9 => IoKind::SendAdvert {
            proto: d.proto()?,
            prefix: d.opt_pfx()?,
            to: d.opt_peer()?,
            route: d.opt_route()?,
        },
        10 => IoKind::SendWithdraw {
            proto: d.proto()?,
            prefix: d.opt_pfx()?,
            to: d.opt_peer()?,
        },
        b => return Err(WireError::BadTag("io kind", b)),
    };
    let trace = if flags & 2 != 0 {
        let end = d
            .pos
            .checked_add(TRACE_CTX_WIRE_LEN)
            .ok_or(WireError::Truncated)?;
        if end > buf.len() {
            return Err(WireError::Truncated);
        }
        let ctx =
            TraceCtx::decode(&buf[d.pos..end]).ok_or(WireError::BadSymbolBytes("trace trailer"))?;
        d.pos = end;
        Some(ctx)
    } else {
        None
    };
    if d.pos != buf.len() {
        return Err(WireError::Trailing(buf.len() - d.pos));
    }
    Ok((
        seq,
        IoEvent {
            id: EventId(id),
            router: RouterId(router),
            time,
            arrived_at,
            kind,
        },
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_route(pfx: Ipv4Prefix) -> BgpRoute {
        BgpRoute {
            prefix: pfx,
            next_hop: NextHop::Router(RouterId(3)),
            local_pref: 200,
            as_path: vec![AsNum(65000), AsNum(65001)],
            origin: Origin::Igp,
            med: 17,
            communities: [65000u32, 12].into_iter().collect(),
            originator: RouterId(3),
        }
    }

    fn sample_events() -> Vec<IoEvent> {
        let p = Ipv4Prefix::from_bits(0x0a000000, 24);
        let q = Ipv4Prefix::from_bits(0xc0a80000, 16);
        let mk = |id: u32, kind: IoKind| IoEvent {
            id: EventId(id),
            router: RouterId(2),
            time: SimTime(1_000 + u64::from(id) * 300),
            arrived_at: id.is_multiple_of(2).then(|| SimTime(2_000 + u64::from(id))),
            kind,
        };
        vec![
            mk(
                0,
                IoKind::SoftReconfig {
                    desc: "clear ip bgp * soft".into(),
                },
            ),
            mk(
                1,
                IoKind::LinkStatus {
                    desc: "link 4 down".into(),
                    up: false,
                    link: Some(LinkId(4)),
                    peer: None,
                },
            ),
            mk(
                2,
                IoKind::RecvAdvert {
                    proto: Proto::Bgp,
                    prefix: Some(p),
                    from: Some(PeerRef::External(ExtPeerId(7))),
                    route: Some(sample_route(p)),
                },
            ),
            mk(
                3,
                IoKind::RecvWithdraw {
                    proto: Proto::Bgp,
                    prefix: Some(q),
                    from: Some(PeerRef::Internal(RouterId(1))),
                },
            ),
            mk(
                4,
                IoKind::RibInstall {
                    proto: Proto::Bgp,
                    prefix: p,
                    route: Some(sample_route(p)),
                },
            ),
            mk(
                5,
                IoKind::RibRemove {
                    proto: Proto::Ospf,
                    prefix: q,
                },
            ),
            mk(
                6,
                IoKind::FibInstall {
                    prefix: p,
                    action: FibAction::Forward(LinkId(2)),
                },
            ),
            mk(7, IoKind::FibRemove { prefix: q }),
            mk(
                8,
                IoKind::SendAdvert {
                    proto: Proto::Bgp,
                    prefix: Some(p),
                    to: Some(PeerRef::Internal(RouterId(0))),
                    route: None,
                },
            ),
            mk(
                9,
                IoKind::SendWithdraw {
                    proto: Proto::Eigrp,
                    prefix: None,
                    to: None,
                },
            ),
        ]
    }

    fn store_from(defs: &[InternDef]) -> InternStore {
        let mut store = InternStore::new();
        for d in defs {
            assert!(store.apply(d.router, d.space, d.symbol, &d.bytes));
        }
        store
    }

    #[test]
    fn events_roundtrip_through_the_binary_body() {
        let mut interns = Interns::new();
        let mut defs = Vec::new();
        for (i, event) in sample_events().iter().enumerate() {
            let mut body = Vec::new();
            encode_event(i as u64, event, &mut interns, &mut defs, &mut body);
            let store = store_from(&defs);
            let (seq, back) = decode_event(&body, &store).expect("decode");
            assert_eq!(seq, i as u64);
            assert_eq!(&back, event);
            // Re-encoding with warm tables is deterministic and adds no
            // fresh definitions.
            let before = defs.len();
            let mut body2 = Vec::new();
            encode_event(i as u64, event, &mut interns, &mut defs, &mut body2);
            assert_eq!(defs.len(), before);
            assert_eq!(body2, body, "re-encode is deterministic");
        }
    }

    #[test]
    fn second_use_of_a_symbol_emits_no_definition() {
        let mut interns = Interns::new();
        let mut defs = Vec::new();
        let e = &sample_events()[6]; // FibInstall: one prefix symbol
        let mut body = Vec::new();
        encode_event(0, e, &mut interns, &mut defs, &mut body);
        let n = defs.len();
        assert!(n >= 1);
        let mut body2 = Vec::new();
        encode_event(1, e, &mut interns, &mut defs, &mut body2);
        assert_eq!(defs.len(), n, "no fresh definitions on reuse");
    }

    #[test]
    fn undefined_symbols_are_rejected_not_guessed() {
        let mut interns = Interns::new();
        let mut defs = Vec::new();
        let mut body = Vec::new();
        encode_event(0, &sample_events()[7], &mut interns, &mut defs, &mut body);
        // Decoding without the definitions must fail cleanly.
        let empty = InternStore::new();
        match decode_event(&body, &empty) {
            Err(WireError::UnknownSymbol { .. }) => {}
            other => panic!("expected UnknownSymbol, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors() {
        let mut interns = Interns::new();
        let mut defs = Vec::new();
        let mut body = Vec::new();
        encode_event(7, &sample_events()[2], &mut interns, &mut defs, &mut body);
        let store = store_from(&defs);
        for cut in 0..body.len() {
            assert!(
                decode_event(&body[..cut], &store).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut padded = body.clone();
        padded.push(0);
        assert_eq!(
            decode_event(&padded, &store),
            Err(WireError::Trailing(1)),
            "trailing bytes must fail"
        );
    }

    #[test]
    fn config_change_blobs_roundtrip() {
        // ConfigChange payloads ride as embedded JSON; make sure the
        // whole event still roundtrips.
        let desc = "policy update".to_string();
        let e = IoEvent {
            id: EventId(42),
            router: RouterId(0),
            time: SimTime(123_456_789),
            arrived_at: Some(SimTime(123_456_999)),
            kind: IoKind::ConfigChange {
                desc,
                change: None,
                inverse: None,
            },
        };
        let mut interns = Interns::new();
        let mut defs = Vec::new();
        let mut body = Vec::new();
        encode_event(9, &e, &mut interns, &mut defs, &mut body);
        let store = store_from(&defs);
        let (seq, back) = decode_event(&body, &store).expect("decode");
        assert_eq!(seq, 9);
        assert_eq!(back, e);
    }

    #[test]
    fn trace_trailer_roundtrips_and_untraced_bytes_are_unchanged() {
        let mut interns = Interns::new();
        let mut defs = Vec::new();
        for (i, event) in sample_events().iter().enumerate() {
            let ctx = TraceCtx::for_flight(77, i as u64).child(1);
            let mut traced = Vec::new();
            encode_event_traced(
                i as u64,
                event,
                Some(ctx),
                &mut interns,
                &mut defs,
                &mut traced,
            );
            let store = store_from(&defs);
            let (seq, back, trace) = decode_event_traced(&traced, &store).expect("decode traced");
            assert_eq!(seq, i as u64);
            assert_eq!(&back, event);
            assert_eq!(trace, Some(ctx));
            // The untraced decoder still accepts the traced body.
            assert_eq!(decode_event(&traced, &store).expect("compat").1, *event);

            // Untraced encoding is byte-identical across both entry
            // points (old WALs / old peers keep decoding).
            let mut plain = Vec::new();
            encode_event(i as u64, event, &mut interns, &mut defs, &mut plain);
            let mut plain2 = Vec::new();
            encode_event_traced(i as u64, event, None, &mut interns, &mut defs, &mut plain2);
            assert_eq!(plain, plain2);
            let (_, _, no_trace) = decode_event_traced(&plain, &store).expect("decode plain");
            assert_eq!(no_trace, None);
            assert_eq!(traced.len(), plain.len() + TRACE_CTX_WIRE_LEN);
        }
    }

    #[test]
    fn bad_flags_and_truncated_trailers_are_rejected() {
        let mut interns = Interns::new();
        let mut defs = Vec::new();
        let e = &sample_events()[0];
        let ctx = TraceCtx::for_flight(1, 2);
        let mut body = Vec::new();
        encode_event_traced(3, e, Some(ctx), &mut interns, &mut defs, &mut body);
        let store = store_from(&defs);
        // Chop the trailer: every cut inside it must fail.
        for cut in (body.len() - TRACE_CTX_WIRE_LEN)..body.len() {
            assert!(decode_event_traced(&body[..cut], &store).is_err());
        }
        // An unknown flag bit is a malformed frame, not a guess.
        let mut plain = Vec::new();
        encode_event(3, e, &mut interns, &mut defs, &mut plain);
        // flags byte sits after varint seq·id·router·time; find it by
        // re-encoding with bit1 set and diffing.
        let mut diff = None;
        for (i, (a, b)) in plain.iter().zip(body.iter()).enumerate() {
            if a != b {
                diff = Some(i);
                break;
            }
        }
        let flag_pos = diff.expect("flags byte differs");
        let mut bad = plain.clone();
        bad[flag_pos] |= 0b100;
        assert!(matches!(
            decode_event_traced(&bad, &store),
            Err(WireError::BadTag("event flags", _))
        ));
    }

    #[test]
    fn intern_defs_roundtrip_as_frame_payloads() {
        let def = InternDef {
            router: 5,
            space: SPACE_PREFIX,
            symbol: 12,
            bytes: vec![24, 10, 0, 0, 0],
        };
        let mut buf = Vec::new();
        encode_intern_def(&def, &mut buf);
        assert_eq!(decode_intern_def(&buf).expect("decode"), def);
        for cut in 0..buf.len() {
            assert!(decode_intern_def(&buf[..cut]).is_err());
        }
        buf.push(0);
        assert!(matches!(
            decode_intern_def(&buf),
            Err(WireError::Trailing(1))
        ));
    }
}
