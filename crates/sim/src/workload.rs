//! Workload generators for benchmarks and large-scale experiments.

use cpvr_topo::builder::TopologyBuilder;
use cpvr_topo::{ExtPeerId, Topology};
use cpvr_types::{AsNum, Ipv4Prefix, RouterId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` disjoint /24 prefixes under `100.0.0.0/8` — a synthetic external
/// routing table.
pub fn prefix_block(n: usize) -> Vec<Ipv4Prefix> {
    assert!(n <= 65536, "only 2^16 /24s under a /8");
    (0..n as u32)
        .map(|i| Ipv4Prefix::from_bits(u32::from_be_bytes([100, (i >> 8) as u8, i as u8, 0]), 24))
        .collect()
}

/// Assigns each prefix to one of `classes` policy classes. Prefixes in
/// the same class receive identical treatment everywhere, so the
/// verifier's equivalence-class slicing should discover ≈`classes`
/// classes — the §6 observation (citing [7]) that even 100K-prefix
/// networks have <15 ECs.
///
/// Returns `class_of[prefix_index] ∈ 0..classes`, assigned with a skewed
/// distribution (most prefixes in few classes, like real policy data).
pub fn policy_classes(n_prefixes: usize, classes: usize, seed: u64) -> Vec<usize> {
    assert!(classes >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_prefixes)
        .map(|_| {
            // Geometric-ish skew: class k gets ~2^-k of the mass.
            let mut k = 0;
            while k + 1 < classes && rng.gen_bool(0.5) {
                k += 1;
            }
            k
        })
        .collect()
}

/// A random connected topology: a uniform spanning tree plus `extra`
/// random additional links, with `uplinks` external peers attached to
/// random routers. Unit IGP costs.
pub fn random_topology(
    n: usize,
    extra: usize,
    uplinks: usize,
    seed: u64,
) -> (Topology, Vec<ExtPeerId>) {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new(AsNum(65000));
    let ids: Vec<RouterId> = (0..n).map(|i| b.router(&format!("R{}", i + 1))).collect();
    // Random spanning tree: attach each new node to a random earlier one.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        b.link(ids[i], ids[j], 10);
    }
    // Extra links between distinct random pairs (skip duplicates
    // opportunistically; parallel links are legal but unhelpful here).
    let mut added = 0;
    let mut guard = 0;
    while added < extra && guard < extra * 20 + 20 {
        guard += 1;
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            b.link(ids[i], ids[j], 10);
            added += 1;
        }
    }
    let peers: Vec<ExtPeerId> = (0..uplinks)
        .map(|k| {
            let r = ids[rng.gen_range(0..n)];
            b.external_peer(&format!("Up{k}"), AsNum(100 + k as u32), r)
        })
        .collect();
    (b.build(), peers)
}

/// A deterministic churn plan: a sequence of `(time offset in ms, peer
/// index, prefix index, announce?)` tuples for stress runs.
pub fn churn_plan(
    events: usize,
    n_peers: usize,
    n_prefixes: usize,
    seed: u64,
) -> Vec<(u64, usize, usize, bool)> {
    assert!(n_peers > 0 && n_prefixes > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0u64;
    (0..events)
        .map(|_| {
            t += rng.gen_range(1..50);
            (
                t,
                rng.gen_range(0..n_peers),
                rng.gen_range(0..n_prefixes),
                rng.gen_bool(0.7),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_block_disjoint() {
        let ps = prefix_block(300);
        assert_eq!(ps.len(), 300);
        for w in ps.windows(2) {
            assert!(!w[0].overlaps(&w[1]));
        }
        // All under 100.0.0.0/8.
        let root: Ipv4Prefix = "100.0.0.0/8".parse().unwrap();
        assert!(ps.iter().all(|p| root.covers(p)));
    }

    #[test]
    fn policy_classes_in_range_and_skewed() {
        let classes = policy_classes(10_000, 8, 42);
        assert_eq!(classes.len(), 10_000);
        assert!(classes.iter().all(|c| *c < 8));
        // Class 0 should hold roughly half the prefixes.
        let c0 = classes.iter().filter(|c| **c == 0).count();
        assert!((4000..6000).contains(&c0), "skew off: {c0}");
    }

    #[test]
    fn random_topology_is_connected() {
        for seed in 0..5 {
            let (topo, peers) = random_topology(20, 10, 3, seed);
            assert_eq!(topo.num_routers(), 20);
            assert_eq!(peers.len(), 3);
            assert!(cpvr_topo::graph::is_connected(&topo));
        }
    }

    #[test]
    fn churn_plan_is_monotonic_and_deterministic() {
        let a = churn_plan(100, 2, 50, 7);
        let b = churn_plan(100, 2, 50, 7);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    #[should_panic]
    fn too_many_prefixes_panics() {
        prefix_block(70_000);
    }
}
