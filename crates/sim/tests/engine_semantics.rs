//! Tests of the simulation engine's control surface: partial runs, the
//! FIB gate lifecycle, and trace accounting.

use cpvr_sim::scenario::paper_scenario;
use cpvr_sim::{CaptureProfile, IoKind, LatencyProfile};
use cpvr_types::{RouterId, SimTime};

const MAX_EVENTS: usize = 300_000;

#[test]
fn run_until_stops_at_the_horizon_and_resumes() {
    let mut s = paper_scenario(LatencyProfile::cisco(), CaptureProfile::ideal(), 55);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    let t0 = s.sim.now();
    // Announcement propagates over ~tens of ms under the cisco profile;
    // run only 1 ms past the injection.
    s.sim
        .schedule_ext_announce(t0 + SimTime::from_millis(5), s.ext_r1, &[s.prefix]);
    s.sim.run_until(t0 + SimTime::from_millis(6));
    assert_eq!(s.sim.now(), t0 + SimTime::from_millis(6));
    assert!(!s.sim.is_quiescent(), "propagation must still be in flight");
    let mid_events = s.sim.trace().len();
    // No event in the trace is stamped beyond... events may carry later
    // stamps (RIB/FIB latencies are scheduled ahead), but nothing should
    // be later than horizon + the max processing pipeline (~seconds).
    s.sim.run_to_quiescence(MAX_EVENTS);
    assert!(s.sim.is_quiescent());
    assert!(
        s.sim.trace().len() > mid_events,
        "resume must process the rest"
    );
    // Full convergence reached despite the split run.
    let t = s
        .sim
        .dataplane()
        .trace(s.sim.topology(), RouterId(2), "8.8.8.8".parse().unwrap());
    assert!(t.outcome.is_delivered());
}

#[test]
fn split_runs_equal_single_run() {
    let build = || {
        let mut s = paper_scenario(LatencyProfile::cisco(), CaptureProfile::syslog(), 56);
        s.sim.start();
        s.sim.run_to_quiescence(MAX_EVENTS);
        s.sim
            .schedule_ext_announce(s.sim.now() + SimTime::from_millis(5), s.ext_r1, &[s.prefix]);
        s.sim.schedule_ext_announce(
            s.sim.now() + SimTime::from_millis(200),
            s.ext_r2,
            &[s.prefix],
        );
        s
    };
    let mut a = build();
    a.sim.run_to_quiescence(MAX_EVENTS);
    let mut b = build();
    // Drive b in small steps instead.
    for i in 1..200 {
        b.sim
            .run_until(b.sim.now() + SimTime::from_millis(i % 7 + 1));
    }
    b.sim.run_to_quiescence(MAX_EVENTS);
    assert_eq!(a.sim.trace().render(), b.sim.trace().render());
}

#[test]
fn gate_lifecycle() {
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), 57);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    // Block everything for P, announce, confirm blocked; then clear and
    // re-announce on the other uplink: updates flow again.
    let p = s.prefix;
    s.sim.set_fib_gate(Box::new(move |u| u.prefix != p));
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
    s.sim.run_to_quiescence(MAX_EVENTS);
    let blocked = s.sim.blocked_updates().len();
    assert!(blocked > 0);
    assert!(s
        .sim
        .dataplane()
        .fib(RouterId(0))
        .lookup("8.8.8.8".parse().unwrap())
        .is_none());
    s.sim.clear_fib_gate();
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r2, &[s.prefix]);
    s.sim.run_to_quiescence(MAX_EVENTS);
    assert_eq!(
        s.sim.blocked_updates().len(),
        blocked,
        "no new blocks after clearing"
    );
    let t = s
        .sim
        .dataplane()
        .trace(s.sim.topology(), RouterId(2), "8.8.8.8".parse().unwrap());
    assert!(t.outcome.is_delivered());
}

#[test]
fn trace_event_ids_are_dense_and_ordered_by_capture() {
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), 58);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    for (i, e) in s.sim.trace().events.iter().enumerate() {
        assert_eq!(e.id.index(), i, "ids must be dense indices");
    }
}

#[test]
fn soft_reconfig_follows_every_config_entry() {
    let mut s = paper_scenario(LatencyProfile::cisco(), CaptureProfile::ideal(), 59);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    for i in 0..3u64 {
        let change = cpvr_bgp::ConfigChange::SetAddPath(i % 2 == 0);
        s.sim.schedule_config(
            s.sim.now() + SimTime::from_secs(i * 40 + 1),
            RouterId(1),
            change,
        );
    }
    s.sim.run_to_quiescence(MAX_EVENTS);
    let configs = s
        .sim
        .trace()
        .events
        .iter()
        .filter(|e| {
            matches!(
                &e.kind,
                IoKind::ConfigChange {
                    change: Some(_),
                    ..
                }
            )
        })
        .count();
    let softs = s
        .sim
        .trace()
        .events
        .iter()
        .filter(|e| matches!(e.kind, IoKind::SoftReconfig { .. }))
        .count();
    assert_eq!(configs, 3);
    assert_eq!(softs, 3, "each entered change is applied exactly once");
}
