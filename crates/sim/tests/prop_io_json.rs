//! Round-trip property test for the captured-event encoding: for every
//! [`IoKind`] variant, `IoEvent -> ToJson -> render -> parse -> FromJson`
//! must be the identity. The collector's wire codec and its write-ahead
//! log both persist events in exactly this encoding, so any asymmetry
//! here silently corrupts recovered state.

use cpvr_bgp::{
    BgpRoute, Clause, ConfigChange, MatchCond, NextHop, Origin, PeerRef, RouteMap, SessionCfg,
    SetAction,
};
use cpvr_dataplane::FibAction;
use cpvr_sim::{EventId, IoEvent, IoKind, Proto};
use cpvr_topo::{ExtPeerId, LinkId};
use cpvr_types::json::{from_str, to_string_compact, to_string_pretty};
use cpvr_types::{AsNum, Ipv4Prefix, RouterId, SimTime};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Ipv4Prefix::from_bits(bits, len))
}

fn arb_proto() -> impl Strategy<Value = Proto> {
    prop_oneof![
        Just(Proto::Bgp),
        Just(Proto::Ospf),
        Just(Proto::Rip),
        Just(Proto::Eigrp),
    ]
}

fn arb_peer() -> impl Strategy<Value = PeerRef> {
    prop_oneof![
        (0u32..16).prop_map(|r| PeerRef::Internal(RouterId(r))),
        (0u32..16).prop_map(|p| PeerRef::External(ExtPeerId(p))),
    ]
}

fn arb_fib_action() -> impl Strategy<Value = FibAction> {
    prop_oneof![
        (0u32..8).prop_map(|l| FibAction::Forward(LinkId(l))),
        (0u32..8).prop_map(|p| FibAction::Exit(ExtPeerId(p))),
        Just(FibAction::Local),
        Just(FibAction::Drop),
    ]
}

fn arb_route() -> impl Strategy<Value = BgpRoute> {
    (
        arb_prefix(),
        prop_oneof![
            (0u32..16).prop_map(|p| NextHop::External(ExtPeerId(p))),
            (0u32..16).prop_map(|r| NextHop::Router(RouterId(r))),
        ],
        any::<u32>(),
        prop::collection::vec((1u32..65536).prop_map(AsNum), 0..4),
        prop_oneof![
            Just(Origin::Igp),
            Just(Origin::Egp),
            Just(Origin::Incomplete)
        ],
        any::<u32>(),
        prop::collection::vec(any::<u32>(), 0..4),
        0u32..16,
    )
        .prop_map(
            |(prefix, next_hop, local_pref, as_path, origin, med, comms, originator)| BgpRoute {
                prefix,
                next_hop,
                local_pref,
                as_path,
                origin,
                med,
                communities: comms.into_iter().collect::<BTreeSet<u32>>(),
                originator: RouterId(originator),
            },
        )
}

fn arb_match_cond() -> impl Strategy<Value = MatchCond> {
    prop_oneof![
        arb_prefix().prop_map(MatchCond::PrefixIn),
        arb_prefix().prop_map(MatchCond::PrefixEq),
        any::<u32>().prop_map(MatchCond::HasCommunity),
        (1u32..65536).prop_map(|a| MatchCond::AsPathContains(AsNum(a))),
        (0usize..10).prop_map(MatchCond::AsPathLenAtMost),
    ]
}

fn arb_set_action() -> impl Strategy<Value = SetAction> {
    prop_oneof![
        any::<u32>().prop_map(SetAction::LocalPref),
        any::<u32>().prop_map(SetAction::Med),
        any::<u32>().prop_map(SetAction::AddCommunity),
        any::<u32>().prop_map(SetAction::RemoveCommunity),
        ((1u32..65536).prop_map(AsNum), 0usize..4).prop_map(|(a, n)| SetAction::Prepend(a, n)),
    ]
}

fn arb_route_map() -> impl Strategy<Value = RouteMap> {
    prop::collection::vec(
        (
            prop::collection::vec(arb_match_cond(), 0..3),
            any::<bool>(),
            prop::collection::vec(arb_set_action(), 0..3),
        )
            .prop_map(|(matches, permit, sets)| Clause {
                matches,
                permit,
                sets,
            }),
        0..3,
    )
    .prop_map(|clauses| RouteMap { clauses })
}

fn arb_config_change() -> impl Strategy<Value = ConfigChange> {
    prop_oneof![
        (arb_peer(), arb_route_map()).prop_map(|(peer, map)| ConfigChange::SetImport { peer, map }),
        (arb_peer(), arb_route_map()).prop_map(|(peer, map)| ConfigChange::SetExport { peer, map }),
        (arb_peer(), any::<u32>())
            .prop_map(|(peer, weight)| ConfigChange::SetWeight { peer, weight }),
        any::<bool>().prop_map(ConfigChange::SetAddPath),
        (
            arb_peer(),
            arb_route_map(),
            arb_route_map(),
            any::<u32>(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(peer, import, export, weight, ebgp, rr_client)| {
                ConfigChange::AddSession(SessionCfg {
                    peer,
                    import,
                    export,
                    weight,
                    ebgp,
                    rr_client,
                })
            }),
        arb_peer().prop_map(ConfigChange::RemoveSession),
    ]
}

/// Short printable strings, including characters the JSON writer must
/// escape.
fn arb_desc() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('0'),
            Just(' '),
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('\t'),
            Just('é'),
            Just('→'),
        ],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// One strategy per [`IoKind`] variant — every arm of the enum is
/// guaranteed coverage because `prop_oneof!` picks arms uniformly and we
/// run hundreds of cases.
fn arb_kind() -> impl Strategy<Value = IoKind> {
    prop_oneof![
        (
            arb_desc(),
            prop::option::of(arb_config_change()),
            prop::option::of(arb_config_change())
        )
            .prop_map(|(desc, change, inverse)| IoKind::ConfigChange {
                desc,
                change,
                inverse
            }),
        arb_desc().prop_map(|desc| IoKind::SoftReconfig { desc }),
        (
            arb_desc(),
            any::<bool>(),
            prop::option::of((0u32..8).prop_map(LinkId)),
            prop::option::of((0u32..8).prop_map(ExtPeerId))
        )
            .prop_map(|(desc, up, link, peer)| IoKind::LinkStatus {
                desc,
                up,
                link,
                peer
            }),
        (
            arb_proto(),
            prop::option::of(arb_prefix()),
            prop::option::of(arb_peer()),
            prop::option::of(arb_route())
        )
            .prop_map(|(proto, prefix, from, route)| IoKind::RecvAdvert {
                proto,
                prefix,
                from,
                route
            }),
        (
            arb_proto(),
            prop::option::of(arb_prefix()),
            prop::option::of(arb_peer())
        )
            .prop_map(|(proto, prefix, from)| IoKind::RecvWithdraw {
                proto,
                prefix,
                from
            }),
        (arb_proto(), arb_prefix(), prop::option::of(arb_route())).prop_map(
            |(proto, prefix, route)| IoKind::RibInstall {
                proto,
                prefix,
                route
            }
        ),
        (arb_proto(), arb_prefix()).prop_map(|(proto, prefix)| IoKind::RibRemove { proto, prefix }),
        (arb_prefix(), arb_fib_action())
            .prop_map(|(prefix, action)| IoKind::FibInstall { prefix, action }),
        arb_prefix().prop_map(|prefix| IoKind::FibRemove { prefix }),
        (
            arb_proto(),
            prop::option::of(arb_prefix()),
            prop::option::of(arb_peer()),
            prop::option::of(arb_route())
        )
            .prop_map(|(proto, prefix, to, route)| IoKind::SendAdvert {
                proto,
                prefix,
                to,
                route
            }),
        (
            arb_proto(),
            prop::option::of(arb_prefix()),
            prop::option::of(arb_peer())
        )
            .prop_map(|(proto, prefix, to)| IoKind::SendWithdraw { proto, prefix, to }),
    ]
}

fn arb_event() -> impl Strategy<Value = IoEvent> {
    (
        any::<u32>(),
        0u32..64,
        any::<u64>(),
        prop::option::of(any::<u64>()),
        arb_kind(),
    )
        .prop_map(|(id, router, t, arrived, kind)| IoEvent {
            id: EventId(id),
            router: RouterId(router),
            time: SimTime::from_nanos(t),
            arrived_at: arrived.map(SimTime::from_nanos),
            kind,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn io_event_json_roundtrip_is_identity(e in arb_event()) {
        let text = to_string_pretty(&e);
        let back: IoEvent = from_str(&text).expect("own output must parse");
        prop_assert_eq!(&back, &e);
        // The compact rendering (the collector's wire/WAL encoding)
        // must round-trip identically too.
        let compact = to_string_compact(&e);
        let back: IoEvent = from_str(&compact).expect("compact output must parse");
        prop_assert_eq!(back, e);
    }
}

/// Deterministic belt-and-braces coverage: one hand-built event per
/// `IoKind` variant, so a regression in any single variant fails by name
/// even if the random generator were biased.
#[test]
fn every_variant_roundtrips() {
    let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    let route = BgpRoute {
        prefix: p,
        next_hop: NextHop::Router(RouterId(1)),
        local_pref: 200,
        as_path: vec![AsNum(65001), AsNum(65002)],
        origin: Origin::Igp,
        med: 5,
        communities: [7u32, 8].into_iter().collect(),
        originator: RouterId(2),
    };
    let change = ConfigChange::SetWeight {
        peer: PeerRef::Internal(RouterId(0)),
        weight: 50,
    };
    let kinds = vec![
        IoKind::ConfigChange {
            desc: "set \"weight\"\n".into(),
            change: Some(change.clone()),
            inverse: Some(change),
        },
        IoKind::SoftReconfig {
            desc: "re-run".into(),
        },
        IoKind::LinkStatus {
            desc: "L0 down".into(),
            up: false,
            link: Some(LinkId(0)),
            peer: Some(ExtPeerId(1)),
        },
        IoKind::RecvAdvert {
            proto: Proto::Bgp,
            prefix: Some(p),
            from: Some(PeerRef::External(ExtPeerId(0))),
            route: Some(route.clone()),
        },
        IoKind::RecvWithdraw {
            proto: Proto::Rip,
            prefix: Some(p),
            from: Some(PeerRef::Internal(RouterId(1))),
        },
        IoKind::RibInstall {
            proto: Proto::Bgp,
            prefix: p,
            route: Some(route.clone()),
        },
        IoKind::RibRemove {
            proto: Proto::Ospf,
            prefix: p,
        },
        IoKind::FibInstall {
            prefix: p,
            action: FibAction::Forward(LinkId(2)),
        },
        IoKind::FibRemove { prefix: p },
        IoKind::SendAdvert {
            proto: Proto::Bgp,
            prefix: Some(p),
            to: Some(PeerRef::Internal(RouterId(2))),
            route: Some(route),
        },
        IoKind::SendWithdraw {
            proto: Proto::Eigrp,
            prefix: None,
            to: None,
        },
    ];
    for (i, kind) in kinds.into_iter().enumerate() {
        let e = IoEvent {
            id: EventId(i as u32),
            router: RouterId(i as u32 % 3),
            time: SimTime::from_micros(i as u64 * 17),
            arrived_at: (i % 2 == 0).then(|| SimTime::from_micros(i as u64 * 17 + 3)),
            kind,
        };
        let text = to_string_pretty(&e);
        let back: IoEvent = from_str(&text).unwrap_or_else(|err| panic!("variant {i}: {err}"));
        assert_eq!(back, e, "variant {i}");
        let compact = to_string_compact(&e);
        let back: IoEvent =
            from_str(&compact).unwrap_or_else(|err| panic!("variant {i} compact: {err}"));
        assert_eq!(back, e, "variant {i} compact");
    }
}
