//! Property-based tests of the simulator's foundational guarantees:
//! determinism, causal timestamps, and FIFO capture export.

use cpvr_sim::scenario::{paper_scenario, two_exit_scenario};
use cpvr_sim::{CaptureProfile, LatencyProfile, Simulation};
use cpvr_types::{RouterId, SimTime};
use proptest::prelude::*;

const MAX_EVENTS: usize = 300_000;

/// A small scripted scenario driven by proptest inputs.
fn run_script(seed: u64, delays: &[u16], fail_link: bool) -> Simulation {
    let (mut sim, left, right) =
        two_exit_scenario(4, LatencyProfile::cisco(), CaptureProfile::syslog(), seed);
    sim.start();
    sim.run_to_quiescence(MAX_EVENTS);
    let p = "8.8.8.0/24".parse().unwrap();
    let mut t = sim.now();
    for (i, d) in delays.iter().enumerate() {
        t += SimTime::from_millis(*d as u64 + 1);
        let peer = if i % 2 == 0 { left } else { right };
        sim.schedule_ext_announce(t, peer, &[p]);
    }
    if fail_link {
        let l = sim
            .topology()
            .link_between(RouterId(1), RouterId(2))
            .unwrap()
            .id;
        sim.schedule_link_change(t + SimTime::from_millis(5), l, false);
    }
    sim.run_to_quiescence(MAX_EVENTS);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn identical_runs_are_bit_identical(seed in 0u64..1000, delays in prop::collection::vec(0u16..200, 1..5), fail in any::<bool>()) {
        let a = run_script(seed, &delays, fail);
        let b = run_script(seed, &delays, fail);
        prop_assert_eq!(a.trace().render(), b.trace().render());
        prop_assert_eq!(a.trace().truth_edges.clone(), b.trace().truth_edges.clone());
    }

    #[test]
    fn truth_edges_never_go_backward_in_time(seed in 0u64..1000, delays in prop::collection::vec(0u16..200, 1..5), fail in any::<bool>()) {
        let sim = run_script(seed, &delays, fail);
        let tr = sim.trace();
        for (a, b) in &tr.truth_edges {
            prop_assert!(tr.events[a.index()].time <= tr.events[b.index()].time);
        }
    }

    #[test]
    fn fifo_export_is_monotone_per_router(seed in 0u64..1000, delays in prop::collection::vec(0u16..200, 1..4)) {
        let sim = run_script(seed, &delays, false);
        let tr = sim.trace();
        let eff = tr.effective_arrivals();
        // Per router, in event-time order, effective arrivals never
        // decrease.
        for r in 0..sim.topology().num_routers() as u32 {
            let mut events: Vec<_> = tr
                .events
                .iter()
                .filter(|e| e.router == RouterId(r))
                .collect();
            events.sort_by_key(|e| (e.time, e.id));
            let mut last: Option<SimTime> = None;
            for e in events {
                if let Some(a) = eff[e.id.index()] {
                    if let Some(l) = last {
                        prop_assert!(a >= l, "router R{} arrival regressed", r + 1);
                    }
                    last = Some(a);
                }
            }
        }
    }

    #[test]
    fn capture_never_precedes_the_event(seed in 0u64..1000) {
        let mut s = paper_scenario(LatencyProfile::cisco(), CaptureProfile::syslog(), seed);
        s.sim.start();
        s.sim.run_to_quiescence(MAX_EVENTS);
        s.sim.schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
        s.sim.run_to_quiescence(MAX_EVENTS);
        for e in &s.sim.trace().events {
            if let Some(a) = e.arrived_at {
                prop_assert!(a >= e.time, "a log record cannot arrive before it exists");
            }
        }
    }

    #[test]
    fn different_seeds_differ_in_timing(seed in 0u64..500) {
        let a = run_script(seed, &[10, 20], false);
        let b = run_script(seed + 1000, &[10, 20], false);
        // Jitter must actually jitter: two different seeds give different
        // timelines (the *logical* outcome still converges identically).
        prop_assert_ne!(a.trace().render(), b.trace().render());
    }
}
