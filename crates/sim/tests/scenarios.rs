//! End-to-end simulator tests reproducing the paper's scenarios.

use cpvr_bgp::{ConfigChange, PeerRef, RouteMap, SetAction};
use cpvr_dataplane::TraceOutcome;
use cpvr_sim::scenario::{paper_scenario, two_exit_scenario};
use cpvr_sim::{CaptureProfile, IoKind, LatencyProfile, Proto};
use cpvr_types::{RouterId, SimTime};
use std::net::Ipv4Addr;

const DST: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
const MAX_EVENTS: usize = 200_000;

/// Boots the paper scenario, converges the IGP, and announces P on both
/// uplinks (R1 first, then R2 — the Fig. 1a → 1b sequence).
fn converged_paper() -> cpvr_sim::scenario::PaperScenario {
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), 7);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(10),
        s.ext_r1,
        &[s.prefix],
    );
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(500),
        s.ext_r2,
        &[s.prefix],
    );
    s.sim.run_to_quiescence(MAX_EVENTS);
    s
}

#[test]
fn fig1a_then_fig1b_traffic_exits_via_r2() {
    let s = converged_paper();
    // All three routers must deliver traffic for P out the R2 uplink.
    for r in 0..3u32 {
        let t = s.sim.dataplane().trace(s.sim.topology(), RouterId(r), DST);
        assert_eq!(
            t.outcome,
            TraceOutcome::Exited(s.ext_r2),
            "R{} path: {:?}",
            r + 1,
            t.router_path()
        );
    }
    // R3 forwards via R2, not R1.
    let t3 = s.sim.dataplane().trace(s.sim.topology(), RouterId(2), DST);
    assert_eq!(t3.router_path(), vec![RouterId(2), RouterId(1)]);
}

#[test]
fn fig1a_intermediate_state_via_r1() {
    // Before R2's uplink announces, everyone exits via R1 (Fig. 1a).
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), 7);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(10),
        s.ext_r1,
        &[s.prefix],
    );
    s.sim.run_to_quiescence(MAX_EVENTS);
    for r in 0..3u32 {
        let t = s.sim.dataplane().trace(s.sim.topology(), RouterId(r), DST);
        assert_eq!(t.outcome, TraceOutcome::Exited(s.ext_r1), "R{}", r + 1);
    }
}

#[test]
fn fig2a_bad_localpref_shifts_exit_to_r1() {
    let mut s = converged_paper();
    // The ill-considered change: LP 10 on R2's uplink import.
    let change = ConfigChange::SetImport {
        peer: PeerRef::External(s.ext_r2),
        map: RouteMap::set_all(vec![SetAction::LocalPref(10)]),
    };
    s.sim
        .schedule_config(s.sim.now() + SimTime::from_millis(10), RouterId(1), change);
    s.sim.run_to_quiescence(MAX_EVENTS);
    // Policy violated: traffic now exits via R1 although R2's uplink is up.
    for r in 0..3u32 {
        let t = s.sim.dataplane().trace(s.sim.topology(), RouterId(r), DST);
        assert_eq!(t.outcome, TraceOutcome::Exited(s.ext_r1), "R{}", r + 1);
    }
}

#[test]
fn fig2b_blocking_fib_updates_blackholes_after_withdrawal() {
    let mut s = converged_paper();
    // Install the naive "fix": block all further FIB updates for P
    // (what a data-plane-only verifier would do to preserve the pre-change
    // forwarding).
    let p = s.prefix;
    s.sim.set_fib_gate(Box::new(move |u| u.prefix != p));
    let change = ConfigChange::SetImport {
        peer: PeerRef::External(s.ext_r2),
        map: RouteMap::set_all(vec![SetAction::LocalPref(10)]),
    };
    s.sim
        .schedule_config(s.sim.now() + SimTime::from_millis(10), RouterId(1), change);
    s.sim.run_to_quiescence(MAX_EVENTS);
    // Data plane still sends via R2 (updates were blocked) — policy looks
    // preserved...
    let t = s.sim.dataplane().trace(s.sim.topology(), RouterId(2), DST);
    assert_eq!(t.outcome, TraceOutcome::Exited(s.ext_r2));
    assert!(
        !s.sim.blocked_updates().is_empty(),
        "gate must have blocked updates"
    );
    // ...but now R2's uplink fails and the withdrawal propagates. The
    // control plane thinks the FIBs point at R1 already, so nothing gets
    // reprogrammed — and the stale FIBs blackhole at R2 (Fig. 2b).
    s.sim
        .schedule_ext_peer_change(s.sim.now() + SimTime::from_millis(10), s.ext_r2, false);
    s.sim.run_to_quiescence(MAX_EVENTS);
    let t = s.sim.dataplane().trace(s.sim.topology(), RouterId(2), DST);
    assert_eq!(
        t.outcome,
        TraceOutcome::Blackhole(RouterId(1)),
        "stale FIB must blackhole at R2 (paper Fig. 2b); path {:?}",
        t.router_path()
    );
}

#[test]
fn without_blocking_withdrawal_fails_over_cleanly() {
    // Control for fig2b: no gate, same failure → clean failover to R1.
    let mut s = converged_paper();
    s.sim
        .schedule_ext_peer_change(s.sim.now() + SimTime::from_millis(10), s.ext_r2, false);
    s.sim.run_to_quiescence(MAX_EVENTS);
    for r in 0..3u32 {
        let t = s.sim.dataplane().trace(s.sim.topology(), RouterId(r), DST);
        assert_eq!(t.outcome, TraceOutcome::Exited(s.ext_r1), "R{}", r + 1);
    }
}

#[test]
fn trace_captures_all_io_classes() {
    let mut s = converged_paper();
    let change = ConfigChange::SetImport {
        peer: PeerRef::External(s.ext_r2),
        map: RouteMap::set_all(vec![SetAction::LocalPref(10)]),
    };
    s.sim
        .schedule_config(s.sim.now() + SimTime::from_millis(10), RouterId(1), change);
    s.sim
        .schedule_ext_peer_change(s.sim.now() + SimTime::from_secs(100), s.ext_r2, false);
    s.sim.run_to_quiescence(MAX_EVENTS);
    let tr = s.sim.trace();
    let mut saw = [false; 8];
    for e in &tr.events {
        match e.kind {
            IoKind::ConfigChange { .. } => saw[0] = true,
            IoKind::SoftReconfig { .. } => saw[1] = true,
            IoKind::LinkStatus { .. } => saw[2] = true,
            IoKind::RecvAdvert { .. } => saw[3] = true,
            IoKind::RecvWithdraw { .. } => saw[4] = true,
            IoKind::RibInstall { .. } | IoKind::RibRemove { .. } => saw[5] = true,
            IoKind::FibInstall { .. } | IoKind::FibRemove { .. } => saw[6] = true,
            IoKind::SendAdvert { .. } | IoKind::SendWithdraw { .. } => saw[7] = true,
        }
    }
    assert!(saw.iter().all(|x| *x), "missing I/O class: {saw:?}");
}

#[test]
fn truth_edges_are_causal_in_time() {
    let s = converged_paper();
    let tr = s.sim.trace();
    for (a, b) in &tr.truth_edges {
        let ea = &tr.events[a.index()];
        let eb = &tr.events[b.index()];
        assert!(
            ea.time <= eb.time,
            "cause {} at {} after effect {} at {}",
            ea,
            ea.time,
            eb,
            eb.time
        );
    }
}

#[test]
fn bgp_sends_follow_rib_installs_in_truth() {
    // §4.1: with BGP, [install P in BGP RIB] → [send BGP advert P].
    let s = converged_paper();
    let tr = s.sim.trace();
    for e in &tr.events {
        if let IoKind::SendAdvert {
            proto: Proto::Bgp, ..
        } = e.kind
        {
            let anc = tr.truth_ancestors(e.id);
            let has_rib_or_recv = anc.iter().any(|a| {
                matches!(
                    tr.events[a.index()].kind,
                    IoKind::RibInstall {
                        proto: Proto::Bgp,
                        ..
                    } | IoKind::RecvAdvert {
                        proto: Proto::Bgp,
                        ..
                    } | IoKind::SoftReconfig { .. }
                )
            });
            assert!(has_rib_or_recv, "BGP send without BGP cause: {e}");
        }
    }
}

#[test]
fn determinism_same_seed_same_trace() {
    let run = |seed: u64| {
        let mut s = paper_scenario(LatencyProfile::cisco(), CaptureProfile::syslog(), seed);
        s.sim.start();
        s.sim.run_to_quiescence(MAX_EVENTS);
        s.sim.schedule_ext_announce(
            s.sim.now() + SimTime::from_millis(10),
            s.ext_r1,
            &[s.prefix],
        );
        s.sim
            .schedule_ext_announce(s.sim.now() + SimTime::from_secs(2), s.ext_r2, &[s.prefix]);
        s.sim.run_to_quiescence(MAX_EVENTS);
        s.sim.trace().render()
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100), "different seeds should differ in timing");
}

#[test]
fn cisco_profile_produces_fig5_timescales() {
    let mut s = paper_scenario(LatencyProfile::cisco(), CaptureProfile::ideal(), 3);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    let t0 = s.sim.now();
    let change = ConfigChange::SetImport {
        peer: PeerRef::External(s.ext_r1),
        map: RouteMap::set_all(vec![SetAction::LocalPref(200)]),
    };
    s.sim
        .schedule_config(t0 + SimTime::from_millis(100), RouterId(0), change);
    s.sim.run_to_quiescence(MAX_EVENTS);
    let tr = s.sim.trace();
    let config_t = tr
        .events
        .iter()
        .find(|e| matches!(&e.kind, IoKind::ConfigChange { desc, .. } if desc.contains("import")))
        .unwrap()
        .time;
    let soft_t = tr
        .events
        .iter()
        .find(|e| matches!(e.kind, IoKind::SoftReconfig { .. }))
        .unwrap()
        .time;
    let gap = soft_t - config_t;
    assert!(
        gap >= SimTime::from_secs(22) && gap <= SimTime::from_secs(28),
        "config→soft-reconfig gap {gap} should be ~25s"
    );
}

#[test]
fn igp_convergence_installs_internal_routes() {
    let (mut sim, _, _) = two_exit_scenario(5, LatencyProfile::fast(), CaptureProfile::ideal(), 1);
    sim.start();
    sim.run_to_quiescence(MAX_EVENTS);
    // Every router can reach every other router's loopback in the FIB.
    for r in 0..5u32 {
        for other in 0..5u32 {
            if r == other {
                continue;
            }
            let lb = sim.topology().router(RouterId(other)).loopback;
            let t = sim.dataplane().trace(sim.topology(), RouterId(r), lb);
            assert_eq!(
                t.outcome,
                TraceOutcome::DeliveredLocal(RouterId(other)),
                "R{}→R{} got {:?}",
                r + 1,
                other + 1,
                t.outcome
            );
        }
    }
}

#[test]
fn link_failure_converges_and_reroutes() {
    let (mut sim, left, right) =
        two_exit_scenario(4, LatencyProfile::fast(), CaptureProfile::ideal(), 5);
    let p: cpvr_types::Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    sim.start();
    sim.run_to_quiescence(MAX_EVENTS);
    sim.schedule_ext_announce(sim.now() + SimTime::from_millis(1), left, &[p]);
    sim.schedule_ext_announce(sim.now() + SimTime::from_millis(2), right, &[p]);
    sim.run_to_quiescence(MAX_EVENTS);
    // Preferred exit is the right (LP 30). R1 forwards along the line.
    let t = sim.dataplane().trace(sim.topology(), RouterId(0), DST);
    assert_eq!(t.outcome, TraceOutcome::Exited(right));
    // Fail the middle link R2—R3: the domain partitions. R1's side can
    // only exit left; after IGP reconvergence BGP must fail over because
    // the iBGP next hop (R4) becomes unreachable.
    let l = sim
        .topology()
        .link_between(RouterId(1), RouterId(2))
        .unwrap()
        .id;
    sim.schedule_link_change(sim.now() + SimTime::from_millis(10), l, false);
    sim.run_to_quiescence(MAX_EVENTS);
    let t = sim.dataplane().trace(sim.topology(), RouterId(0), DST);
    assert_eq!(
        t.outcome,
        TraceOutcome::Exited(left),
        "R1 must fail over to its local exit; path {:?}",
        t.router_path()
    );
}

#[test]
fn snapshot_reconstruction_matches_live_dataplane() {
    let s = converged_paper();
    let tr = s.sim.trace();
    let snap = tr.fib_snapshot_at(3, s.sim.now());
    for r in 0..3u32 {
        let live = s.sim.dataplane().fib(RouterId(r)).entries();
        let reco: Vec<_> = snap.fib(RouterId(r)).entries();
        let live_keys: Vec<_> = live.iter().map(|(p, e)| (*p, e.action)).collect();
        let reco_keys: Vec<_> = reco.iter().map(|(p, e)| (*p, e.action)).collect();
        assert_eq!(live_keys, reco_keys, "R{}", r + 1);
    }
}

#[test]
fn lossy_capture_loses_events() {
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::lossy(0.3), 11);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    s.sim
        .schedule_ext_announce(s.sim.now(), s.ext_r1, &[s.prefix]);
    s.sim.run_to_quiescence(MAX_EVENTS);
    let tr = s.sim.trace();
    let lost = tr.events.iter().filter(|e| e.arrived_at.is_none()).count();
    assert!(lost > 0, "30% loss must lose something out of {}", tr.len());
    assert!(lost < tr.len());
}
