//! Fluent construction of [`Topology`] values.
//!
//! The builder hands out addresses automatically: loopbacks from
//! `10.255.0.0/24`, link subnets as `/30`s carved from `10.0.0.0/16`, and
//! external attachment subnets as `/30`s from `10.1.0.0/16`. Callers that
//! care about concrete addresses can query them back from the built
//! topology; nothing else in the workspace hard-codes them.

use crate::topology::{
    Attachment, ExtPeerId, ExternalPeer, Iface, Link, LinkId, LinkState, Router, Topology,
};
use cpvr_types::{AsNum, IfaceId, Ipv4Prefix, RouterId};
use std::net::Ipv4Addr;

/// Incrementally builds a [`Topology`].
///
/// ```
/// use cpvr_topo::TopologyBuilder;
/// use cpvr_types::AsNum;
///
/// let mut b = TopologyBuilder::new(AsNum(65000));
/// let r1 = b.router("R1");
/// let r2 = b.router("R2");
/// b.link(r1, r2, 10);
/// b.external_peer("Provider", AsNum(174), r1);
/// let topo = b.build();
/// assert_eq!(topo.num_routers(), 2);
/// ```
pub struct TopologyBuilder {
    topo: Topology,
    default_asn: AsNum,
    next_link_net: u32,
    next_ext_net: u32,
}

impl TopologyBuilder {
    /// Starts a builder; routers default to `default_asn` unless added with
    /// [`router_in_as`](Self::router_in_as).
    pub fn new(default_asn: AsNum) -> Self {
        TopologyBuilder {
            topo: Topology::new(),
            default_asn,
            next_link_net: u32::from(Ipv4Addr::new(10, 0, 0, 0)),
            next_ext_net: u32::from(Ipv4Addr::new(10, 1, 0, 0)),
        }
    }

    /// Adds a router in the default AS. Names should be unique; lookups by
    /// name return the first match.
    pub fn router(&mut self, name: &str) -> RouterId {
        let asn = self.default_asn;
        self.router_in_as(name, asn)
    }

    /// Adds a router in a specific AS (for multi-AS topologies).
    pub fn router_in_as(&mut self, name: &str, asn: AsNum) -> RouterId {
        let id = RouterId(self.topo.num_routers() as u32);
        let loopback = Ipv4Addr::from(u32::from(Ipv4Addr::new(10, 255, 0, 1)) + id.0);
        self.topo.push_router(Router {
            id,
            name: name.to_string(),
            asn,
            loopback,
            ifaces: Vec::new(),
        });
        id
    }

    fn add_iface(
        &mut self,
        r: RouterId,
        addr: Ipv4Addr,
        subnet: Ipv4Prefix,
        att: Attachment,
    ) -> IfaceId {
        let router = self.topo.router_mut(r);
        let id = IfaceId(router.ifaces.len() as u32);
        router.ifaces.push(Iface {
            id,
            addr,
            subnet,
            attachment: att,
        });
        id
    }

    /// Connects two routers with a point-to-point link of the given IGP
    /// cost, assigning a fresh /30 subnet. Returns the new link's id.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-links are not meaningful here).
    pub fn link(&mut self, a: RouterId, b: RouterId, igp_cost: u32) -> LinkId {
        assert_ne!(a, b, "self-links are not supported");
        let net = self.next_link_net;
        self.next_link_net += 4;
        let subnet = Ipv4Prefix::from_bits(net, 30);
        let addr_a = Ipv4Addr::from(net + 1);
        let addr_b = Ipv4Addr::from(net + 2);
        let id = LinkId(self.topo.num_links() as u32);
        let ia = self.add_iface(a, addr_a, subnet, Attachment::Link(id));
        let ib = self.add_iface(b, addr_b, subnet, Attachment::Link(id));
        self.topo.push_link(Link {
            id,
            a: (a, ia),
            b: (b, ib),
            subnet,
            igp_cost,
            state: LinkState::Up,
        });
        id
    }

    /// Attaches an external peer (e.g. an upstream provider running eBGP)
    /// to router `r`, assigning a fresh /30 for the peering subnet.
    pub fn external_peer(&mut self, name: &str, asn: AsNum, r: RouterId) -> ExtPeerId {
        let net = self.next_ext_net;
        self.next_ext_net += 4;
        let subnet = Ipv4Prefix::from_bits(net, 30);
        let addr_r = Ipv4Addr::from(net + 1);
        let addr_p = Ipv4Addr::from(net + 2);
        let id = ExtPeerId(self.topo.num_ext_peers() as u32);
        let iface = self.add_iface(r, addr_r, subnet, Attachment::External(id));
        self.topo.push_ext_peer(ExternalPeer {
            id,
            name: name.to_string(),
            asn,
            addr: addr_p,
            attach: (r, iface),
            state: LinkState::Up,
        });
        id
    }

    /// Finishes construction.
    pub fn build(self) -> Topology {
        self.topo
    }
}

/// Ready-made topology shapes used by tests, examples, and benchmarks.
pub mod shapes {
    use super::*;

    /// The paper's running example (Figs. 1, 2, 5): three routers in one
    /// AS, full iBGP mesh fabric (triangle of links), with uplinks via R1
    /// and R2 to external peers announcing prefix `P`.
    ///
    /// Returns `(topology, ext_via_r1, ext_via_r2)`.
    pub fn paper_triangle() -> (Topology, ExtPeerId, ExtPeerId) {
        let mut b = TopologyBuilder::new(AsNum(65000));
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let r3 = b.router("R3");
        b.link(r1, r2, 10);
        b.link(r1, r3, 10);
        b.link(r2, r3, 10);
        let e1 = b.external_peer("UplinkViaR1", AsNum(100), r1);
        let e2 = b.external_peer("UplinkViaR2", AsNum(200), r2);
        (b.build(), e1, e2)
    }

    /// A line of `n` routers: R1 — R2 — … — Rn, unit cost.
    pub fn line(n: usize) -> Topology {
        let mut b = TopologyBuilder::new(AsNum(65000));
        let ids: Vec<RouterId> = (0..n).map(|i| b.router(&format!("R{}", i + 1))).collect();
        for w in ids.windows(2) {
            b.link(w[0], w[1], 10);
        }
        b.build()
    }

    /// A ring of `n ≥ 3` routers, unit cost.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Topology {
        assert!(n >= 3, "a ring needs at least 3 routers");
        let mut b = TopologyBuilder::new(AsNum(65000));
        let ids: Vec<RouterId> = (0..n).map(|i| b.router(&format!("R{}", i + 1))).collect();
        for w in ids.windows(2) {
            b.link(w[0], w[1], 10);
        }
        b.link(ids[n - 1], ids[0], 10);
        b.build()
    }

    /// An `rows × cols` grid (mesh), unit cost. Router `R(r*cols+c+1)` is at
    /// `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Topology {
        assert!(rows > 0 && cols > 0);
        let mut b = TopologyBuilder::new(AsNum(65000));
        let mut ids = Vec::with_capacity(rows * cols);
        for i in 0..rows * cols {
            ids.push(b.router(&format!("R{}", i + 1)));
        }
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    b.link(ids[r * cols + c], ids[r * cols + c + 1], 10);
                }
                if r + 1 < rows {
                    b.link(ids[r * cols + c], ids[(r + 1) * cols + c], 10);
                }
            }
        }
        b.build()
    }

    /// A "two-exit" enterprise shape of `n` routers: a line fabric with
    /// external uplinks at both ends — a scaled generalization of the
    /// paper's example for benchmarks.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn two_exit_line(n: usize) -> (Topology, ExtPeerId, ExtPeerId) {
        assert!(n >= 2);
        let mut b = TopologyBuilder::new(AsNum(65000));
        let ids: Vec<RouterId> = (0..n).map(|i| b.router(&format!("R{}", i + 1))).collect();
        for w in ids.windows(2) {
            b.link(w[0], w[1], 10);
        }
        let e1 = b.external_peer("UplinkLeft", AsNum(100), ids[0]);
        let e2 = b.external_peer("UplinkRight", AsNum(200), ids[n - 1]);
        (b.build(), e1, e2)
    }
}

#[cfg(test)]
mod tests {
    use super::shapes;
    use super::*;

    #[test]
    fn loopbacks_are_unique() {
        let t = shapes::line(10);
        let mut addrs: Vec<Ipv4Addr> = t.routers().iter().map(|r| r.loopback).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 10);
    }

    #[test]
    fn link_assigns_endpoint_addrs_in_subnet() {
        let mut b = TopologyBuilder::new(AsNum(1));
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let l = b.link(r1, r2, 5);
        let t = b.build();
        let link = t.link(l);
        let ia = t.iface(link.a.0, link.a.1);
        let ib = t.iface(link.b.0, link.b.1);
        assert!(link.subnet.contains_addr(ia.addr));
        assert!(link.subnet.contains_addr(ib.addr));
        assert_ne!(ia.addr, ib.addr);
        assert_eq!(link.igp_cost, 5);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut b = TopologyBuilder::new(AsNum(1));
        let r1 = b.router("R1");
        b.link(r1, r1, 1);
    }

    #[test]
    fn multi_as_routers() {
        let mut b = TopologyBuilder::new(AsNum(65000));
        let _r1 = b.router("R1");
        let r2 = b.router_in_as("R2", AsNum(65001));
        let t = b.build();
        assert_eq!(t.router(r2).asn, AsNum(65001));
        assert_eq!(t.router(RouterId(0)).asn, AsNum(65000));
    }

    #[test]
    fn paper_triangle_shape() {
        let (t, e1, e2) = shapes::paper_triangle();
        assert_eq!(t.num_routers(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.ext_peer(e1).attach.0, RouterId(0));
        assert_eq!(t.ext_peer(e2).attach.0, RouterId(1));
        // every pair of routers is directly linked
        for a in 0..3u32 {
            for b2 in (a + 1)..3u32 {
                assert!(t.link_between(RouterId(a), RouterId(b2)).is_some());
            }
        }
    }

    #[test]
    fn ring_closes() {
        let t = shapes::ring(5);
        assert_eq!(t.num_links(), 5);
        assert!(t.link_between(RouterId(0), RouterId(4)).is_some());
    }

    #[test]
    #[should_panic]
    fn tiny_ring_panics() {
        shapes::ring(2);
    }

    #[test]
    fn grid_link_count() {
        // rows*(cols-1) + cols*(rows-1)
        let t = shapes::grid(3, 4);
        assert_eq!(t.num_routers(), 12);
        assert_eq!(t.num_links(), 3 * 3 + 4 * 2);
    }

    #[test]
    fn two_exit_line_shape() {
        let (t, e1, e2) = shapes::two_exit_line(6);
        assert_eq!(t.num_routers(), 6);
        assert_eq!(t.num_links(), 5);
        assert_eq!(t.ext_peer(e1).attach.0, RouterId(0));
        assert_eq!(t.ext_peer(e2).attach.0, RouterId(5));
    }
}
