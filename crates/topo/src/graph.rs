//! Graph algorithms over a [`Topology`].
//!
//! Shortest paths (Dijkstra) and reachability over the *up* links. The IGP
//! crate uses these as its ground truth oracle in tests, and the verifier
//! uses them when reasoning about where traffic should flow.

use crate::topology::{LinkId, Topology};
use cpvr_types::RouterId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The result of a single-source shortest-path computation.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// Source router.
    pub source: RouterId,
    /// `dist[r]` = cost of the best path from `source` to `r`, or `None`
    /// if unreachable.
    pub dist: Vec<Option<u32>>,
    /// `first_hop[r]` = (neighbor, link) of the first hop on the best path
    /// from `source` to `r`. `None` for the source itself and unreachable
    /// routers. Ties are broken toward the lower router id, matching the
    /// deterministic tie-break used by the IGP.
    pub first_hop: Vec<Option<(RouterId, LinkId)>>,
}

impl ShortestPaths {
    /// Reconstructs the router sequence of the best path to `dst`
    /// (inclusive of both endpoints), or `None` if unreachable.
    pub fn path_to(&self, topo: &Topology, dst: RouterId) -> Option<Vec<RouterId>> {
        self.dist[dst.index()]?;
        // Walk forward from source following first hops recomputed per
        // node: we only store first hops from the source, so instead walk
        // backward using repeated SPF is wasteful — walk forward greedily.
        let mut path = vec![self.source];
        let mut cur = self.source;
        let mut guard = 0;
        while cur != dst {
            let sp = dijkstra(topo, cur);
            let (next, _) = sp.first_hop[dst.index()]?;
            path.push(next);
            cur = next;
            guard += 1;
            if guard > topo.num_routers() {
                return None; // defensive: should be impossible
            }
        }
        Some(path)
    }
}

/// Dijkstra over up links with deterministic tie-breaking (lower router id,
/// then lower link id, wins).
pub fn dijkstra(topo: &Topology, source: RouterId) -> ShortestPaths {
    let n = topo.num_routers();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut first_hop: Vec<Option<(RouterId, LinkId)>> = vec![None; n];
    // Heap entries: Reverse((cost, router, first_hop_key)) so the smallest
    // cost pops first; the extra keys make tie-breaking deterministic.
    let mut heap: BinaryHeap<Reverse<(u32, u32, u32, u32)>> = BinaryHeap::new();
    dist[source.index()] = Some(0);
    heap.push(Reverse((0, source.0, u32::MAX, u32::MAX)));
    while let Some(Reverse((d, r, fh_r, fh_l))) = heap.pop() {
        let r_id = RouterId(r);
        if dist[r_id.index()] != Some(d) {
            continue; // stale entry
        }
        // Record first hop when popping a settled node (skip the source).
        if r_id != source && first_hop[r_id.index()].is_none() && fh_r != u32::MAX {
            first_hop[r_id.index()] = Some((RouterId(fh_r), LinkId(fh_l)));
        }
        let mut neigh = topo.up_neighbors(r_id);
        neigh.sort();
        for (nb, link) in neigh {
            let cost = topo.link(link).igp_cost;
            let nd = d + cost;
            let better = match dist[nb.index()] {
                None => true,
                Some(old) => nd < old,
            };
            if better {
                dist[nb.index()] = Some(nd);
                first_hop[nb.index()] = None;
                // Propagate the first hop: if we're relaxing from the
                // source, the neighbor itself is the first hop.
                let (nfr, nfl) = if r_id == source {
                    (nb.0, link.0)
                } else {
                    (fh_r, fh_l)
                };
                heap.push(Reverse((nd, nb.0, nfr, nfl)));
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        first_hop,
    }
}

/// True if every router can reach every other router over up links.
pub fn is_connected(topo: &Topology) -> bool {
    if topo.num_routers() == 0 {
        return true;
    }
    let sp = dijkstra(topo, RouterId(0));
    sp.dist.iter().all(|d| d.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{shapes, TopologyBuilder};
    use crate::topology::LinkState;
    use cpvr_types::AsNum;

    #[test]
    fn line_distances() {
        let t = shapes::line(4);
        let sp = dijkstra(&t, RouterId(0));
        assert_eq!(sp.dist, vec![Some(0), Some(10), Some(20), Some(30)]);
        assert_eq!(sp.first_hop[3].unwrap().0, RouterId(1));
        assert_eq!(sp.first_hop[0], None);
    }

    #[test]
    fn ring_takes_shorter_side() {
        let t = shapes::ring(5);
        let sp = dijkstra(&t, RouterId(0));
        // R5 (index 4) is adjacent via the closing link.
        assert_eq!(sp.dist[4], Some(10));
        assert_eq!(sp.first_hop[4].unwrap().0, RouterId(4));
        // R3 (index 2) is two hops either way; tie-break picks lower id
        // neighbor first (R2 side).
        assert_eq!(sp.dist[2], Some(20));
        assert_eq!(sp.first_hop[2].unwrap().0, RouterId(1));
    }

    #[test]
    fn respects_costs() {
        let mut b = TopologyBuilder::new(AsNum(1));
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let r3 = b.router("R3");
        b.link(r1, r2, 100);
        b.link(r1, r3, 10);
        b.link(r3, r2, 10);
        let t = b.build();
        let sp = dijkstra(&t, r1);
        assert_eq!(sp.dist[r2.index()], Some(20));
        assert_eq!(sp.first_hop[r2.index()].unwrap().0, r3);
    }

    #[test]
    fn down_links_are_ignored() {
        let mut t = shapes::ring(4);
        let l = t.link_between(RouterId(0), RouterId(1)).unwrap().id;
        t.set_link_state(l, LinkState::Down);
        let sp = dijkstra(&t, RouterId(0));
        // Must now go the long way to R2 (index 1): 0→3→2→1 = 30.
        assert_eq!(sp.dist[1], Some(30));
        assert_eq!(sp.first_hop[1].unwrap().0, RouterId(3));
    }

    #[test]
    fn disconnection_detected() {
        let mut t = shapes::line(3);
        assert!(is_connected(&t));
        let l = t.link_between(RouterId(1), RouterId(2)).unwrap().id;
        t.set_link_state(l, LinkState::Down);
        assert!(!is_connected(&t));
        let sp = dijkstra(&t, RouterId(0));
        assert_eq!(sp.dist[2], None);
        assert_eq!(sp.first_hop[2], None);
    }

    #[test]
    fn path_reconstruction() {
        let t = shapes::line(4);
        let sp = dijkstra(&t, RouterId(0));
        let p = sp.path_to(&t, RouterId(3)).unwrap();
        assert_eq!(p, vec![RouterId(0), RouterId(1), RouterId(2), RouterId(3)]);
        assert_eq!(sp.path_to(&t, RouterId(0)).unwrap(), vec![RouterId(0)]);
    }

    #[test]
    fn empty_topology_is_connected() {
        let t = Topology::new();
        assert!(is_connected(&t));
    }
}
