//! Network topology model.
//!
//! A [`Topology`] is the static structure the control plane runs over:
//! routers, their interfaces, the point-to-point links between them, and
//! *external peers* (eBGP neighbors outside the administrative domain, like
//! the two upstream providers in the paper's Fig. 1). Link and interface
//! *state* (up/down) lives here too, because hardware status changes are one
//! of the three control-plane input classes the paper tracks (§4.1).
//!
//! The topology is intentionally protocol-agnostic: BGP sessions, OSPF
//! areas, and route maps are configured in the protocol crates, keyed by the
//! identifiers defined here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod graph;
pub mod topology;

pub use builder::TopologyBuilder;
pub use topology::{ExtPeerId, ExternalPeer, Iface, Link, LinkId, LinkState, Router, Topology};
