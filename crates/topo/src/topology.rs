//! Core topology data structures.

use cpvr_types::{AsNum, IfaceId, Ipv4Prefix, RouterId};
use std::fmt;
use std::net::Ipv4Addr;

/// Identifies a point-to-point link between two router interfaces.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Returns the id as a `usize`, for indexing per-link tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifies an external peer (an eBGP neighbor outside the domain).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExtPeerId(pub u32);

impl ExtPeerId {
    /// Returns the id as a `usize`, for indexing per-peer tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExtPeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ext{}", self.0)
    }
}

impl fmt::Debug for ExtPeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ext{}", self.0)
    }
}

/// Administrative/operational state of a link or interface.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LinkState {
    /// Link is passing traffic.
    #[default]
    Up,
    /// Link is down (failed or administratively disabled).
    Down,
}

impl LinkState {
    /// True when the link is up.
    pub fn is_up(self) -> bool {
        self == LinkState::Up
    }
}

/// A router in the administrative domain.
#[derive(Clone, Debug)]
pub struct Router {
    /// The router's id.
    pub id: RouterId,
    /// Human-readable name (e.g. `"R1"`).
    pub name: String,
    /// The autonomous system the router belongs to.
    pub asn: AsNum,
    /// A stable loopback address used as router-id / iBGP peering address.
    pub loopback: Ipv4Addr,
    /// Interfaces, indexed by [`IfaceId`].
    pub ifaces: Vec<Iface>,
}

/// One router interface.
#[derive(Clone, Debug)]
pub struct Iface {
    /// The interface id, local to its router.
    pub id: IfaceId,
    /// The interface address.
    pub addr: Ipv4Addr,
    /// The connected subnet.
    pub subnet: Ipv4Prefix,
    /// Attachment: an internal link or an external peer.
    pub attachment: Attachment,
}

/// What an interface connects to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attachment {
    /// Connected to another router in the domain via a link.
    Link(LinkId),
    /// Connected to an external peer.
    External(ExtPeerId),
}

/// A point-to-point link between two in-domain routers.
#[derive(Clone, Debug)]
pub struct Link {
    /// The link id.
    pub id: LinkId,
    /// Endpoint A: (router, interface).
    pub a: (RouterId, IfaceId),
    /// Endpoint B: (router, interface).
    pub b: (RouterId, IfaceId),
    /// The link subnet.
    pub subnet: Ipv4Prefix,
    /// IGP cost of the link (symmetric).
    pub igp_cost: u32,
    /// Current state.
    pub state: LinkState,
}

impl Link {
    /// Given one endpoint router, returns the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not an endpoint of this link.
    pub fn other_end(&self, r: RouterId) -> (RouterId, IfaceId) {
        if self.a.0 == r {
            self.b
        } else if self.b.0 == r {
            self.a
        } else {
            panic!("{r} is not an endpoint of {}", self.id)
        }
    }

    /// The local interface of `r` on this link.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not an endpoint of this link.
    pub fn iface_of(&self, r: RouterId) -> IfaceId {
        if self.a.0 == r {
            self.a.1
        } else if self.b.0 == r {
            self.b.1
        } else {
            panic!("{r} is not an endpoint of {}", self.id)
        }
    }
}

/// An eBGP neighbor outside the administrative domain (e.g. an upstream
/// provider). External peers originate routes into the domain and absorb
/// traffic forwarded to them; they are not simulated as full routers.
#[derive(Clone, Debug)]
pub struct ExternalPeer {
    /// The peer id.
    pub id: ExtPeerId,
    /// Human-readable name (e.g. `"ProviderA"`).
    pub name: String,
    /// The peer's AS.
    pub asn: AsNum,
    /// The peer's address on the shared subnet.
    pub addr: Ipv4Addr,
    /// The in-domain router and interface it attaches to.
    pub attach: (RouterId, IfaceId),
    /// Current state of the attachment ("uplink up/down").
    pub state: LinkState,
}

/// The static network structure plus mutable link state.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    routers: Vec<Router>,
    links: Vec<Link>,
    ext_peers: Vec<ExternalPeer>,
}

impl Topology {
    /// Creates an empty topology; normally built via
    /// [`TopologyBuilder`](crate::TopologyBuilder).
    pub fn new() -> Self {
        Topology::default()
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of internal links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of external peers.
    pub fn num_ext_peers(&self) -> usize {
        self.ext_peers.len()
    }

    /// All routers, in id order.
    pub fn routers(&self) -> &[Router] {
        &self.routers
    }

    /// All router ids, in order.
    pub fn router_ids(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.routers.len() as u32).map(RouterId)
    }

    /// All links, in id order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All external peers, in id order.
    pub fn ext_peers(&self) -> &[ExternalPeer] {
        &self.ext_peers
    }

    /// Looks up a router.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    /// Looks up a router by name.
    pub fn router_by_name(&self, name: &str) -> Option<&Router> {
        self.routers.iter().find(|r| r.name == name)
    }

    /// Looks up a link.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Looks up an external peer.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn ext_peer(&self, id: ExtPeerId) -> &ExternalPeer {
        &self.ext_peers[id.index()]
    }

    /// Looks up an external peer by name.
    pub fn ext_peer_by_name(&self, name: &str) -> Option<&ExternalPeer> {
        self.ext_peers.iter().find(|p| p.name == name)
    }

    /// An interface of a router.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn iface(&self, r: RouterId, i: IfaceId) -> &Iface {
        &self.routers[r.index()].ifaces[i.index()]
    }

    /// The in-domain neighbors of `r` reachable over *up* links, with the
    /// link used, in link-id order.
    pub fn up_neighbors(&self, r: RouterId) -> Vec<(RouterId, LinkId)> {
        self.links
            .iter()
            .filter(|l| l.state.is_up() && (l.a.0 == r || l.b.0 == r))
            .map(|l| (l.other_end(r).0, l.id))
            .collect()
    }

    /// All in-domain neighbors of `r` regardless of link state.
    pub fn neighbors(&self, r: RouterId) -> Vec<(RouterId, LinkId)> {
        self.links
            .iter()
            .filter(|l| l.a.0 == r || l.b.0 == r)
            .map(|l| (l.other_end(r).0, l.id))
            .collect()
    }

    /// External peers attached to `r`, in peer-id order.
    pub fn ext_peers_of(&self, r: RouterId) -> Vec<&ExternalPeer> {
        self.ext_peers.iter().filter(|p| p.attach.0 == r).collect()
    }

    /// Finds the link between two routers, if one exists (first by id).
    pub fn link_between(&self, a: RouterId, b: RouterId) -> Option<&Link> {
        self.links
            .iter()
            .find(|l| (l.a.0 == a && l.b.0 == b) || (l.a.0 == b && l.b.0 == a))
    }

    /// Sets the state of an internal link.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_link_state(&mut self, id: LinkId, state: LinkState) {
        self.links[id.index()].state = state;
    }

    /// Sets the state of an external peer attachment (the "uplink").
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_ext_peer_state(&mut self, id: ExtPeerId, state: LinkState) {
        self.ext_peers[id.index()].state = state;
    }

    /// Sets the IGP cost of a link.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_igp_cost(&mut self, id: LinkId, cost: u32) {
        self.links[id.index()].igp_cost = cost;
    }

    // -- construction (used by the builder) ------------------------------

    pub(crate) fn push_router(&mut self, r: Router) {
        debug_assert_eq!(r.id.index(), self.routers.len());
        self.routers.push(r);
    }

    pub(crate) fn push_link(&mut self, l: Link) {
        debug_assert_eq!(l.id.index(), self.links.len());
        self.links.push(l);
    }

    pub(crate) fn push_ext_peer(&mut self, p: ExternalPeer) {
        debug_assert_eq!(p.id.index(), self.ext_peers.len());
        self.ext_peers.push(p);
    }

    pub(crate) fn router_mut(&mut self, id: RouterId) -> &mut Router {
        &mut self.routers[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TopologyBuilder;

    fn triangle() -> Topology {
        let mut b = TopologyBuilder::new(AsNum(65000));
        let r1 = b.router("R1");
        let r2 = b.router("R2");
        let r3 = b.router("R3");
        b.link(r1, r2, 10);
        b.link(r2, r3, 10);
        b.link(r1, r3, 10);
        b.external_peer("ExtA", AsNum(100), r1);
        b.external_peer("ExtB", AsNum(200), r2);
        b.build()
    }

    #[test]
    fn counts() {
        let t = triangle();
        assert_eq!(t.num_routers(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.num_ext_peers(), 2);
    }

    #[test]
    fn lookup_by_name() {
        let t = triangle();
        assert_eq!(t.router_by_name("R2").unwrap().id, RouterId(1));
        assert!(t.router_by_name("R9").is_none());
        assert_eq!(t.ext_peer_by_name("ExtB").unwrap().asn, AsNum(200));
    }

    #[test]
    fn neighbors_respect_link_state() {
        let mut t = triangle();
        let r1 = RouterId(0);
        assert_eq!(t.up_neighbors(r1).len(), 2);
        let l = t.link_between(r1, RouterId(1)).unwrap().id;
        t.set_link_state(l, LinkState::Down);
        let up: Vec<RouterId> = t.up_neighbors(r1).into_iter().map(|(r, _)| r).collect();
        assert_eq!(up, vec![RouterId(2)]);
        assert_eq!(t.neighbors(r1).len(), 2, "all-neighbors ignores state");
    }

    #[test]
    fn link_other_end_and_iface() {
        let t = triangle();
        let l = t.link_between(RouterId(0), RouterId(1)).unwrap();
        assert_eq!(l.other_end(RouterId(0)).0, RouterId(1));
        assert_eq!(l.other_end(RouterId(1)).0, RouterId(0));
        let i = l.iface_of(RouterId(0));
        assert_eq!(t.iface(RouterId(0), i).attachment, Attachment::Link(l.id));
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn other_end_panics_for_non_endpoint() {
        let t = triangle();
        let l = t.link_between(RouterId(0), RouterId(1)).unwrap();
        l.other_end(RouterId(2));
    }

    #[test]
    fn ext_peer_attachment() {
        let t = triangle();
        let peers = t.ext_peers_of(RouterId(0));
        assert_eq!(peers.len(), 1);
        assert_eq!(peers[0].name, "ExtA");
        assert!(t.ext_peers_of(RouterId(2)).is_empty());
    }

    #[test]
    fn ext_peer_state_toggles() {
        let mut t = triangle();
        let p = t.ext_peer_by_name("ExtB").unwrap().id;
        assert!(t.ext_peer(p).state.is_up());
        t.set_ext_peer_state(p, LinkState::Down);
        assert!(!t.ext_peer(p).state.is_up());
    }

    #[test]
    fn subnets_are_disjoint() {
        let t = triangle();
        let mut subnets: Vec<Ipv4Prefix> = t.links().iter().map(|l| l.subnet).collect();
        subnets.extend(
            t.ext_peers()
                .iter()
                .map(|p| t.iface(p.attach.0, p.attach.1).subnet),
        );
        for i in 0..subnets.len() {
            for j in (i + 1)..subnets.len() {
                assert!(
                    !subnets[i].overlaps(&subnets[j]),
                    "{} vs {}",
                    subnets[i],
                    subnets[j]
                );
            }
        }
    }

    #[test]
    fn igp_cost_mutation() {
        let mut t = triangle();
        let l = t.link_between(RouterId(0), RouterId(2)).unwrap().id;
        t.set_igp_cost(l, 55);
        assert_eq!(t.link(l).igp_cost, 55);
    }
}

cpvr_types::impl_json_newtype!(crate::topology, LinkId);
cpvr_types::impl_json_newtype!(crate::topology, ExtPeerId);
