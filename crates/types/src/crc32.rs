//! CRC-32 (IEEE 802.3) checksums.
//!
//! The collector's wire codec and its write-ahead log both need a cheap,
//! well-known integrity check over byte payloads; this module provides
//! the standard reflected CRC-32 (polynomial `0xEDB88320`, initial value
//! and final XOR `0xFFFFFFFF`) — the variant used by Ethernet, gzip, and
//! zlib — with a compile-time lookup table and an incremental
//! [`Crc32`] hasher for streaming use.
//!
//! ```
//! use cpvr_types::crc32;
//!
//! // The canonical IEEE check value.
//! assert_eq!(crc32::checksum(b"123456789"), 0xCBF4_3926);
//! // Streaming over chunks matches the one-shot digest.
//! let mut h = crc32::Crc32::new();
//! h.update(b"1234");
//! h.update(b"56789");
//! assert_eq!(h.finish(), crc32::checksum(b"123456789"));
//! ```

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// An incremental CRC-32 hasher.
///
/// ```
/// use cpvr_types::crc32::Crc32;
///
/// let mut h = Crc32::new();
/// h.update(b"");
/// assert_eq!(h.finish(), 0, "CRC-32 of the empty message is zero");
/// ```
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything updated so far. Does not consume the
    /// hasher; further updates continue from the same state.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `bytes`.
///
/// ```
/// use cpvr_types::crc32::checksum;
///
/// // Test vector from RFC 3720 appendix / common CRC catalogues.
/// assert_eq!(
///     checksum(b"The quick brown fox jumps over the lazy dog"),
///     0x414F_A339
/// );
/// ```
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical vectors from the CRC catalogue (CRC-32/ISO-HDLC).
    #[test]
    fn ieee_test_vectors() {
        assert_eq!(checksum(b""), 0x0000_0000);
        assert_eq!(checksum(b"a"), 0xE8B7_BE43);
        assert_eq!(checksum(b"abc"), 0x3524_41C2);
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum(b"message digest"), 0x2015_9D7F);
        assert_eq!(checksum(b"abcdefghijklmnopqrstuvwxyz"), 0x4C27_50BD);
        assert_eq!(
            checksum(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let msg = b"123456789";
        for split in 0..=msg.len() {
            let mut h = Crc32::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finish(), 0xCBF4_3926, "split at {split}");
        }
    }

    #[test]
    fn finish_is_non_destructive() {
        let mut h = Crc32::new();
        h.update(b"1234");
        let _ = h.finish();
        h.update(b"56789");
        assert_eq!(h.finish(), checksum(b"123456789"));
    }

    #[test]
    fn distinct_inputs_distinct_checksums() {
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
        assert_ne!(checksum(b"abc"), checksum(b"cba"));
    }
}
