//! Deterministic, dependency-free content hashing (FNV-1a, 64-bit).
//!
//! The repair-proof subsystem needs a stable digest over event bytes
//! that is identical across processes, platforms, and recoveries —
//! `std`'s `DefaultHasher` is seeded per-process and explicitly *not*
//! stable across releases, so proofs hash with FNV-1a instead. The
//! digest is an integrity fingerprint for tamper detection inside a
//! trusted control plane, not a cryptographic commitment.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a64(u64);

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a64(FNV_OFFSET)
    }

    /// A hasher seeded from a previous digest — the primitive behind
    /// [`chain`].
    pub fn with_seed(seed: u64) -> Self {
        Fnv1a64(seed)
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64-bit digest of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

/// Extend a hash chain: absorb `digest` into the running `prev` link.
///
/// `chain(chain(FNV_OFFSET, a), b)` commits to the *ordered* sequence
/// `[a, b]`; flipping any bit of any link or reordering links changes
/// every downstream link, which is exactly the tamper-evidence the
/// repair gate checks.
pub fn chain(prev: u64, digest: u64) -> u64 {
    let mut h = Fnv1a64::with_seed(prev);
    h.update_u64(digest);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = Fnv1a64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn chain_is_order_sensitive() {
        let a = fnv1a64(b"a");
        let b = fnv1a64(b"b");
        let ab = chain(chain(FNV_OFFSET, a), b);
        let ba = chain(chain(FNV_OFFSET, b), a);
        assert_ne!(ab, ba);
        // Flipping one bit of a link changes the head of the chain.
        assert_ne!(chain(chain(FNV_OFFSET, a ^ 1), b), ab);
    }
}
