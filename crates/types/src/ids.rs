//! Identifier newtypes.
//!
//! Routers, autonomous systems, and interfaces are all "just numbers", which
//! is exactly why they deserve distinct types: mixing a router id with an AS
//! number is a classic source of silent configuration bugs, and the paper's
//! happens-before events are keyed by router identity.

use std::fmt;

/// Identifies a router within a [`Topology`](https://docs.rs/cpvr-topo).
///
/// Router ids are dense small integers assigned by the topology builder in
/// creation order, which keeps them usable as vector indices. The `Display`
/// form is `R<n+1>` to match the paper's figures (the first router created
/// prints as `R1`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub u32);

impl RouterId {
    /// Returns the id as a `usize`, for indexing per-router tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0 + 1)
    }
}

impl fmt::Debug for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0 + 1)
    }
}

/// An autonomous-system number (2- or 4-byte; we store 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsNum(pub u32);

impl fmt::Display for AsNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for AsNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Identifies an interface local to one router.
///
/// Interface ids are only meaningful relative to their owning router; the
/// pair `(RouterId, IfaceId)` is globally unique.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IfaceId(pub u32);

impl IfaceId {
    /// Returns the id as a `usize`, for indexing per-interface tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

impl fmt::Debug for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_id_displays_one_based() {
        assert_eq!(RouterId(0).to_string(), "R1");
        assert_eq!(RouterId(2).to_string(), "R3");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(RouterId(1) < RouterId(2));
        assert!(AsNum(64512) < AsNum(64513));
        assert!(IfaceId(0) < IfaceId(7));
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(RouterId(42).index(), 42);
        assert_eq!(IfaceId(3).index(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(AsNum(65000).to_string(), "AS65000");
        assert_eq!(IfaceId(1).to_string(), "if1");
        assert_eq!(format!("{:?}", RouterId(0)), "R1");
    }
}
