//! Interning of wire symbols for the binary codec.
//!
//! Codec v3 replaces repeated byte strings — descriptive event text and
//! 5-byte prefix encodings — with dense `u32` symbols. The encoder side
//! ([`InternTable::intern`]) assigns symbols first-come-first-served and
//! reports when a symbol is fresh so the caller can emit an explicit
//! definition frame before the first use. The decoder side
//! ([`InternTable::define`] / [`InternTable::resolve`]) replays those
//! definitions; because definitions always precede use on the wire *and*
//! in the WAL journal, replaying a journal in order rebuilds exactly the
//! table the live collector had.
//!
//! Symbols are scoped per source router and per *space* (strings vs
//! prefixes), so two routers, or a prefix and a description, can never
//! collide. A reconnecting client restarts its numbering from zero and
//! re-sends definitions; [`InternTable::define`] therefore accepts
//! redefinition of an existing symbol.

use std::collections::HashMap;

/// Symbol space for interned UTF-8 strings (event descriptions).
pub const SPACE_STRING: u8 = 0;
/// Symbol space for interned prefixes (5 bytes: length + bits LE).
pub const SPACE_PREFIX: u8 = 1;

/// One symbol space: a bidirectional map between byte strings and dense
/// `u32` symbols, assigned in first-use order.
#[derive(Debug, Default, Clone)]
pub struct InternTable {
    syms: Vec<Vec<u8>>,
    map: HashMap<Vec<u8>, u32>,
}

impl InternTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of defined symbols.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True if no symbol has been defined yet.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Encoder side: returns the symbol for `bytes`, assigning the next
    /// free one on first use. The second component is `true` when the
    /// symbol is fresh and a definition must be emitted before use.
    pub fn intern(&mut self, bytes: &[u8]) -> (u32, bool) {
        if let Some(&sym) = self.map.get(bytes) {
            return (sym, false);
        }
        let sym = self.syms.len() as u32;
        self.syms.push(bytes.to_vec());
        self.map.insert(bytes.to_vec(), sym);
        (sym, true)
    }

    /// Decoder side: records that `sym` means `bytes`. Accepts either
    /// the next sequential symbol or a redefinition of an existing one
    /// (a reconnecting encoder restarts numbering from zero). Returns
    /// `false` — and changes nothing — for a symbol from the future,
    /// which indicates a damaged or misordered stream.
    pub fn define(&mut self, sym: u32, bytes: &[u8]) -> bool {
        let i = sym as usize;
        if i < self.syms.len() {
            if self.syms[i] != bytes {
                self.map.remove(&self.syms[i]);
                self.syms[i] = bytes.to_vec();
                self.map.insert(bytes.to_vec(), sym);
            }
            true
        } else if i == self.syms.len() {
            self.syms.push(bytes.to_vec());
            self.map.insert(bytes.to_vec(), sym);
            true
        } else {
            false
        }
    }

    /// Looks a symbol up; `None` if it was never defined.
    pub fn resolve(&self, sym: u32) -> Option<&[u8]> {
        self.syms.get(sym as usize).map(Vec::as_slice)
    }
}

/// The two symbol spaces of one source router.
#[derive(Debug, Default, Clone)]
pub struct Interns {
    /// UTF-8 string symbols ([`SPACE_STRING`]).
    pub strings: InternTable,
    /// Prefix symbols ([`SPACE_PREFIX`]).
    pub prefixes: InternTable,
}

impl Interns {
    /// Empty tables for both spaces.
    pub fn new() -> Self {
        Self::default()
    }

    /// The table for a wire space tag, or `None` for an unknown tag.
    pub fn space(&self, space: u8) -> Option<&InternTable> {
        match space {
            SPACE_STRING => Some(&self.strings),
            SPACE_PREFIX => Some(&self.prefixes),
            _ => None,
        }
    }

    /// Mutable variant of [`Interns::space`].
    pub fn space_mut(&mut self, space: u8) -> Option<&mut InternTable> {
        match space {
            SPACE_STRING => Some(&mut self.strings),
            SPACE_PREFIX => Some(&mut self.prefixes),
            _ => None,
        }
    }
}

/// Decoder-side intern state for a whole fleet, keyed by source router
/// index. Both the live `Decoder` and WAL replay thread their symbol
/// definitions through one of these.
#[derive(Debug, Default, Clone)]
pub struct InternStore {
    per_router: HashMap<u32, Interns>,
}

impl InternStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one definition `(router, space, sym) := bytes`. Returns
    /// `false` for an unknown space or an out-of-order symbol.
    pub fn apply(&mut self, router: u32, space: u8, sym: u32, bytes: &[u8]) -> bool {
        match self.per_router.entry(router).or_default().space_mut(space) {
            Some(table) => table.define(sym, bytes),
            None => false,
        }
    }

    /// The tables of one router, if any definition has been seen.
    pub fn of(&self, router: u32) -> Option<&Interns> {
        self.per_router.get(&router)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_symbols_once() {
        let mut t = InternTable::new();
        assert_eq!(t.intern(b"alpha"), (0, true));
        assert_eq!(t.intern(b"beta"), (1, true));
        assert_eq!(t.intern(b"alpha"), (0, false));
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(0), Some(&b"alpha"[..]));
        assert_eq!(t.resolve(1), Some(&b"beta"[..]));
        assert_eq!(t.resolve(2), None);
    }

    #[test]
    fn define_replays_in_order_and_rejects_gaps() {
        let mut t = InternTable::new();
        assert!(t.define(0, b"alpha"));
        assert!(t.define(1, b"beta"));
        assert!(!t.define(5, b"gap"), "symbol from the future");
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(1), Some(&b"beta"[..]));
    }

    #[test]
    fn redefinition_rebinds_a_symbol() {
        // A reconnecting encoder restarts numbering: sym 0 now means a
        // different string, and the old binding must be gone.
        let mut t = InternTable::new();
        assert!(t.define(0, b"old"));
        assert!(t.define(0, b"new"));
        assert_eq!(t.resolve(0), Some(&b"new"[..]));
        // Encoder-side view stays coherent too: interning the old text
        // assigns a fresh symbol instead of resurrecting 0.
        assert_eq!(t.intern(b"old"), (1, true));
        assert_eq!(t.intern(b"new"), (0, false));
        // Idempotent redefinition is a no-op.
        assert!(t.define(0, b"new"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn store_keys_by_router_and_space() {
        let mut s = InternStore::new();
        assert!(s.apply(1, SPACE_STRING, 0, b"desc"));
        assert!(s.apply(1, SPACE_PREFIX, 0, &[24, 10, 0, 0, 0]));
        assert!(s.apply(2, SPACE_STRING, 0, b"other"));
        assert!(!s.apply(2, 7, 0, b"bad space"));
        assert!(!s.apply(2, SPACE_STRING, 3, b"gap"));
        let r1 = s.of(1).unwrap();
        assert_eq!(r1.strings.resolve(0), Some(&b"desc"[..]));
        assert_eq!(r1.prefixes.resolve(0), Some(&[24u8, 10, 0, 0, 0][..]));
        assert_eq!(s.of(2).unwrap().strings.resolve(0), Some(&b"other"[..]));
        assert!(s.of(3).is_none());
    }
}
