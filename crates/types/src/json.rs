//! Dependency-free JSON serialization.
//!
//! The workspace persists captured traces as JSON (`cpvr-core`'s
//! `export` module). To keep the build hermetic this module provides the
//! whole stack in-tree: a [`Value`] model, a strict parser, a pretty
//! printer, [`ToJson`] / [`FromJson`] traits with impls for the standard
//! building blocks, and `impl_json_*` macros that derive impls for
//! structs, enums, and id newtypes.
//!
//! The encoding matches serde's externally-tagged default, so traces
//! written by earlier builds parse unchanged: structs are objects, unit
//! enum variants are strings, newtype variants are `{"Name": value}`,
//! tuple variants are `{"Name": [..]}`, and struct variants are
//! `{"Name": {..}}`. `Option` is `null` or the bare value.

use std::collections::BTreeSet;
use std::fmt;

/// A parsed JSON document.
///
/// Objects preserve insertion order (serialization is deterministic) and
/// are looked up by linear scan — every object this workspace writes is
/// small.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A number with a fractional or exponent part.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A serialization or parse failure, with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// An error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Looks up a required object field.
    pub fn field(&self, name: &str) -> Result<&Value, JsonError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field `{name}`"))),
            other => Err(JsonError::new(format!(
                "expected object with `{name}`, got {other:?}"
            ))),
        }
    }

    /// Renders with two-space indentation and a trailing newline-free
    /// final line, like `serde_json::to_string_pretty`.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Renders without any inter-token whitespace, like
    /// `serde_json::to_string` — the form wire protocols and logs want,
    /// at roughly half the bytes of [`render_pretty`](Self::render_pretty).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Appends the compact rendering to an existing buffer — lets hot
    /// paths (the collector's per-connection encoders) reuse one scratch
    /// `String` instead of allocating per value.
    pub fn render_compact_into(&self, out: &mut String) {
        self.write_compact(out);
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that serialize to a [`Value`].
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Value;
}

/// Types that deserialize from a [`Value`].
pub trait FromJson: Sized {
    /// Reconstructs `Self`, rejecting malformed input with an error.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

/// Serializes any [`ToJson`] type to pretty-printed JSON.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render_pretty()
}

/// Appends the compact JSON form of any [`ToJson`] type to `out`,
/// reusing the caller's scratch buffer instead of allocating.
pub fn to_string_compact_into<T: ToJson + ?Sized>(value: &T, out: &mut String) {
    value.to_json().render_compact_into(out);
}

/// Serializes any [`ToJson`] type to compact (whitespace-free) JSON —
/// the encoding the collector's wire codec and WAL use.
pub fn to_string_compact<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().render_compact()
}

/// Parses JSON text into any [`FromJson`] type.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

// ---------------------------------------------------------------------
// Primitive impls.

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let n = match v {
                    Value::U64(n) => *n,
                    other => {
                        return Err(JsonError::new(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    JsonError::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )+};
}

impl_json_uint!(u8, u16, u32, u64, usize);

impl ToJson for i64 {
    fn to_json(&self) -> Value {
        if *self >= 0 {
            Value::U64(*self as u64)
        } else {
            Value::I64(*self)
        }
    }
}

impl FromJson for i64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::U64(n) => {
                i64::try_from(*n).map_err(|_| JsonError::new(format!("{n} out of range for i64")))
            }
            Value::I64(n) => Ok(*n),
            other => Err(JsonError::new(format!("expected integer, got {other:?}"))),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::F64(f) => Ok(*f),
            other => Err(JsonError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: ToJson + Ord> ToJson for BTreeSet<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Ord> FromJson for BTreeSet<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => Err(JsonError::new(format!(
                "expected 2-element array, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Impls for this crate's own types.

impl ToJson for crate::Ipv4Prefix {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl FromJson for crate::Ipv4Prefix {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|e| JsonError::new(format!("bad prefix `{s}`: {e}"))),
            other => Err(JsonError::new(format!(
                "expected prefix string, got {other:?}"
            ))),
        }
    }
}

impl ToJson for crate::SimTime {
    fn to_json(&self) -> Value {
        Value::U64(self.as_nanos())
    }
}

impl FromJson for crate::SimTime {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(crate::SimTime::from_nanos(u64::from_json(v)?))
    }
}

crate::impl_json_newtype!(crate::ids, RouterId);
crate::impl_json_newtype!(crate::ids, AsNum);
crate::impl_json_newtype!(crate::ids, IfaceId);

// ---------------------------------------------------------------------
// Derive-style macros.

/// Implements `ToJson` / `FromJson` for a one-field tuple struct
/// (`$path::$ty(pub N)`), serializing the inner value bare.
#[macro_export]
macro_rules! impl_json_newtype {
    ($path:path, $ty:ident) => {
        const _: () = {
            use $path as base;
            impl $crate::json::ToJson for base::$ty {
                fn to_json(&self) -> $crate::json::Value {
                    $crate::json::ToJson::to_json(&self.0)
                }
            }
            impl $crate::json::FromJson for base::$ty {
                fn from_json(v: &$crate::json::Value) -> Result<Self, $crate::json::JsonError> {
                    Ok(base::$ty($crate::json::FromJson::from_json(v)?))
                }
            }
        };
    };
}

/// Implements `ToJson` / `FromJson` for a plain struct with named
/// fields, serializing as an object in declaration order.
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($f:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::Value::Object(vec![
                    $((stringify!($f).to_string(), $crate::json::ToJson::to_json(&self.$f)),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Value) -> Result<Self, $crate::json::JsonError> {
                Ok($ty {
                    $($f: $crate::json::FromJson::from_json(v.field(stringify!($f))?)?,)+
                })
            }
        }
    };
}

/// Returns the payload of an externally-tagged variant object
/// (`{"Name": payload}`) when the tag matches.
pub fn variant_inner<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) if fields.len() == 1 && fields[0].0 == name => Some(&fields[0].1),
        _ => None,
    }
}

/// Splits a tuple-variant payload into `n` element values (`n == 1`
/// means the payload is the bare element).
pub fn tuple_values(v: &Value, n: usize) -> Result<Vec<&Value>, JsonError> {
    if n == 1 {
        return Ok(vec![v]);
    }
    match v {
        Value::Array(items) if items.len() == n => Ok(items.iter().collect()),
        other => Err(JsonError::new(format!(
            "expected {n}-element array, got {other:?}"
        ))),
    }
}

/// Wraps tuple-variant fields in the externally-tagged encoding.
pub fn variant_value(name: &str, mut vals: Vec<Value>) -> Value {
    let payload = if vals.len() == 1 {
        vals.pop().unwrap()
    } else {
        Value::Array(vals)
    };
    Value::Object(vec![(name.to_string(), payload)])
}

/// Implements `ToJson` / `FromJson` for an enum in serde's
/// externally-tagged encoding. Unit, tuple, and struct variants are all
/// supported; the trailing comma on the last variant is optional (so
/// rustfmt may collapse short invocations onto one line).
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($body:tt)* }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Value {
                $crate::impl_json_enum!(@to_arms self, $ty, [], $($body)*)
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Value) -> Result<Self, $crate::json::JsonError> {
                $crate::impl_json_enum!(@from_chain v, $ty, $($body)*);
                Err($crate::json::JsonError::new(format!(
                    "unrecognized {} value: {:?}", stringify!($ty), v
                )))
            }
        }
    };

    // --- serialization: accumulate match arms, then emit the match.
    (@to_arms $self:ident, $ty:ident, [$($arms:tt)*],) => {
        match $self { $($arms)* }
    };
    (@to_arms $self:ident, $ty:ident, [$($arms:tt)*], $var:ident { $($f:ident),+ $(,)? }, $($rest:tt)*) => {
        $crate::impl_json_enum!(@to_arms $self, $ty, [
            $($arms)*
            $ty::$var { $($f),+ } => $crate::json::Value::Object(vec![(
                stringify!($var).to_string(),
                $crate::json::Value::Object(vec![
                    $((stringify!($f).to_string(), $crate::json::ToJson::to_json($f)),)+
                ]),
            )]),
        ], $($rest)*)
    };
    (@to_arms $self:ident, $ty:ident, [$($arms:tt)*], $var:ident ( $($f:ident),+ $(,)? ), $($rest:tt)*) => {
        $crate::impl_json_enum!(@to_arms $self, $ty, [
            $($arms)*
            $ty::$var($($f),+) => $crate::json::variant_value(
                stringify!($var),
                vec![$($crate::json::ToJson::to_json($f)),+],
            ),
        ], $($rest)*)
    };
    (@to_arms $self:ident, $ty:ident, [$($arms:tt)*], $var:ident, $($rest:tt)*) => {
        $crate::impl_json_enum!(@to_arms $self, $ty, [
            $($arms)*
            $ty::$var => $crate::json::Value::Str(stringify!($var).to_string()),
        ], $($rest)*)
    };
    // A last variant without a trailing comma: normalize and recurse.
    (@to_arms $self:ident, $ty:ident, [$($arms:tt)*], $var:ident { $($f:ident),+ $(,)? }) => {
        $crate::impl_json_enum!(@to_arms $self, $ty, [$($arms)*], $var { $($f),+ },)
    };
    (@to_arms $self:ident, $ty:ident, [$($arms:tt)*], $var:ident ( $($f:ident),+ $(,)? )) => {
        $crate::impl_json_enum!(@to_arms $self, $ty, [$($arms)*], $var($($f),+),)
    };
    (@to_arms $self:ident, $ty:ident, [$($arms:tt)*], $var:ident) => {
        $crate::impl_json_enum!(@to_arms $self, $ty, [$($arms)*], $var,)
    };

    // --- deserialization: a chain of early-return matches.
    (@from_chain $v:ident, $ty:ident,) => {};
    (@from_chain $v:ident, $ty:ident, $var:ident { $($f:ident),+ $(,)? }, $($rest:tt)*) => {
        if let Some(inner) = $crate::json::variant_inner($v, stringify!($var)) {
            return Ok($ty::$var {
                $($f: $crate::json::FromJson::from_json(inner.field(stringify!($f))?)?,)+
            });
        }
        $crate::impl_json_enum!(@from_chain $v, $ty, $($rest)*);
    };
    (@from_chain $v:ident, $ty:ident, $var:ident ( $($f:ident),+ $(,)? ), $($rest:tt)*) => {
        if let Some(inner) = $crate::json::variant_inner($v, stringify!($var)) {
            let n = [$(stringify!($f)),+].len();
            let vals = $crate::json::tuple_values(inner, n)?;
            let mut it = vals.into_iter();
            return Ok($ty::$var($({
                let _ = stringify!($f);
                $crate::json::FromJson::from_json(it.next().expect("arity checked"))?
            }),+));
        }
        $crate::impl_json_enum!(@from_chain $v, $ty, $($rest)*);
    };
    (@from_chain $v:ident, $ty:ident, $var:ident, $($rest:tt)*) => {
        if let $crate::json::Value::Str(s) = $v {
            if s == stringify!($var) {
                return Ok($ty::$var);
            }
        }
        $crate::impl_json_enum!(@from_chain $v, $ty, $($rest)*);
    };
    // A last variant without a trailing comma: normalize and recurse.
    (@from_chain $v:ident, $ty:ident, $var:ident { $($f:ident),+ $(,)? }) => {
        $crate::impl_json_enum!(@from_chain $v, $ty, $var { $($f),+ },)
    };
    (@from_chain $v:ident, $ty:ident, $var:ident ( $($f:ident),+ $(,)? )) => {
        $crate::impl_json_enum!(@from_chain $v, $ty, $var($($f),+),)
    };
    (@from_chain $v:ident, $ty:ident, $var:ident) => {
        $crate::impl_json_enum!(@from_chain $v, $ty, $var,)
    };
}

// ---------------------------------------------------------------------
// Parser.

/// Parses a JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(JsonError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(JsonError::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| JsonError::new("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if integral {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((-(n as i128)) as i64));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| JsonError::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ipv4Prefix, RouterId, SimTime};

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::U64(u64::MAX),
            Value::I64(-42),
            Value::Str("a \"quoted\"\nline".to_string()),
        ] {
            let text = v.render_pretty();
            assert_eq!(parse(&text).unwrap(), v, "text: {text}");
        }
    }

    #[test]
    fn nested_structure_roundtrips() {
        let v = Value::Object(vec![
            (
                "xs".to_string(),
                Value::Array(vec![Value::U64(1), Value::Null]),
            ),
            ("o".to_string(), Value::Object(vec![])),
            ("e".to_string(), Value::Array(vec![])),
        ]);
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn workspace_types_roundtrip() {
        let p: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
        assert_eq!(Ipv4Prefix::from_json(&p.to_json()).unwrap(), p);
        let t = SimTime::from_nanos(123_456_789);
        assert_eq!(SimTime::from_json(&t.to_json()).unwrap(), t);
        let r = RouterId(7);
        assert_eq!(RouterId::from_json(&r.to_json()).unwrap(), r);
        assert_eq!(r.to_json(), Value::U64(7));
    }

    #[test]
    fn options_vecs_tuples() {
        let x: Option<u32> = None;
        assert_eq!(x.to_json(), Value::Null);
        let y: Option<(RouterId, u32)> = Some((RouterId(1), 9));
        let back: Option<(RouterId, u32)> = FromJson::from_json(&y.to_json()).unwrap();
        assert_eq!(back, y);
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_json(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(u32::from_json(&Value::Str("3".into())).is_err());
        assert!(u8::from_json(&Value::U64(300)).is_err());
    }

    #[derive(Debug, PartialEq)]
    enum Sample {
        Unit,
        One(u32),
        Two(u32, u32),
        Named { a: u32, b: Option<u32> },
    }
    crate::impl_json_enum!(Sample {
        Unit,
        One(x),
        Two(x, y),
        Named { a, b },
    });

    #[test]
    fn enum_encoding_matches_serde_externally_tagged() {
        assert_eq!(Sample::Unit.to_json(), Value::Str("Unit".into()));
        assert_eq!(
            Sample::One(5).to_json(),
            Value::Object(vec![("One".into(), Value::U64(5))])
        );
        assert_eq!(
            Sample::Two(1, 2).to_json(),
            Value::Object(vec![(
                "Two".into(),
                Value::Array(vec![Value::U64(1), Value::U64(2)])
            )])
        );
        for s in [
            Sample::Unit,
            Sample::One(7),
            Sample::Two(8, 9),
            Sample::Named { a: 1, b: None },
            Sample::Named { a: 1, b: Some(2) },
        ] {
            assert_eq!(Sample::from_json(&s.to_json()).unwrap(), s);
        }
        assert!(Sample::from_json(&Value::Str("Nope".into())).is_err());
    }

    #[derive(Debug, PartialEq)]
    struct Plain {
        n: u32,
        name: String,
    }
    crate::impl_json_struct!(Plain { n, name });

    #[test]
    fn struct_macro_roundtrips_and_validates() {
        let p = Plain {
            n: 3,
            name: "x".into(),
        };
        let v = p.to_json();
        assert_eq!(Plain::from_json(&v).unwrap(), p);
        assert!(Plain::from_json(&Value::Object(vec![("n".into(), Value::U64(3))])).is_err());
    }
}
