//! Fundamental network types for the CPVR workspace.
//!
//! This crate provides the addressing substrate everything else builds on:
//!
//! * [`Ipv4Prefix`] — an IPv4 prefix with the host bits masked off,
//!   supporting containment and overlap tests ([`prefix`]).
//! * [`PrefixTrie`] — a binary trie keyed by prefixes with
//!   longest-prefix-match lookup, the core data structure behind FIBs,
//!   RIBs, and equivalence-class computation ([`trie`]).
//! * Identifier newtypes ([`RouterId`], [`AsNum`], [`IfaceId`]) that keep
//!   router numbers, AS numbers, and interface indices from being mixed up
//!   ([`ids`]).
//! * [`SimTime`] — the simulation clock: nanosecond-resolution, totally
//!   ordered, and printable in the units the paper's Fig. 5 uses ([`time`]).
//! * CRC-32 (IEEE) checksums ([`crc32`]) — the integrity check shared by
//!   the collector's wire codec and its write-ahead log.
//! * LEB128 varints ([`varint`]) and intern tables ([`intern`]) — the
//!   building blocks of the collector's binary wire codec (v3).
//!
//! The crate is deliberately dependency-free (per the workspace design
//! rules) and fully deterministic: no hashing with random state leaks into
//! iteration orders that other crates rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod hash;
pub mod ids;
pub mod intern;
pub mod json;
pub mod prefix;
pub mod time;
pub mod trace;
pub mod trie;
pub mod varint;

pub use hash::{fnv1a64, Fnv1a64};
pub use ids::{AsNum, IfaceId, RouterId};
pub use intern::{InternStore, InternTable, Interns};
pub use prefix::{Ipv4Prefix, PrefixParseError};
pub use time::SimTime;
pub use trace::TraceCtx;
pub use trie::{Covering, PrefixTrie};
