//! IPv4 prefixes.
//!
//! A prefix is the unit of routing state throughout the workspace: route
//! advertisements carry one, RIB and FIB entries are keyed by one, and the
//! paper's happens-before inference filters candidate I/O pairs by shared
//! prefix (§4.2 "Prefixes").

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 prefix: a network address plus a mask length in `0..=32`.
///
/// The host bits are always stored as zero, so two `Ipv4Prefix` values are
/// equal iff they denote the same set of addresses. Ordering is
/// lexicographic on `(network, length)`, which places a prefix immediately
/// before its more-specific children — convenient for sorted dumps.
///
/// ```
/// use cpvr_types::Ipv4Prefix;
///
/// let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
/// assert!(p.contains_addr("10.1.2.3".parse().unwrap()));
/// assert!(p.covers(&"10.128.0.0/9".parse().unwrap()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Prefix {
    bits: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// The default route, `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { bits: 0, len: 0 };

    /// Builds a prefix from a network address and mask length, masking off
    /// any host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        let bits = u32::from(addr) & mask(len);
        Ipv4Prefix { bits, len }
    }

    /// Builds a prefix from raw network bits and a mask length, masking off
    /// any host bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn from_bits(bits: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Ipv4Prefix {
            bits: bits & mask(len),
            len,
        }
    }

    /// A /32 host prefix for a single address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Prefix {
            bits: u32::from(addr),
            len: 32,
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The network address as raw bits (host bits are zero).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The mask length.
    #[allow(clippy::len_without_is_empty)] // a /0 prefix is not "empty"
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length default route.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The netmask as raw bits (e.g. `/24` → `0xffff_ff00`).
    pub fn mask_bits(&self) -> u32 {
        mask(self.len)
    }

    /// The first address covered by the prefix (the network address).
    pub fn first_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits)
    }

    /// The last address covered by the prefix (the broadcast address for
    /// conventional subnets).
    pub fn last_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.bits | !mask(self.len))
    }

    /// Does this prefix contain the given address?
    pub fn contains_addr(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & mask(self.len)) == self.bits
    }

    /// Does this prefix cover `other` entirely (i.e. is it equal or less
    /// specific)?
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && (other.bits & mask(self.len)) == self.bits
    }

    /// Do the two prefixes share any address?
    ///
    /// Two prefixes overlap iff one covers the other.
    pub fn overlaps(&self, other: &Ipv4Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The immediate parent (one bit shorter), or `None` for the default
    /// route.
    pub fn parent(&self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Ipv4Prefix::from_bits(self.bits, self.len - 1))
        }
    }

    /// The two immediate children (one bit longer), or `None` for a /32.
    pub fn children(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len == 32 {
            return None;
        }
        let left = Ipv4Prefix {
            bits: self.bits,
            len: self.len + 1,
        };
        let right = Ipv4Prefix {
            bits: self.bits | (1u32 << (31 - self.len)),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// The value of bit `i` (0 = most significant) of the network address.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn bit(&self, i: u8) -> bool {
        assert!(i < 32);
        (self.bits >> (31 - i)) & 1 == 1
    }
}

/// Builds a netmask with `len` leading one-bits.
fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

/// Error returned when parsing an [`Ipv4Prefix`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// The string had no `/` separator.
    MissingSlash,
    /// The address part was not a valid dotted quad.
    BadAddress,
    /// The length part was not an integer in `0..=32`.
    BadLength,
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::MissingSlash => write!(f, "missing '/' in prefix"),
            PrefixParseError::BadAddress => write!(f, "invalid IPv4 address in prefix"),
            PrefixParseError::BadLength => write!(f, "invalid prefix length (want 0..=32)"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Ipv4Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(PrefixParseError::MissingSlash)?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| PrefixParseError::BadAddress)?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError::BadLength)?;
        if len > 32 {
            return Err(PrefixParseError::BadLength);
        }
        Ok(Ipv4Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn host_bits_are_masked() {
        assert_eq!(p("10.1.2.3/8"), p("10.0.0.0/8"));
        assert_eq!(p("10.1.2.3/8").network(), Ipv4Addr::new(10, 0, 0, 0));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            "10.0.0.0".parse::<Ipv4Prefix>(),
            Err(PrefixParseError::MissingSlash)
        );
        assert_eq!(
            "10.0.0/8".parse::<Ipv4Prefix>(),
            Err(PrefixParseError::BadAddress)
        );
        assert_eq!(
            "10.0.0.0/33".parse::<Ipv4Prefix>(),
            Err(PrefixParseError::BadLength)
        );
        assert_eq!(
            "10.0.0.0/x".parse::<Ipv4Prefix>(),
            Err(PrefixParseError::BadLength)
        );
    }

    #[test]
    fn contains_addr_respects_mask() {
        let net = p("172.16.0.0/12");
        assert!(net.contains_addr("172.16.0.1".parse().unwrap()));
        assert!(net.contains_addr("172.31.255.255".parse().unwrap()));
        assert!(!net.contains_addr("172.32.0.0".parse().unwrap()));
    }

    #[test]
    fn default_contains_everything() {
        assert!(Ipv4Prefix::DEFAULT.contains_addr("255.255.255.255".parse().unwrap()));
        assert!(Ipv4Prefix::DEFAULT.covers(&p("1.2.3.4/32")));
        assert!(Ipv4Prefix::DEFAULT.is_default());
    }

    #[test]
    fn covers_and_overlaps() {
        assert!(p("10.0.0.0/8").covers(&p("10.5.0.0/16")));
        assert!(!p("10.5.0.0/16").covers(&p("10.0.0.0/8")));
        assert!(p("10.0.0.0/8").overlaps(&p("10.5.0.0/16")));
        assert!(p("10.5.0.0/16").overlaps(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").overlaps(&p("11.0.0.0/8")));
        assert!(p("10.0.0.0/8").covers(&p("10.0.0.0/8")));
    }

    #[test]
    fn parent_child_navigation() {
        let net = p("10.0.0.0/8");
        let (l, r) = net.children().unwrap();
        assert_eq!(l, p("10.0.0.0/9"));
        assert_eq!(r, p("10.128.0.0/9"));
        assert_eq!(l.parent().unwrap(), net);
        assert_eq!(r.parent().unwrap(), net);
        assert!(Ipv4Prefix::DEFAULT.parent().is_none());
        assert!(p("1.2.3.4/32").children().is_none());
    }

    #[test]
    fn first_last_addr() {
        let net = p("192.168.1.0/24");
        assert_eq!(net.first_addr(), Ipv4Addr::new(192, 168, 1, 0));
        assert_eq!(net.last_addr(), Ipv4Addr::new(192, 168, 1, 255));
        let host = p("5.6.7.8/32");
        assert_eq!(host.first_addr(), host.last_addr());
    }

    #[test]
    fn bit_extraction() {
        let net = p("128.0.0.0/1");
        assert!(net.bit(0));
        let net = p("64.0.0.0/2");
        assert!(!net.bit(0));
        assert!(net.bit(1));
    }

    #[test]
    fn ordering_groups_children_after_parent() {
        let mut v = vec![p("10.128.0.0/9"), p("10.0.0.0/8"), p("10.0.0.0/9")];
        v.sort();
        assert_eq!(v, vec![p("10.0.0.0/8"), p("10.0.0.0/9"), p("10.128.0.0/9")]);
    }
}
