//! Simulation time.
//!
//! The paper's feasibility study (Fig. 5) reports event gaps spanning five
//! orders of magnitude — 0.1 ms FIB installs up to a 25 s TTY-to-soft-
//! reconfiguration delay — so the clock needs both range and resolution.
//! [`SimTime`] is a nanosecond counter in a `u64`, good for ~584 years of
//! simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in nanoseconds from simulation start.
///
/// `SimTime` is totally ordered and supports the arithmetic the event loop
/// needs. Display picks a human unit automatically, matching the style of
/// the paper's Fig. 5 annotations (`25s`, `4ms`, `0.1ms`).
///
/// ```
/// use cpvr_types::SimTime;
/// let t = SimTime::from_millis(4);
/// assert_eq!((t + SimTime::from_millis(8)).to_string(), "12ms");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time — useful as an "infinite" horizon
    /// or watermark.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The time as fractional milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The time as fractional seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; the result is zero if `other` is later.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0ms")
        } else if ns >= 1_000_000_000 && ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns >= 100_000 {
            write!(f, "{:.1}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", ns as f64 / 1e3)
        }
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn display_matches_figure_style() {
        assert_eq!(SimTime::from_secs(25).to_string(), "25s");
        assert_eq!(SimTime::from_millis(4).to_string(), "4ms");
        assert_eq!(SimTime::from_micros(100).to_string(), "0.1ms");
        assert_eq!(SimTime::ZERO.to_string(), "0ms");
        assert_eq!(SimTime::from_micros(50).to_string(), "50us");
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a + b, SimTime::from_millis(14));
        assert_eq!(a - b, SimTime::from_millis(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(14));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(1),
            SimTime::ZERO,
            SimTime::from_millis(5),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(1));
    }

    #[test]
    fn float_conversions() {
        assert!((SimTime::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_micros(2500).as_millis_f64() - 2.5).abs() < 1e-12);
    }
}
