//! Causal trace contexts (§4.3/§6 debugging primitive).
//!
//! A [`TraceCtx`] names one causal story — a sampled event's flight
//! from capture tap to snapshot verdict, a repair's lifecycle from
//! proposal to peer verification, or one federated round — so that
//! records emitted by *different processes* can be stitched back into
//! a single timeline afterwards. The context is deliberately tiny
//! (12 bytes on the wire: `trace_id` LE64 + `parent` LE32) because it
//! rides as an optional trailer on hot-path event frames.
//!
//! Contexts are minted **deterministically** from content identities
//! ([`TraceCtx::for_repair`] hashes the repair id, which is itself a
//! content digest), so every federation member derives the *same*
//! trace id for the same repair without any coordination — that is
//! what lets `cpvr-trace` stitch dumps from three collectors into one
//! connected timeline. Flight and round mints fold in the session or
//! horizon for the same reason.
//!
//! `parent` is a hop counter: the stage code of the causally preceding
//! record (0 at the mint). It orders records *within* one trace when
//! monotonic clocks from different hosts cannot be compared directly.

use crate::hash::Fnv1a64;
use crate::json::{FromJson, JsonError, ToJson, Value};
use crate::time::SimTime;

/// Wire size of an encoded [`TraceCtx`] trailer.
pub const TRACE_CTX_WIRE_LEN: usize = 12;

/// A causal trace context: which story a record belongs to
/// (`trace_id`) and which hop of that story emitted it (`parent`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceCtx {
    /// Deterministic identity of the causal story (see the module doc
    /// for how mints derive it from content).
    pub trace_id: u64,
    /// Stage code of the causally preceding record; 0 at the mint.
    pub parent: u32,
}

/// Domain-separation tags for the deterministic mints: two different
/// kinds of story over the same content must not collide.
const DOMAIN_FLIGHT: &[u8] = b"cpvr-trace/flight";
const DOMAIN_REPAIR: &[u8] = b"cpvr-trace/repair";
const DOMAIN_ROUND: &[u8] = b"cpvr-trace/round";

fn mint(domain: &[u8], a: u64, b: u64) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(domain);
    h.update_u64(a);
    h.update_u64(b);
    h.finish()
}

impl TraceCtx {
    /// The context for one sampled event flight, minted at the sink
    /// from its session and the event's sequence number.
    pub fn for_flight(session: u64, seq: u64) -> TraceCtx {
        TraceCtx {
            trace_id: mint(DOMAIN_FLIGHT, session, seq),
            parent: 0,
        }
    }

    /// The context for one repair lifecycle. `repair_id` is a content
    /// digest, so every federation member — owner and peers — derives
    /// the identical trace id independently.
    pub fn for_repair(repair_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id: mint(DOMAIN_REPAIR, repair_id, 0),
            parent: 0,
        }
    }

    /// The context for one federated round at fold horizon `t` —
    /// identical on every member, because horizons are shared.
    pub fn for_round(t: SimTime) -> TraceCtx {
        TraceCtx {
            trace_id: mint(DOMAIN_ROUND, t.as_nanos(), 0),
            parent: 0,
        }
    }

    /// The same trace, one causal hop later: a record emitted *because
    /// of* a stage-`parent` record carries that stage as its parent.
    pub fn child(self, parent: u32) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            parent,
        }
    }

    /// Appends the 12-byte wire form (`trace_id` LE64 + `parent` LE32).
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.parent.to_le_bytes());
    }

    /// The 12-byte wire form as an array (for fixed-size trailers).
    pub fn to_wire(&self) -> [u8; TRACE_CTX_WIRE_LEN] {
        let mut b = [0u8; TRACE_CTX_WIRE_LEN];
        b[..8].copy_from_slice(&self.trace_id.to_le_bytes());
        b[8..].copy_from_slice(&self.parent.to_le_bytes());
        b
    }

    /// Decodes a trailer that must be exactly
    /// [`TRACE_CTX_WIRE_LEN`] bytes; `None` on any other length.
    pub fn decode(buf: &[u8]) -> Option<TraceCtx> {
        if buf.len() != TRACE_CTX_WIRE_LEN {
            return None;
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&buf[..8]);
        let mut parent = [0u8; 4];
        parent.copy_from_slice(&buf[8..]);
        Some(TraceCtx {
            trace_id: u64::from_le_bytes(id),
            parent: u32::from_le_bytes(parent),
        })
    }
}

impl ToJson for TraceCtx {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("trace_id".to_string(), self.trace_id.to_json()),
            ("parent".to_string(), self.parent.to_json()),
        ])
    }
}

impl FromJson for TraceCtx {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(TraceCtx {
            trace_id: u64::from_json(v.field("trace_id")?)?,
            parent: u32::from_json(v.field("parent")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        let ctx = TraceCtx {
            trace_id: 0x0123_4567_89ab_cdef,
            parent: 42,
        };
        let mut buf = Vec::new();
        ctx.encode_to(&mut buf);
        assert_eq!(buf.len(), TRACE_CTX_WIRE_LEN);
        assert_eq!(buf, ctx.to_wire());
        assert_eq!(TraceCtx::decode(&buf), Some(ctx));
        assert_eq!(TraceCtx::decode(&buf[..11]), None);
        assert_eq!(TraceCtx::decode(&[0u8; 13]), None);
    }

    #[test]
    fn mints_are_deterministic_and_domain_separated() {
        assert_eq!(TraceCtx::for_repair(7), TraceCtx::for_repair(7));
        assert_ne!(
            TraceCtx::for_repair(7).trace_id,
            TraceCtx::for_flight(7, 0).trace_id
        );
        assert_ne!(
            TraceCtx::for_flight(1, 2).trace_id,
            TraceCtx::for_flight(2, 1).trace_id
        );
        assert_ne!(
            TraceCtx::for_round(SimTime::from_nanos(5)).trace_id,
            TraceCtx::for_repair(5).trace_id
        );
    }

    #[test]
    fn child_keeps_the_trace_id() {
        let ctx = TraceCtx::for_repair(9);
        let hop = ctx.child(3);
        assert_eq!(hop.trace_id, ctx.trace_id);
        assert_eq!(hop.parent, 3);
    }

    #[test]
    fn json_round_trip() {
        let ctx = TraceCtx::for_flight(11, 22).child(5);
        let text = crate::json::to_string_compact(&ctx);
        let back: TraceCtx = crate::json::from_str(&text).unwrap();
        assert_eq!(back, ctx);
    }
}
