//! A binary prefix trie with longest-prefix-match lookup.
//!
//! This is the workhorse structure for RIBs, FIBs, and the verifier's
//! equivalence-class slicing. It is a plain (non-compressed) binary trie
//! over prefix bits, arena-allocated for cache friendliness and so removal
//! never invalidates other nodes' indices. Simplicity over cleverness, per
//! the workspace guides: no path compression, no unsafe.

use crate::prefix::Ipv4Prefix;
use std::net::Ipv4Addr;

const NO_NODE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node<V> {
    children: [u32; 2],
    value: Option<V>,
}

impl<V> Node<V> {
    fn new() -> Self {
        Node {
            children: [NO_NODE, NO_NODE],
            value: None,
        }
    }
}

/// A map from [`Ipv4Prefix`] to `V` supporting longest-prefix-match.
///
/// ```
/// use cpvr_types::{Ipv4Prefix, PrefixTrie};
///
/// let mut t = PrefixTrie::new();
/// t.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// t.insert("10.1.0.0/16".parse().unwrap(), "fine");
/// let (p, v) = t.longest_match("10.1.2.3".parse().unwrap()).unwrap();
/// assert_eq!(*v, "fine");
/// assert_eq!(p.to_string(), "10.1.0.0/16");
/// ```
#[derive(Clone, Debug)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node<V>>,
    free: Vec<u32>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::new()],
            free: Vec::new(),
            len: 0,
        }
    }

    /// The number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::new());
        self.free.clear();
        self.len = 0;
    }

    fn alloc(&mut self) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = Node::new();
            i
        } else {
            self.nodes.push(Node::new());
            (self.nodes.len() - 1) as u32
        }
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: V) -> Option<V> {
        let mut node = 0u32;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            let child = self.nodes[node as usize].children[b];
            node = if child == NO_NODE {
                let new = self.alloc();
                self.nodes[node as usize].children[b] = new;
                new
            } else {
                child
            };
        }
        let old = self.nodes[node as usize].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Walks to the node for `prefix`, returning its index if the path
    /// exists.
    fn find_node(&self, prefix: &Ipv4Prefix) -> Option<u32> {
        let mut node = 0u32;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            let child = self.nodes[node as usize].children[b];
            if child == NO_NODE {
                return None;
            }
            node = child;
        }
        Some(node)
    }

    /// Returns the value stored exactly at `prefix`.
    pub fn get(&self, prefix: &Ipv4Prefix) -> Option<&V> {
        self.find_node(prefix)
            .and_then(|n| self.nodes[n as usize].value.as_ref())
    }

    /// Returns a mutable reference to the value stored exactly at `prefix`.
    pub fn get_mut(&mut self, prefix: &Ipv4Prefix) -> Option<&mut V> {
        self.find_node(prefix)
            .and_then(|n| self.nodes[n as usize].value.as_mut())
    }

    /// True if a value is stored exactly at `prefix`.
    pub fn contains(&self, prefix: &Ipv4Prefix) -> bool {
        self.get(prefix).is_some()
    }

    /// Removes and returns the value at `prefix`, pruning now-empty nodes.
    pub fn remove(&mut self, prefix: &Ipv4Prefix) -> Option<V> {
        // Record the path so empty leaves can be pruned afterwards.
        let mut path = Vec::with_capacity(prefix.len() as usize + 1);
        let mut node = 0u32;
        path.push(node);
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            let child = self.nodes[node as usize].children[b];
            if child == NO_NODE {
                return None;
            }
            node = child;
            path.push(node);
        }
        let removed = self.nodes[node as usize].value.take()?;
        self.len -= 1;
        // Prune empty leaf nodes bottom-up (never the root).
        for i in (1..path.len()).rev() {
            let n = path[i];
            let nd = &self.nodes[n as usize];
            if nd.value.is_some() || nd.children[0] != NO_NODE || nd.children[1] != NO_NODE {
                break;
            }
            let parent = path[i - 1];
            let b = prefix.bit((i - 1) as u8) as usize;
            self.nodes[parent as usize].children[b] = NO_NODE;
            self.free.push(n);
        }
        Some(removed)
    }

    /// Longest-prefix-match: the most specific entry containing `addr`.
    pub fn longest_match(&self, addr: Ipv4Addr) -> Option<(Ipv4Prefix, &V)> {
        let bits = u32::from(addr);
        let mut node = 0u32;
        let mut best: Option<(u8, &V)> = None;
        if let Some(v) = self.nodes[0].value.as_ref() {
            best = Some((0, v));
        }
        for depth in 0..32u8 {
            let b = ((bits >> (31 - depth)) & 1) as usize;
            let child = self.nodes[node as usize].children[b];
            if child == NO_NODE {
                break;
            }
            node = child;
            if let Some(v) = self.nodes[node as usize].value.as_ref() {
                best = Some((depth + 1, v));
            }
        }
        best.map(|(len, v)| (Ipv4Prefix::new(addr, len), v))
    }

    /// All entries whose prefix contains `addr`, least specific first.
    pub fn matches(&self, addr: Ipv4Addr) -> Vec<(Ipv4Prefix, &V)> {
        let bits = u32::from(addr);
        let mut out = Vec::new();
        let mut node = 0u32;
        if let Some(v) = self.nodes[0].value.as_ref() {
            out.push((Ipv4Prefix::DEFAULT, v));
        }
        for depth in 0..32u8 {
            let b = ((bits >> (31 - depth)) & 1) as usize;
            let child = self.nodes[node as usize].children[b];
            if child == NO_NODE {
                break;
            }
            node = child;
            if let Some(v) = self.nodes[node as usize].value.as_ref() {
                out.push((Ipv4Prefix::new(addr, depth + 1), v));
            }
        }
        out
    }

    /// The *maximal* stored proper descendants of `prefix`: every stored
    /// prefix strictly covered by `prefix` that has no stored ancestor
    /// strictly between itself and `prefix`. Their address ranges are
    /// pairwise disjoint and returned in ascending order, which is
    /// exactly what equivalence-class slicing needs to find the space a
    /// prefix owns itself.
    ///
    /// Each trie node below `prefix` is visited at most once and descent
    /// stops at the first stored value, so a full sweep calling this for
    /// every stored prefix costs O(nodes) = O(n·W) total, not O(n²).
    ///
    /// ```
    /// use cpvr_types::{Ipv4Prefix, PrefixTrie};
    ///
    /// let mut t = PrefixTrie::new();
    /// for s in ["10.0.0.0/8", "10.0.0.0/16", "10.0.1.0/24", "10.128.0.0/9"] {
    ///     t.insert(s.parse::<Ipv4Prefix>().unwrap(), s);
    /// }
    /// let kids: Vec<String> = t
    ///     .children_of(&"10.0.0.0/8".parse().unwrap())
    ///     .into_iter()
    ///     .map(|(p, _)| p.to_string())
    ///     .collect();
    /// // The /24 is hidden behind the /16; the /8 itself is excluded.
    /// assert_eq!(kids, vec!["10.0.0.0/16", "10.128.0.0/9"]);
    /// ```
    pub fn children_of(&self, prefix: &Ipv4Prefix) -> Vec<(Ipv4Prefix, &V)> {
        let Some(start) = self.find_node(prefix) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if let Some((l, r)) = prefix.children() {
            let nd = &self.nodes[start as usize];
            if nd.children[0] != NO_NODE {
                self.walk_maximal(nd.children[0], l, &mut out);
            }
            if nd.children[1] != NO_NODE {
                self.walk_maximal(nd.children[1], r, &mut out);
            }
        }
        out
    }

    fn walk_maximal<'a>(
        &'a self,
        node: u32,
        prefix: Ipv4Prefix,
        out: &mut Vec<(Ipv4Prefix, &'a V)>,
    ) {
        let nd = &self.nodes[node as usize];
        if let Some(v) = nd.value.as_ref() {
            out.push((prefix, v));
            return; // maximal: never descend past a stored prefix
        }
        if let Some((l, r)) = prefix.children() {
            if nd.children[0] != NO_NODE {
                self.walk_maximal(nd.children[0], l, out);
            }
            if nd.children[1] != NO_NODE {
                self.walk_maximal(nd.children[1], r, out);
            }
        }
    }

    /// Lazily iterates over every stored entry whose prefix contains
    /// `addr`, least specific first — the allocation-free sibling of
    /// [`matches`](Self::matches), for hot paths that usually stop early
    /// (e.g. collecting the stored ancestors of an updated prefix).
    ///
    /// ```
    /// use cpvr_types::{Ipv4Prefix, PrefixTrie};
    ///
    /// let mut t = PrefixTrie::new();
    /// t.insert("0.0.0.0/0".parse::<Ipv4Prefix>().unwrap(), 0u8);
    /// t.insert("10.0.0.0/8".parse().unwrap(), 8);
    /// t.insert("10.1.0.0/16".parse().unwrap(), 16);
    /// t.insert("11.0.0.0/8".parse().unwrap(), 99);
    /// let lens: Vec<u8> = t.covering("10.1.2.3".parse().unwrap()).map(|(_, v)| *v).collect();
    /// assert_eq!(lens, vec![0, 8, 16]);
    /// ```
    pub fn covering(&self, addr: Ipv4Addr) -> Covering<'_, V> {
        Covering {
            trie: self,
            bits: u32::from(addr),
            node: 0,
            depth: 0,
        }
    }

    /// All stored entries covered by `root` (including `root` itself),
    /// in depth-first prefix order.
    pub fn covered_by(&self, root: &Ipv4Prefix) -> Vec<(Ipv4Prefix, &V)> {
        let Some(start) = self.find_node(root) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        self.walk(start, *root, &mut |p, v| out.push((p, v)));
        out
    }

    /// Visits every entry in depth-first prefix order.
    pub fn iter(&self) -> Vec<(Ipv4Prefix, &V)> {
        let mut out = Vec::new();
        self.walk(0, Ipv4Prefix::DEFAULT, &mut |p, v| out.push((p, v)));
        out
    }

    /// All stored prefixes in depth-first prefix order.
    pub fn prefixes(&self) -> Vec<Ipv4Prefix> {
        self.iter().into_iter().map(|(p, _)| p).collect()
    }

    fn walk<'a>(&'a self, node: u32, prefix: Ipv4Prefix, f: &mut impl FnMut(Ipv4Prefix, &'a V)) {
        let nd = &self.nodes[node as usize];
        if let Some(v) = nd.value.as_ref() {
            f(prefix, v);
        }
        if prefix.len() < 32 {
            if let Some((l, r)) = prefix.children() {
                if nd.children[0] != NO_NODE {
                    self.walk(nd.children[0], l, f);
                }
                if nd.children[1] != NO_NODE {
                    self.walk(nd.children[1], r, f);
                }
            }
        }
    }
}

/// Iterator over the stored entries containing one address, least
/// specific first. Created by [`PrefixTrie::covering`].
pub struct Covering<'a, V> {
    trie: &'a PrefixTrie<V>,
    bits: u32,
    /// The next node to examine; `NO_NODE` when exhausted.
    node: u32,
    depth: u8,
}

impl<'a, V> Iterator for Covering<'a, V> {
    type Item = (Ipv4Prefix, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while self.node != NO_NODE {
            let nd = &self.trie.nodes[self.node as usize];
            let depth = self.depth;
            // Step down along the address's bit path before yielding, so
            // the cursor is already positioned for the next call.
            if depth < 32 {
                let b = ((self.bits >> (31 - depth)) & 1) as usize;
                self.node = nd.children[b];
                self.depth = depth + 1;
            } else {
                self.node = NO_NODE;
            }
            if let Some(v) = nd.value.as_ref() {
                return Some((Ipv4Prefix::new(Ipv4Addr::from(self.bits), depth), v));
            }
        }
        None
    }
}

impl<V> FromIterator<(Ipv4Prefix, V)> for PrefixTrie<V> {
    fn from_iter<T: IntoIterator<Item = (Ipv4Prefix, V)>>(iter: T) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert!(t.is_empty());
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
    }

    #[test]
    fn lpm_picks_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        let (pre, v) = t.longest_match(a("10.1.2.3")).unwrap();
        assert_eq!(*v, "sixteen");
        assert_eq!(pre, p("10.1.0.0/16"));
        let (pre, v) = t.longest_match(a("10.9.0.1")).unwrap();
        assert_eq!(*v, "eight");
        assert_eq!(pre, p("10.0.0.0/8"));
        let (pre, v) = t.longest_match(a("192.0.2.1")).unwrap();
        assert_eq!(*v, "default");
        assert_eq!(pre, Ipv4Prefix::DEFAULT);
    }

    #[test]
    fn lpm_miss_without_default() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.longest_match(a("11.0.0.1")).is_none());
    }

    #[test]
    fn matches_orders_least_specific_first() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.2.0.0/16"), 99);
        let m: Vec<u8> = t
            .matches(a("10.1.2.3"))
            .into_iter()
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(m, vec![0, 8, 16]);
    }

    #[test]
    fn remove_prunes_but_keeps_siblings() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/9"), 'l');
        t.insert(p("10.128.0.0/9"), 'r');
        assert_eq!(t.remove(&p("10.0.0.0/9")), Some('l'));
        assert_eq!(t.get(&p("10.128.0.0/9")), Some(&'r'));
        assert_eq!(t.longest_match(a("10.200.0.1")).map(|(_, v)| *v), Some('r'));
    }

    #[test]
    fn remove_keeps_ancestor_values() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.remove(&p("10.1.0.0/16"));
        assert_eq!(t.longest_match(a("10.1.2.3")).map(|(_, v)| *v), Some(8));
    }

    #[test]
    fn iter_is_prefix_ordered() {
        let mut t = PrefixTrie::new();
        for s in ["10.128.0.0/9", "10.0.0.0/8", "0.0.0.0/0", "10.0.0.0/9"] {
            t.insert(p(s), s.to_string());
        }
        let order: Vec<Ipv4Prefix> = t.prefixes();
        assert_eq!(
            order,
            vec![
                p("0.0.0.0/0"),
                p("10.0.0.0/8"),
                p("10.0.0.0/9"),
                p("10.128.0.0/9")
            ]
        );
    }

    #[test]
    fn covered_by_scopes_subtree() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.1.0.0/16"), 2);
        t.insert(p("11.0.0.0/8"), 3);
        let sub: Vec<i32> = t
            .covered_by(&p("10.0.0.0/8"))
            .into_iter()
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(sub, vec![1, 2]);
        assert!(t.covered_by(&p("12.0.0.0/8")).is_empty());
    }

    #[test]
    fn default_route_value_at_root() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT, 42);
        assert_eq!(t.get(&Ipv4Prefix::DEFAULT), Some(&42));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(&Ipv4Prefix::DEFAULT), Some(42));
        assert!(t.is_empty());
    }

    #[test]
    fn free_list_reuse() {
        let mut t = PrefixTrie::new();
        for i in 0..100u32 {
            t.insert(Ipv4Prefix::from_bits(i << 8, 24), i);
        }
        let cap = t.nodes.len();
        for i in 0..100u32 {
            t.remove(&Ipv4Prefix::from_bits(i << 8, 24));
        }
        for i in 0..100u32 {
            t.insert(Ipv4Prefix::from_bits(i << 8, 24), i);
        }
        assert_eq!(t.nodes.len(), cap, "freed nodes should be reused");
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn children_of_returns_maximal_descendants() {
        let mut t = PrefixTrie::new();
        for s in [
            "10.0.0.0/8",
            "10.0.0.0/16",
            "10.0.0.0/24",
            "10.64.0.0/16",
            "10.128.0.0/9",
            "11.0.0.0/8",
        ] {
            t.insert(p(s), ());
        }
        let kids: Vec<Ipv4Prefix> = t
            .children_of(&p("10.0.0.0/8"))
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        // The /24 is shadowed by the /16; 11/8 is outside; ranges ascend.
        assert_eq!(
            kids,
            vec![p("10.0.0.0/16"), p("10.64.0.0/16"), p("10.128.0.0/9")]
        );
        // A prefix with no stored path below it has no children.
        assert!(t.children_of(&p("12.0.0.0/8")).is_empty());
        // Children of a non-stored prefix on a stored path still work.
        let kids: Vec<Ipv4Prefix> = t
            .children_of(&p("10.0.0.0/12"))
            .into_iter()
            .map(|(c, _)| c)
            .collect();
        assert_eq!(kids, vec![p("10.0.0.0/16")]);
    }

    #[test]
    fn covering_iterates_lazily_and_matches_matches() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0u32);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.2.0.0/16"), 99);
        let addr = a("10.1.2.3");
        let lazy: Vec<(Ipv4Prefix, u32)> = t.covering(addr).map(|(c, v)| (c, *v)).collect();
        let eager: Vec<(Ipv4Prefix, u32)> =
            t.matches(addr).into_iter().map(|(c, v)| (c, *v)).collect();
        assert_eq!(lazy, eager);
        // Early termination is cheap: take(1) yields the default route.
        assert_eq!(
            t.covering(addr).next().map(|(c, _)| c),
            Some(p("0.0.0.0/0"))
        );
        // No covering entries at all.
        let empty: PrefixTrie<()> = PrefixTrie::new();
        assert_eq!(empty.covering(addr).count(), 0);
    }

    #[test]
    fn from_iterator() {
        let t: PrefixTrie<i32> = vec![(p("10.0.0.0/8"), 1), (p("11.0.0.0/8"), 2)]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 2);
    }
}
