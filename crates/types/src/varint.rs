//! LEB128 variable-length integers.
//!
//! The collector's binary wire codec (v3) stamps every event with
//! several small integers — sequence numbers, router ids, nanosecond
//! timestamps whose deltas are small — and fixed-width fields would
//! spend most of their bytes on zeros. LEB128 stores 7 value bits per
//! byte, with the high bit marking continuation: values below 128 cost
//! one byte, and a full `u64` costs at most ten.
//!
//! Encoding is canonical (no redundant trailing zero groups are
//! emitted), and decoding rejects non-terminated or overlong sequences
//! rather than wrapping silently.

/// Maximum encoded size of a `u64` (⌈64 / 7⌉ bytes).
pub const MAX_LEN: usize = 10;

/// Appends the LEB128 encoding of `v` to `out`.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends the LEB128 encoding of `v` to `out`.
#[inline]
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    write_u64(out, u64::from(v));
}

/// Reads one LEB128 `u64` from `buf` starting at `*pos`, advancing
/// `*pos` past it. Returns `None` on truncation or on a sequence whose
/// value would not fit in 64 bits.
#[inline]
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let low = u64::from(byte & 0x7f);
        // The tenth byte may only contribute the single remaining bit.
        if shift == 63 && low > 1 {
            return None;
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Reads one LEB128 `u32` from `buf` starting at `*pos`. Returns `None`
/// on truncation, overlong input, or a value that exceeds `u32`.
#[inline]
pub fn read_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let v = read_u64(buf, pos)?;
    u32::try_from(v).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            0x3fff,
            0x4000,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert!(buf.len() <= MAX_LEN);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v), "value {v}");
            assert_eq!(pos, buf.len(), "value {v} must consume exactly its bytes");
        }
    }

    #[test]
    fn small_values_cost_one_byte() {
        for v in 0u64..128 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(read_u64(&buf[..cut], &mut pos), None);
        }
    }

    #[test]
    fn overlong_and_overflowing_sequences_are_rejected() {
        // Eleven continuation bytes: longer than any valid u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
        // Ten bytes whose tenth contributes more than the last bit.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
        // u32 read rejects values beyond u32.
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1);
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos), None);
    }

    #[test]
    fn sequential_reads_advance_the_cursor() {
        let mut buf = Vec::new();
        for v in [5u64, 300, 1_000_000] {
            write_u64(&mut buf, v);
        }
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), Some(5));
        assert_eq!(read_u64(&buf, &mut pos), Some(300));
        assert_eq!(read_u64(&buf, &mut pos), Some(1_000_000));
        assert_eq!(pos, buf.len());
    }
}
