//! Property-based tests: the trie must behave exactly like a model
//! implementation built on a sorted map with linear-scan LPM.

use cpvr_types::{Ipv4Prefix, PrefixTrie};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Strategy producing an arbitrary prefix, biased toward short masks so
/// containment relationships actually occur.
fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Ipv4Prefix::from_bits(bits, len))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Ipv4Prefix, u32),
    Remove(Ipv4Prefix),
    Lookup(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_prefix(), any::<u32>()).prop_map(|(p, v)| Op::Insert(p, v)),
        arb_prefix().prop_map(Op::Remove),
        any::<u32>().prop_map(Op::Lookup),
    ]
}

/// Model LPM: scan all entries, keep the longest containing prefix.
fn model_lpm(model: &BTreeMap<Ipv4Prefix, u32>, addr: Ipv4Addr) -> Option<(Ipv4Prefix, u32)> {
    model
        .iter()
        .filter(|(p, _)| p.contains_addr(addr))
        .max_by_key(|(p, _)| p.len())
        .map(|(p, v)| (*p, *v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn trie_matches_model(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut trie = PrefixTrie::new();
        let mut model: BTreeMap<Ipv4Prefix, u32> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(p, v) => {
                    prop_assert_eq!(trie.insert(p, v), model.insert(p, v));
                }
                Op::Remove(p) => {
                    prop_assert_eq!(trie.remove(&p), model.remove(&p));
                }
                Op::Lookup(bits) => {
                    let addr = Ipv4Addr::from(bits);
                    let got = trie.longest_match(addr).map(|(p, v)| (p, *v));
                    prop_assert_eq!(got, model_lpm(&model, addr));
                }
            }
            prop_assert_eq!(trie.len(), model.len());
        }
    }

    #[test]
    fn iter_matches_sorted_model(entries in prop::collection::btree_map(arb_prefix(), any::<u32>(), 0..64)) {
        let trie: PrefixTrie<u32> = entries.iter().map(|(p, v)| (*p, *v)).collect();
        let got: Vec<(Ipv4Prefix, u32)> = trie.iter().into_iter().map(|(p, v)| (p, *v)).collect();
        let want: Vec<(Ipv4Prefix, u32)> = entries.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn matches_agrees_with_lpm(entries in prop::collection::btree_map(arb_prefix(), any::<u32>(), 1..64), bits in any::<u32>()) {
        let trie: PrefixTrie<u32> = entries.iter().map(|(p, v)| (*p, *v)).collect();
        let addr = Ipv4Addr::from(bits);
        let all = trie.matches(addr);
        // Every reported prefix must contain the address, in increasing
        // specificity, and the last one must equal the LPM result.
        for w in all.windows(2) {
            prop_assert!(w[0].0.len() < w[1].0.len());
        }
        for (p, _) in &all {
            prop_assert!(p.contains_addr(addr));
        }
        prop_assert_eq!(
            all.last().map(|(p, v)| (*p, **v)),
            trie.longest_match(addr).map(|(p, v)| (p, *v))
        );
    }

    #[test]
    fn covering_agrees_with_matches(entries in prop::collection::btree_map(arb_prefix(), any::<u32>(), 0..64), bits in any::<u32>()) {
        let trie: PrefixTrie<u32> = entries.iter().map(|(p, v)| (*p, *v)).collect();
        let addr = Ipv4Addr::from(bits);
        let lazy: Vec<(Ipv4Prefix, u32)> = trie.covering(addr).map(|(p, v)| (p, *v)).collect();
        let eager: Vec<(Ipv4Prefix, u32)> =
            trie.matches(addr).into_iter().map(|(p, v)| (p, *v)).collect();
        prop_assert_eq!(lazy, eager);
    }

    #[test]
    fn children_of_are_maximal_proper_descendants(
        entries in prop::collection::btree_map(arb_prefix(), any::<u32>(), 0..64),
        root in arb_prefix(),
    ) {
        let trie: PrefixTrie<u32> = entries.iter().map(|(p, v)| (*p, *v)).collect();
        let kids: Vec<Ipv4Prefix> = trie.children_of(&root).into_iter().map(|(p, _)| p).collect();
        // Model: stored q strictly under root with no stored r strictly
        // between root and q.
        let model: Vec<Ipv4Prefix> = entries
            .keys()
            .filter(|q| root.covers(q) && **q != root)
            .filter(|q| {
                !entries
                    .keys()
                    .any(|r| *r != root && r != *q && root.covers(r) && r.covers(q))
            })
            .copied()
            .collect();
        prop_assert_eq!(&kids, &model);
        // Maximal children are pairwise disjoint and ascend by range.
        for w in kids.windows(2) {
            prop_assert!(!w[0].overlaps(&w[1]));
            prop_assert!(w[0].last_addr() < w[1].first_addr());
        }
    }

    #[test]
    fn covers_is_consistent_with_contains(p1 in arb_prefix(), p2 in arb_prefix()) {
        // If p1 covers p2, then p1 contains both endpoints of p2.
        if p1.covers(&p2) {
            prop_assert!(p1.contains_addr(p2.first_addr()));
            prop_assert!(p1.contains_addr(p2.last_addr()));
        }
        // covers is a partial order: reflexive + antisymmetric.
        prop_assert!(p1.covers(&p1));
        if p1.covers(&p2) && p2.covers(&p1) {
            prop_assert_eq!(p1, p2);
        }
    }

    #[test]
    fn parent_covers_child(p in arb_prefix()) {
        if let Some(parent) = p.parent() {
            prop_assert!(parent.covers(&p));
        }
        if let Some((l, r)) = p.children() {
            prop_assert!(p.covers(&l));
            prop_assert!(p.covers(&r));
            prop_assert!(!l.overlaps(&r));
        }
    }
}
