//! Modeling distributed verification (§5).
//!
//! Centralized data-plane verifiers gather every FIB on one machine. The
//! paper observes that verifiers like HSA can instead be distributed:
//! each router keeps its own transfer function (here, its FIB) and passes
//! *partial verification results* to the next hop, trading message count
//! and per-hop latency for the removal of the central bottleneck.
//!
//! This module executes the distributed scheme faithfully over a
//! [`DataPlane`] — the partial result really does hop router to router,
//! each applying only its local FIB — and tallies the costs of both
//! schemes so experiment A3 can compare them.

use crate::ec::{equivalence_classes, EquivClass};
use crate::policy::Policy;
use crate::verifier::{verify, verify_incremental, VerifyReport};
use cpvr_dataplane::{DataPlane, FibAction, Hop, TraceOutcome, TraceResult};
use cpvr_topo::Topology;
use cpvr_types::{Ipv4Prefix, RouterId};

/// Cost tallies for one verification pass under both schemes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DistStats {
    /// Distributed: partial-result messages passed between routers.
    pub dist_messages: usize,
    /// Distributed: total per-router lookups performed.
    pub dist_total_work: usize,
    /// Distributed: the busiest router's lookup count (the bottleneck).
    pub dist_max_node_work: usize,
    /// Distributed: modeled wall-clock in link-delay units (longest
    /// dependency chain = deepest trace).
    pub dist_latency_hops: usize,
    /// Centralized: FIB entries shipped to the verifier (snapshot cost).
    pub central_snapshot_entries: usize,
    /// Centralized: lookups performed at the verifier (all the work in
    /// one place — also its `max_node_work`).
    pub central_work: usize,
}

/// One in-flight partial verification result: "a packet for
/// `representative` entered at `ingress` and has reached `at` after
/// `path`". Routers extend it with their local transfer function.
#[derive(Clone, Debug)]
struct PartialResult {
    representative: std::net::Ipv4Addr,
    at: RouterId,
    path: Vec<RouterId>,
}

/// Runs verification in the distributed style and returns the violations
/// (identical to [`verify`]'s) plus cost statistics for both schemes.
pub fn distributed_verify(
    topo: &Topology,
    dp: &DataPlane,
    policies: &[Policy],
) -> (VerifyReport, DistStats) {
    let ecs = equivalence_classes(dp);
    let stats = tally_schemes(topo, dp, &ecs);
    let report = verify(topo, dp, policies);
    (report, stats)
}

/// The delta flavor of [`distributed_verify`]: the partial-result walks
/// (and the centralized comparison) cover only equivalence classes whose
/// owning prefix overlaps one of the `changed` prefixes, and the verdict
/// comes from [`verify_incremental`] with the same scope. This models §5
/// composed with the incremental engine: after a FIB update, routers
/// re-exchange partial results only for the affected slices of the
/// address space.
pub fn distributed_verify_delta(
    topo: &Topology,
    dp: &DataPlane,
    policies: &[Policy],
    changed: &[Ipv4Prefix],
) -> (VerifyReport, DistStats) {
    let ecs: Vec<EquivClass> = equivalence_classes(dp)
        .into_iter()
        .filter(|ec| changed.iter().any(|c| c.overlaps(&ec.prefix)))
        .collect();
    let stats = tally_schemes(topo, dp, &ecs);
    let report = verify_incremental(topo, dp, policies, changed);
    (report, stats)
}

/// Executes the distributed partial-result walks over `ecs` and tallies
/// the costs of the distributed and centralized schemes.
fn tally_schemes(topo: &Topology, dp: &DataPlane, ecs: &[EquivClass]) -> DistStats {
    let mut stats = DistStats::default();
    let mut node_work = vec![0usize; dp.num_routers()];

    // --- distributed execution: per-EC, per-ingress partial results ----
    for ec in ecs {
        for ingress in 0..dp.num_routers() as u32 {
            let mut partial = PartialResult {
                representative: ec.representative,
                at: RouterId(ingress),
                path: vec![RouterId(ingress)],
            };
            let mut depth = 0usize;
            loop {
                // The local transfer function: one FIB lookup at the
                // current router.
                node_work[partial.at.index()] += 1;
                stats.dist_total_work += 1;
                let hit = dp.fib(partial.at).lookup(partial.representative);
                let next = match hit {
                    Some((_, e)) => match e.action {
                        FibAction::Forward(l) if topo.link(l).state.is_up() => {
                            Some(topo.link(l).other_end(partial.at).0)
                        }
                        _ => None,
                    },
                    None => None,
                };
                match next {
                    Some(nb) if !partial.path.contains(&nb) => {
                        // Pass the partial result downstream.
                        stats.dist_messages += 1;
                        depth += 1;
                        partial.at = nb;
                        partial.path.push(nb);
                    }
                    Some(_loop_closed) => {
                        stats.dist_messages += 1;
                        depth += 1;
                        break;
                    }
                    None => break,
                }
            }
            stats.dist_latency_hops = stats.dist_latency_hops.max(depth);
        }
    }
    stats.dist_max_node_work = node_work.iter().copied().max().unwrap_or(0);

    // --- centralized costs ---------------------------------------------
    for r in 0..dp.num_routers() as u32 {
        stats.central_snapshot_entries += dp.fib(RouterId(r)).len();
    }
    // Count per-hop lookups of the central tracer, for a fair work-total
    // comparison.
    let mut central_lookups = 0usize;
    for ec in ecs {
        for ingress in 0..dp.num_routers() as u32 {
            let t: TraceResult = dp.trace(topo, RouterId(ingress), ec.representative);
            central_lookups += t
                .hops
                .iter()
                .filter(|h: &&Hop| h.matched.is_some())
                .count()
                .max(1);
            // Sanity: the distributed walk and the central trace agree on
            // delivery. (Loops differ only in where they stop counting.)
            if let TraceOutcome::Exited(_) | TraceOutcome::DeliveredLocal(_) = t.outcome {}
        }
    }
    stats.central_work = central_lookups;
    stats
}

/// Cost tallies for one federated verification pass: the distributed
/// walk of [`distributed_verify`], re-partitioned so each *collector
/// member* (not each router) is an execution site. A partial result
/// hopping between two routers owned by the same member is free on the
/// inter-collector fabric; only owner-crossing hops ship bytes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FedStats {
    /// All partial-result messages (identical to
    /// [`DistStats::dist_messages`] for the same inputs).
    pub messages: usize,
    /// The subset of `messages` whose source and destination routers are
    /// owned by different members — the traffic that actually crosses a
    /// collector↔collector link.
    pub boundary_messages: usize,
    /// FIB lookups executed within each member's router subset.
    pub per_member_work: Vec<usize>,
    /// The busiest member's lookup count (the federation's bottleneck).
    pub max_member_work: usize,
}

/// Runs the distributed partial-result walk partitioned across a
/// federation of collector members. `owner` maps each router to the
/// member that folds its stream (e.g. `|r| plan.of_router(r)` for a
/// `FederationPlan`); `members` is the federation size.
///
/// The verdict is the centralized [`verify`]'s — federation changes
/// *where* the walk executes and what crosses the inter-collector
/// links, never the answer. The returned [`FedStats`] tallies that
/// placement: total messages, the owner-crossing subset, and per-member
/// work.
pub fn federated_verify(
    topo: &Topology,
    dp: &DataPlane,
    policies: &[Policy],
    members: u32,
    owner: impl Fn(RouterId) -> u32,
) -> (VerifyReport, FedStats) {
    let ecs = equivalence_classes(dp);
    let members = members.max(1) as usize;
    let mut stats = FedStats {
        per_member_work: vec![0; members],
        ..FedStats::default()
    };

    for ec in &ecs {
        for ingress in 0..dp.num_routers() as u32 {
            let mut partial = PartialResult {
                representative: ec.representative,
                at: RouterId(ingress),
                path: vec![RouterId(ingress)],
            };
            loop {
                let here = partial.at;
                stats.per_member_work[owner(here) as usize % members] += 1;
                let hit = dp.fib(here).lookup(partial.representative);
                let next = match hit {
                    Some((_, e)) => match e.action {
                        FibAction::Forward(l) if topo.link(l).state.is_up() => {
                            Some(topo.link(l).other_end(here).0)
                        }
                        _ => None,
                    },
                    None => None,
                };
                match next {
                    Some(nb) => {
                        stats.messages += 1;
                        if owner(here) != owner(nb) {
                            stats.boundary_messages += 1;
                        }
                        if partial.path.contains(&nb) {
                            break; // loop closed downstream
                        }
                        partial.at = nb;
                        partial.path.push(nb);
                    }
                    None => break,
                }
            }
        }
    }
    stats.max_member_work = stats.per_member_work.iter().copied().max().unwrap_or(0);

    let report = verify(topo, dp, policies);
    (report, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_dataplane::FibEntry;
    use cpvr_topo::builder::shapes;
    use cpvr_types::{Ipv4Prefix, SimTime};

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn entry(action: FibAction) -> FibEntry {
        FibEntry {
            action,
            installed_at: SimTime::ZERO,
        }
    }

    /// A line of n routers all forwarding 8.8.8.0/24 to the right exit.
    fn line_dp(n: usize) -> (cpvr_topo::Topology, DataPlane, cpvr_topo::ExtPeerId) {
        let (topo, _l, r) = shapes::two_exit_line(n);
        let mut dp = DataPlane::new(n);
        for i in 0..n - 1 {
            let link = topo
                .link_between(RouterId(i as u32), RouterId(i as u32 + 1))
                .unwrap()
                .id;
            dp.fib_mut(RouterId(i as u32))
                .install(p("8.8.8.0/24"), entry(FibAction::Forward(link)));
        }
        dp.fib_mut(RouterId(n as u32 - 1))
            .install(p("8.8.8.0/24"), entry(FibAction::Exit(r)));
        (topo, dp, r)
    }

    #[test]
    fn distributed_matches_centralized_verdict() {
        let (topo, dp, r) = line_dp(5);
        let pol = Policy::ExitsVia {
            prefix: p("8.8.8.0/24"),
            peer: r,
        };
        let (report, stats) = distributed_verify(&topo, &dp, &[pol]);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(stats.dist_messages > 0);
        assert!(stats.dist_total_work >= stats.dist_messages);
    }

    #[test]
    fn message_count_scales_with_path_length() {
        let (t5, d5, _) = line_dp(5);
        let (t10, d10, _) = line_dp(10);
        let pol5 = Policy::Reachable {
            prefix: p("8.8.8.0/24"),
        };
        let (_, s5) = distributed_verify(&t5, &d5, std::slice::from_ref(&pol5));
        let (_, s10) = distributed_verify(&t10, &d10, std::slice::from_ref(&pol5));
        assert!(s10.dist_messages > s5.dist_messages);
        assert!(s10.dist_latency_hops > s5.dist_latency_hops);
    }

    #[test]
    fn central_bottleneck_vs_distributed_spread() {
        let (topo, dp, _) = line_dp(8);
        let pol = Policy::Reachable {
            prefix: p("8.8.8.0/24"),
        };
        let (_, stats) = distributed_verify(&topo, &dp, &[pol]);
        // Central does all lookups at one node; distributed spreads them.
        assert!(stats.dist_max_node_work < stats.central_work);
        // Total work is comparable (same traces, executed in place).
        assert_eq!(stats.dist_total_work, stats.central_work);
    }

    #[test]
    fn snapshot_cost_counts_entries() {
        let (topo, dp, _) = line_dp(4);
        let pol = Policy::Reachable {
            prefix: p("8.8.8.0/24"),
        };
        let (_, stats) = distributed_verify(&topo, &dp, &[pol]);
        assert_eq!(stats.central_snapshot_entries, 4);
    }

    #[test]
    fn delta_walks_only_affected_classes() {
        let (topo, mut dp, r) = line_dp(5);
        // A second, unrelated prefix doubles the full walk cost.
        for i in 0..5u32 {
            let action = dp
                .fib(RouterId(i))
                .get(&p("8.8.8.0/24"))
                .map(|e| e.action)
                .unwrap();
            dp.fib_mut(RouterId(i))
                .install(p("9.9.9.0/24"), entry(action));
        }
        let pols = vec![
            Policy::ExitsVia {
                prefix: p("8.8.8.0/24"),
                peer: r,
            },
            Policy::ExitsVia {
                prefix: p("9.9.9.0/24"),
                peer: r,
            },
        ];
        let (full_report, full) = distributed_verify(&topo, &dp, &pols);
        let (delta_report, delta) = distributed_verify_delta(&topo, &dp, &pols, &[p("8.8.8.0/24")]);
        assert!(full_report.ok() && delta_report.ok());
        // Half the classes → half the messages and work.
        assert_eq!(delta.dist_messages * 2, full.dist_messages);
        assert_eq!(delta.dist_total_work * 2, full.dist_total_work);
        assert!(delta_report.traces_run < full_report.traces_run);
        // Verdict scoping matches verify_incremental exactly.
        let scoped = verify_incremental(&topo, &dp, &pols, &[p("8.8.8.0/24")]);
        assert_eq!(delta_report.violations, scoped.violations);
        assert_eq!(delta_report.ecs_checked, scoped.ecs_checked);
    }

    #[test]
    fn federated_verdict_identical_to_centralized() {
        let (topo, dp, r) = line_dp(6);
        let pol = Policy::ExitsVia {
            prefix: p("8.8.8.0/24"),
            peer: r,
        };
        let central = verify(&topo, &dp, std::slice::from_ref(&pol));
        let (fed, stats) = federated_verify(&topo, &dp, std::slice::from_ref(&pol), 3, |r| r.0 / 2);
        assert_eq!(fed.violations, central.violations);
        assert_eq!(fed.ecs_checked, central.ecs_checked);
        assert!(stats.messages > 0);
        assert_eq!(stats.per_member_work.len(), 3);
    }

    #[test]
    fn federated_message_total_matches_distributed_walk() {
        // Federation repartitions the same walk: every hop is still a
        // message, only its boundary-ness changes with ownership.
        let (topo, dp, _) = line_dp(8);
        let pol = Policy::Reachable {
            prefix: p("8.8.8.0/24"),
        };
        let (_, dist) = distributed_verify(&topo, &dp, std::slice::from_ref(&pol));
        let (_, fed) = federated_verify(&topo, &dp, std::slice::from_ref(&pol), 4, |r| r.0 % 4);
        assert_eq!(fed.messages, dist.dist_messages);
        assert_eq!(
            fed.per_member_work.iter().sum::<usize>(),
            dist.dist_total_work
        );
    }

    #[test]
    fn boundary_messages_track_ownership() {
        let (topo, dp, _) = line_dp(8);
        let pol = Policy::Reachable {
            prefix: p("8.8.8.0/24"),
        };
        // One member: nothing ever crosses a collector boundary.
        let (_, solo) = federated_verify(&topo, &dp, std::slice::from_ref(&pol), 1, |_| 0);
        assert_eq!(solo.boundary_messages, 0);
        assert!(solo.messages > 0);
        // One member per router: every hop crosses a boundary.
        let (_, shredded) = federated_verify(&topo, &dp, std::slice::from_ref(&pol), 8, |r| r.0);
        assert_eq!(shredded.boundary_messages, shredded.messages);
        // Two contiguous blocks on a line: only the single mid-line hop
        // per walk crosses, so boundary traffic is a strict subset.
        let (_, blocks) = federated_verify(&topo, &dp, std::slice::from_ref(&pol), 2, |r| r.0 / 4);
        assert!(blocks.boundary_messages > 0);
        assert!(blocks.boundary_messages < blocks.messages);
        assert_eq!(blocks.messages, shredded.messages);
    }

    #[test]
    fn federated_loop_walk_terminates() {
        let (topo, mut dp, _) = line_dp(3);
        let l12 = topo.link_between(RouterId(0), RouterId(1)).unwrap().id;
        dp.fib_mut(RouterId(1))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l12)));
        let pol = Policy::LoopFree {
            prefix: p("8.8.8.0/24"),
        };
        let (report, stats) = federated_verify(&topo, &dp, std::slice::from_ref(&pol), 3, |r| r.0);
        assert!(!report.ok());
        assert!(stats.messages < 100, "walk must terminate");
    }

    #[test]
    fn loop_terminates_distributed_walk() {
        let (topo, mut dp, _) = line_dp(3);
        // R2 points back at R1.
        let l12 = topo.link_between(RouterId(0), RouterId(1)).unwrap().id;
        dp.fib_mut(RouterId(1))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l12)));
        let pol = Policy::LoopFree {
            prefix: p("8.8.8.0/24"),
        };
        let (report, stats) = distributed_verify(&topo, &dp, &[pol]);
        assert!(!report.ok());
        assert!(stats.dist_messages < 100, "walk must terminate");
    }
}
