//! Equivalence classes of the destination address space.
//!
//! Two notions, both from the literature the paper builds on:
//!
//! 1. **Forwarding equivalence classes** ([`equivalence_classes`]):
//!    VeriFlow-style atoms. Every FIB is a set of prefixes; the union of
//!    all prefixes partitions the address space into regions where the
//!    set of covering prefixes — and therefore every router's LPM result —
//!    is constant. Verifying one representative address per class is
//!    exhaustive.
//! 2. **Behavioral classes** ([`behavior_classes`]): group the *prefixes*
//!    by their network-wide forwarding vector (what every router does
//!    with them). This is the §6 observation (citing [7]) that large
//!    networks treat most destinations identically — <15 classes for
//!    100K prefixes — which makes outcome prediction for early blocking
//!    feasible.

use cpvr_dataplane::{DataPlane, FibAction};
use cpvr_types::{Ipv4Prefix, RouterId};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One forwarding equivalence class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivClass {
    /// The owning prefix: the most specific prefix covering the class.
    pub prefix: Ipv4Prefix,
    /// A representative destination address inside the class.
    pub representative: Ipv4Addr,
}

/// Computes the forwarding equivalence classes of a set of prefixes.
///
/// Each input prefix `p` contributes one class for the part of its
/// address space not covered by any more-specific input prefix (if that
/// part is non-empty). Addresses covered by no prefix at all form no
/// class — they are uniformly unroutable and never interesting to a
/// policy keyed on known prefixes.
pub fn equivalence_classes_of(prefixes: &[Ipv4Prefix]) -> Vec<EquivClass> {
    let mut sorted: Vec<Ipv4Prefix> = prefixes.to_vec();
    sorted.sort();
    sorted.dedup();
    let mut out = Vec::new();
    for (i, p) in sorted.iter().enumerate() {
        // More-specific prefixes are contiguous after p in sorted order
        // only partially; scan all (n is the number of *distinct*
        // prefixes, typically small relative to addresses).
        let children: Vec<Ipv4Prefix> = sorted
            .iter()
            .enumerate()
            .filter(|(j, q)| *j != i && p.covers(q))
            .map(|(_, q)| *q)
            .collect();
        if let Some(rep) = uncovered_address(*p, &children) {
            out.push(EquivClass {
                prefix: *p,
                representative: rep,
            });
        }
    }
    out
}

/// Equivalence classes of everything installed anywhere in the data
/// plane.
pub fn equivalence_classes(dp: &DataPlane) -> Vec<EquivClass> {
    equivalence_classes_of(&dp.all_prefixes())
}

/// Finds the lowest address in `p` not covered by any prefix in `children`
/// (all of which are covered by `p`).
fn uncovered_address(p: Ipv4Prefix, children: &[Ipv4Prefix]) -> Option<Ipv4Addr> {
    // Collect maximal children as disjoint [start, end] ranges.
    let mut ranges: Vec<(u32, u32)> = children
        .iter()
        .map(|c| (u32::from(c.first_addr()), u32::from(c.last_addr())))
        .collect();
    ranges.sort();
    let mut cursor = u32::from(p.first_addr());
    let end = u32::from(p.last_addr());
    for (s, e) in ranges {
        if s > cursor {
            return Some(Ipv4Addr::from(cursor));
        }
        // Overlapping/nested ranges: advance past this child.
        cursor = cursor.max(e.checked_add(1)?);
        if cursor > end {
            return None;
        }
    }
    if cursor <= end {
        Some(Ipv4Addr::from(cursor))
    } else {
        None
    }
}

/// The network-wide behavior vector of one prefix: what each router's FIB
/// does with its representative traffic. `None` = no entry on that
/// router.
pub type BehaviorVector = Vec<Option<FibAction>>;

/// Groups every installed prefix by its behavior vector. The map's size
/// is the number of behavioral classes.
pub fn behavior_classes(dp: &DataPlane) -> BTreeMap<Vec<String>, Vec<Ipv4Prefix>> {
    let mut out: BTreeMap<Vec<String>, Vec<Ipv4Prefix>> = BTreeMap::new();
    for prefix in dp.all_prefixes() {
        // Use the prefix's own first address as the probe.
        let probe = prefix.first_addr();
        let vector: Vec<String> = (0..dp.num_routers())
            .map(|r| {
                match dp.fib(RouterId(r as u32)).lookup(probe) {
                    // Only count hits whose matched prefix is the one in
                    // question or a covering one — i.e. the real LPM
                    // behavior for this destination.
                    Some((_, e)) => format!("{:?}", e.action),
                    None => "none".to_string(),
                }
            })
            .collect();
        out.entry(vector).or_default().push(prefix);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_dataplane::FibEntry;
    use cpvr_topo::LinkId;
    use cpvr_types::SimTime;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn disjoint_prefixes_one_class_each() {
        let ecs = equivalence_classes_of(&[p("10.0.0.0/8"), p("11.0.0.0/8")]);
        assert_eq!(ecs.len(), 2);
        assert_eq!(
            ecs[0].representative,
            "10.0.0.0".parse::<Ipv4Addr>().unwrap()
        );
    }

    #[test]
    fn nested_prefix_splits_class() {
        let ecs = equivalence_classes_of(&[p("10.0.0.0/8"), p("10.0.0.0/16")]);
        assert_eq!(ecs.len(), 2);
        // The /8's own class must have a representative outside the /16.
        let coarse = ecs.iter().find(|e| e.prefix == p("10.0.0.0/8")).unwrap();
        assert!(!p("10.0.0.0/16").contains_addr(coarse.representative));
        assert!(p("10.0.0.0/8").contains_addr(coarse.representative));
    }

    #[test]
    fn fully_covered_parent_has_no_class() {
        let ecs = equivalence_classes_of(&[p("10.0.0.0/8"), p("10.0.0.0/9"), p("10.128.0.0/9")]);
        // The /8 is fully covered by its two /9 children.
        assert_eq!(ecs.len(), 2);
        assert!(ecs.iter().all(|e| e.prefix != p("10.0.0.0/8")));
    }

    #[test]
    fn duplicates_and_order_do_not_matter() {
        let a = equivalence_classes_of(&[p("10.0.0.0/8"), p("10.1.0.0/16")]);
        let b = equivalence_classes_of(&[p("10.1.0.0/16"), p("10.0.0.0/8"), p("10.0.0.0/8")]);
        assert_eq!(a, b);
    }

    #[test]
    fn deep_nesting_chain() {
        let ecs = equivalence_classes_of(&[
            p("10.0.0.0/8"),
            p("10.0.0.0/16"),
            p("10.0.0.0/24"),
            p("10.0.0.0/32"),
        ]);
        assert_eq!(ecs.len(), 4);
        // Each representative must match exactly its owner under LPM.
        for ec in &ecs {
            for other in &ecs {
                if other.prefix.len() > ec.prefix.len() {
                    assert!(!other.prefix.contains_addr(ec.representative));
                }
            }
        }
    }

    #[test]
    fn default_route_class() {
        let ecs = equivalence_classes_of(&[Ipv4Prefix::DEFAULT, p("10.0.0.0/8")]);
        assert_eq!(ecs.len(), 2);
        let default_ec = ecs
            .iter()
            .find(|e| e.prefix == Ipv4Prefix::DEFAULT)
            .unwrap();
        assert!(!p("10.0.0.0/8").contains_addr(default_ec.representative));
    }

    #[test]
    fn empty_input() {
        assert!(equivalence_classes_of(&[]).is_empty());
    }

    #[test]
    fn behavior_classes_group_identically_treated_prefixes() {
        let mut dp = DataPlane::new(2);
        let act = FibAction::Forward(LinkId(0));
        let entry = FibEntry {
            action: act,
            installed_at: SimTime::ZERO,
        };
        // Three prefixes, two behaviors: first two identical everywhere.
        for s in ["20.0.0.0/24", "20.0.1.0/24"] {
            dp.fib_mut(RouterId(0)).install(p(s), entry);
            dp.fib_mut(RouterId(1)).install(p(s), entry);
        }
        dp.fib_mut(RouterId(0)).install(
            p("20.0.2.0/24"),
            FibEntry {
                action: FibAction::Drop,
                installed_at: SimTime::ZERO,
            },
        );
        let classes = behavior_classes(&dp);
        assert_eq!(classes.len(), 2);
        let sizes: Vec<usize> = classes.values().map(|v| v.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn behavior_classes_scale_with_policy_not_prefix_count() {
        // 1000 prefixes, 3 distinct behaviors → 3 classes.
        let mut dp = DataPlane::new(3);
        for i in 0..1000u32 {
            let prefix =
                Ipv4Prefix::from_bits(u32::from_be_bytes([100, (i >> 8) as u8, i as u8, 0]), 24);
            let class = i % 3;
            for r in 0..3u32 {
                let action = match class {
                    0 => FibAction::Forward(LinkId(0)),
                    1 => FibAction::Forward(LinkId(1)),
                    _ => FibAction::Drop,
                };
                dp.fib_mut(RouterId(r)).install(
                    prefix,
                    FibEntry {
                        action,
                        installed_at: SimTime::ZERO,
                    },
                );
            }
        }
        assert_eq!(behavior_classes(&dp).len(), 3);
    }
}
