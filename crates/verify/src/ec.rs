//! Equivalence classes of the destination address space.
//!
//! Two notions, both from the literature the paper builds on:
//!
//! 1. **Forwarding equivalence classes** ([`equivalence_classes`]):
//!    VeriFlow-style atoms. Every FIB is a set of prefixes; the union of
//!    all prefixes partitions the address space into regions where the
//!    set of covering prefixes — and therefore every router's LPM result —
//!    is constant. Verifying one representative address per class is
//!    exhaustive.
//! 2. **Behavioral classes** ([`behavior_classes`]): group the *prefixes*
//!    by their network-wide forwarding vector (what every router does
//!    with them). This is the §6 observation (citing [7]) that large
//!    networks treat most destinations identically — <15 classes for
//!    100K prefixes — which makes outcome prediction for early blocking
//!    feasible.

use cpvr_dataplane::{DataPlane, FibAction, FibUpdate};
use cpvr_types::{Ipv4Prefix, PrefixTrie, RouterId};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One forwarding equivalence class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivClass {
    /// The owning prefix: the most specific prefix covering the class.
    pub prefix: Ipv4Prefix,
    /// A representative destination address inside the class.
    pub representative: Ipv4Addr,
}

/// Computes the forwarding equivalence classes of a set of prefixes.
///
/// Each input prefix `p` contributes one class for the part of its
/// address space not covered by any more-specific input prefix (if that
/// part is non-empty). Addresses covered by no prefix at all form no
/// class — they are uniformly unroutable and never interesting to a
/// policy keyed on known prefixes.
///
/// Implemented by inserting the prefixes into a [`PrefixTrie`] and
/// walking it ([`equivalence_classes_in`]) — O(n·W) for n prefixes of
/// width ≤ W bits, replacing the all-pairs `covers()` scan this crate
/// started with.
pub fn equivalence_classes_of(prefixes: &[Ipv4Prefix]) -> Vec<EquivClass> {
    let trie: PrefixTrie<()> = prefixes.iter().map(|p| (*p, ())).collect();
    equivalence_classes_in(&trie)
}

/// The trie-driven core shared by the batch and incremental paths: each
/// stored prefix owns one class for the space its maximal stored
/// descendants leave uncovered. Stored order is prefix order, so the
/// output matches [`equivalence_classes_of`] on the same prefix set.
pub fn equivalence_classes_in<V>(trie: &PrefixTrie<V>) -> Vec<EquivClass> {
    trie.iter()
        .into_iter()
        .filter_map(|(p, _)| class_of(trie, p))
        .collect()
}

/// The class owned by `prefix` given the prefixes stored in `trie`, or
/// `None` when its maximal stored descendants cover it entirely.
/// `prefix` itself need not be stored — a policy scope gets its class
/// the same way.
pub fn class_of<V>(trie: &PrefixTrie<V>, prefix: Ipv4Prefix) -> Option<EquivClass> {
    // children_of returns maximal descendants: pairwise disjoint ranges
    // in ascending order, exactly what the cursor sweep needs.
    let ranges: Vec<(u32, u32)> = trie
        .children_of(&prefix)
        .into_iter()
        .map(|(c, _)| (u32::from(c.first_addr()), u32::from(c.last_addr())))
        .collect();
    uncovered_address(prefix, &ranges).map(|rep| EquivClass {
        prefix,
        representative: rep,
    })
}

/// Equivalence classes of everything installed anywhere in the data
/// plane.
pub fn equivalence_classes(dp: &DataPlane) -> Vec<EquivClass> {
    equivalence_classes_in(&dp.prefix_union())
}

/// Finds the lowest address in `p` not covered by any of the disjoint,
/// ascending `[start, end]` ranges (all inside `p`).
fn uncovered_address(p: Ipv4Prefix, ranges: &[(u32, u32)]) -> Option<Ipv4Addr> {
    let mut cursor = u32::from(p.first_addr());
    let end = u32::from(p.last_addr());
    for (s, e) in ranges {
        if *s > cursor {
            return Some(Ipv4Addr::from(cursor));
        }
        cursor = cursor.max(e.checked_add(1)?);
        if cursor > end {
            return None;
        }
    }
    if cursor <= end {
        Some(Ipv4Addr::from(cursor))
    } else {
        None
    }
}

/// The network-wide behavior vector of one prefix: what each router's FIB
/// does with its representative traffic. `None` = no entry on that
/// router.
pub type BehaviorVector = Vec<Option<FibAction>>;

/// Groups every installed prefix by its behavior vector. The map's size
/// is the number of behavioral classes.
pub fn behavior_classes(dp: &DataPlane) -> BTreeMap<Vec<String>, Vec<Ipv4Prefix>> {
    let mut out: BTreeMap<Vec<String>, Vec<Ipv4Prefix>> = BTreeMap::new();
    for prefix in dp.all_prefixes() {
        out.entry(behavior_vector(dp, prefix))
            .or_default()
            .push(prefix);
    }
    out
}

/// The network-wide behavior vector of one prefix, probed at its first
/// address: what each router's LPM does with traffic to it.
fn behavior_vector(dp: &DataPlane, prefix: Ipv4Prefix) -> Vec<String> {
    let probe = prefix.first_addr();
    (0..dp.num_routers())
        .map(|r| match dp.fib(RouterId(r as u32)).lookup(probe) {
            Some((_, e)) => format!("{:?}", e.action),
            None => "none".to_string(),
        })
        .collect()
}

/// A cache over [`behavior_classes`] with dirty-region invalidation.
///
/// A [`FibUpdate`] to prefix `u` can only change the behavior vector of
/// installed prefixes whose probe address `u` could match — i.e. prefixes
/// overlapping `u`. [`BehaviorCache::invalidate`] records `u` as a dirty
/// region; the next [`BehaviorCache::classes`] call recomputes vectors
/// only inside dirty regions and reuses everything else.
#[derive(Clone, Debug, Default)]
pub struct BehaviorCache {
    /// Cached behavior vector per installed prefix.
    vectors: BTreeMap<Ipv4Prefix, Vec<String>>,
    /// Address regions touched by updates since the last refresh.
    dirty: BTreeSet<Ipv4Prefix>,
    /// False until the first full computation.
    primed: bool,
}

impl BehaviorCache {
    /// An empty, unprimed cache; the first [`classes`](Self::classes)
    /// call computes everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the address region touched by `update` dirty.
    pub fn invalidate(&mut self, update: &FibUpdate) {
        self.invalidate_region(update.prefix);
    }

    /// Marks every cached prefix overlapping `region` for recomputation.
    pub fn invalidate_region(&mut self, region: Ipv4Prefix) {
        self.dirty.insert(region);
    }

    /// Drops everything; the next refresh recomputes from scratch.
    pub fn clear(&mut self) {
        self.vectors.clear();
        self.dirty.clear();
        self.primed = false;
    }

    /// The current behavior classes, refreshing only dirty regions.
    pub fn classes(&mut self, dp: &DataPlane) -> BTreeMap<Vec<String>, Vec<Ipv4Prefix>> {
        self.refresh(dp);
        let mut out: BTreeMap<Vec<String>, Vec<Ipv4Prefix>> = BTreeMap::new();
        for (prefix, vector) in &self.vectors {
            out.entry(vector.clone()).or_default().push(*prefix);
        }
        out
    }

    fn refresh(&mut self, dp: &DataPlane) {
        if !self.primed {
            self.vectors = dp
                .all_prefixes()
                .into_iter()
                .map(|p| (p, behavior_vector(dp, p)))
                .collect();
            self.dirty.clear();
            self.primed = true;
            return;
        }
        if self.dirty.is_empty() {
            return;
        }
        let dirty: Vec<Ipv4Prefix> = std::mem::take(&mut self.dirty).into_iter().collect();
        // Drop cached vectors inside any dirty region (covers removals),
        // then recompute vectors for installed prefixes in those regions
        // (covers installs and reroutes).
        self.vectors
            .retain(|p, _| !dirty.iter().any(|d| d.overlaps(p)));
        for prefix in dp.all_prefixes() {
            if dirty.iter().any(|d| d.overlaps(&prefix)) {
                self.vectors.insert(prefix, behavior_vector(dp, prefix));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_dataplane::FibEntry;
    use cpvr_topo::LinkId;
    use cpvr_types::SimTime;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn disjoint_prefixes_one_class_each() {
        let ecs = equivalence_classes_of(&[p("10.0.0.0/8"), p("11.0.0.0/8")]);
        assert_eq!(ecs.len(), 2);
        assert_eq!(
            ecs[0].representative,
            "10.0.0.0".parse::<Ipv4Addr>().unwrap()
        );
    }

    #[test]
    fn nested_prefix_splits_class() {
        let ecs = equivalence_classes_of(&[p("10.0.0.0/8"), p("10.0.0.0/16")]);
        assert_eq!(ecs.len(), 2);
        // The /8's own class must have a representative outside the /16.
        let coarse = ecs.iter().find(|e| e.prefix == p("10.0.0.0/8")).unwrap();
        assert!(!p("10.0.0.0/16").contains_addr(coarse.representative));
        assert!(p("10.0.0.0/8").contains_addr(coarse.representative));
    }

    #[test]
    fn fully_covered_parent_has_no_class() {
        let ecs = equivalence_classes_of(&[p("10.0.0.0/8"), p("10.0.0.0/9"), p("10.128.0.0/9")]);
        // The /8 is fully covered by its two /9 children.
        assert_eq!(ecs.len(), 2);
        assert!(ecs.iter().all(|e| e.prefix != p("10.0.0.0/8")));
    }

    #[test]
    fn duplicates_and_order_do_not_matter() {
        let a = equivalence_classes_of(&[p("10.0.0.0/8"), p("10.1.0.0/16")]);
        let b = equivalence_classes_of(&[p("10.1.0.0/16"), p("10.0.0.0/8"), p("10.0.0.0/8")]);
        assert_eq!(a, b);
    }

    #[test]
    fn deep_nesting_chain() {
        let ecs = equivalence_classes_of(&[
            p("10.0.0.0/8"),
            p("10.0.0.0/16"),
            p("10.0.0.0/24"),
            p("10.0.0.0/32"),
        ]);
        assert_eq!(ecs.len(), 4);
        // Each representative must match exactly its owner under LPM.
        for ec in &ecs {
            for other in &ecs {
                if other.prefix.len() > ec.prefix.len() {
                    assert!(!other.prefix.contains_addr(ec.representative));
                }
            }
        }
    }

    #[test]
    fn default_route_class() {
        let ecs = equivalence_classes_of(&[Ipv4Prefix::DEFAULT, p("10.0.0.0/8")]);
        assert_eq!(ecs.len(), 2);
        let default_ec = ecs
            .iter()
            .find(|e| e.prefix == Ipv4Prefix::DEFAULT)
            .unwrap();
        assert!(!p("10.0.0.0/8").contains_addr(default_ec.representative));
    }

    #[test]
    fn empty_input() {
        assert!(equivalence_classes_of(&[]).is_empty());
    }

    #[test]
    fn behavior_classes_group_identically_treated_prefixes() {
        let mut dp = DataPlane::new(2);
        let act = FibAction::Forward(LinkId(0));
        let entry = FibEntry {
            action: act,
            installed_at: SimTime::ZERO,
        };
        // Three prefixes, two behaviors: first two identical everywhere.
        for s in ["20.0.0.0/24", "20.0.1.0/24"] {
            dp.fib_mut(RouterId(0)).install(p(s), entry);
            dp.fib_mut(RouterId(1)).install(p(s), entry);
        }
        dp.fib_mut(RouterId(0)).install(
            p("20.0.2.0/24"),
            FibEntry {
                action: FibAction::Drop,
                installed_at: SimTime::ZERO,
            },
        );
        let classes = behavior_classes(&dp);
        assert_eq!(classes.len(), 2);
        let sizes: Vec<usize> = classes.values().map(|v| v.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn behavior_cache_tracks_batch_under_invalidation() {
        use cpvr_dataplane::UpdateKind;
        let mut dp = DataPlane::new(2);
        let entry = FibEntry {
            action: FibAction::Forward(LinkId(0)),
            installed_at: SimTime::ZERO,
        };
        for s in ["30.0.0.0/24", "30.0.1.0/24", "40.0.0.0/16"] {
            dp.fib_mut(RouterId(0)).install(p(s), entry);
            dp.fib_mut(RouterId(1)).install(p(s), entry);
        }
        let mut cache = BehaviorCache::new();
        assert_eq!(cache.classes(&dp), behavior_classes(&dp));
        // Reroute one prefix on one router; invalidate only that region.
        let u = FibUpdate {
            router: RouterId(1),
            prefix: p("30.0.1.0/24"),
            kind: UpdateKind::Install,
            action: FibAction::Drop,
            at: SimTime::ZERO,
        };
        dp.fib_mut(u.router).apply(&u);
        cache.invalidate(&u);
        assert_eq!(cache.classes(&dp), behavior_classes(&dp));
        // Remove a prefix entirely — cached vector must disappear.
        let r = FibUpdate {
            router: RouterId(0),
            prefix: p("40.0.0.0/16"),
            kind: UpdateKind::Remove,
            action: FibAction::Forward(LinkId(0)),
            at: SimTime::ZERO,
        };
        dp.fib_mut(r.router).apply(&r);
        let r2 = FibUpdate {
            router: RouterId(1),
            ..r
        };
        dp.fib_mut(r2.router).apply(&r2);
        cache.invalidate(&r);
        cache.invalidate(&r2);
        assert_eq!(cache.classes(&dp), behavior_classes(&dp));
    }

    #[test]
    fn behavior_classes_scale_with_policy_not_prefix_count() {
        // 1000 prefixes, 3 distinct behaviors → 3 classes.
        let mut dp = DataPlane::new(3);
        for i in 0..1000u32 {
            let prefix =
                Ipv4Prefix::from_bits(u32::from_be_bytes([100, (i >> 8) as u8, i as u8, 0]), 24);
            let class = i % 3;
            for r in 0..3u32 {
                let action = match class {
                    0 => FibAction::Forward(LinkId(0)),
                    1 => FibAction::Forward(LinkId(1)),
                    _ => FibAction::Drop,
                };
                dp.fib_mut(RouterId(r)).install(
                    prefix,
                    FibEntry {
                        action,
                        installed_at: SimTime::ZERO,
                    },
                );
            }
        }
        assert_eq!(behavior_classes(&dp).len(), 3);
    }
}
