//! The live incremental verifier: equivalence classes and per-class
//! verdicts maintained across a stream of FIB updates.
//!
//! [`IncrementalVerifier`] holds a data-plane mirror, the union trie of
//! installed prefixes (reference-counted across routers), and a verdict
//! per `(policy, class owner)` pair. Each [`FibUpdate`] is applied to the
//! mirror and only the classes whose address space intersects the updated
//! prefix are re-traced; everything else is reused.
//!
//! **Batch-equivalence invariant**: after any sequence of
//! [`IncrementalVerifier::apply`] calls, [`IncrementalVerifier::report`]
//! equals [`verify`](crate::verify) run on the same topology, data plane,
//! and policies — same violations in the same order, same `ecs_checked`,
//! same `traces_run`. The property tests in `tests/prop_incremental.rs`
//! pin this under randomized install/remove sequences.
//!
//! Why the delta is sound: a class owned by prefix `p` disjoint from the
//! updated prefix `u` keeps its shape (its children all sit inside `p`,
//! so none appeared or vanished) and its forwarding vector (its
//! representative lies in `p ∖ children ⊆ p`, where longest-prefix match
//! never consults an entry at `u`). Only owners overlapping `u` — `u`'s
//! ancestors, `u` itself, and `u`'s descendants — can change, and each
//! policy contributes at most its scope class plus the owners under its
//! scope.

use crate::ec::{BehaviorCache, EquivClass};
use crate::policy::{Policy, Violation};
use crate::verifier::{classes_under, run_class_checks, VerifyReport};
use cpvr_dataplane::{DataPlane, FibUpdate, UpdateKind};
use cpvr_topo::Topology;
use cpvr_types::{Ipv4Prefix, PrefixTrie};
use std::collections::BTreeMap;

/// Counters describing how much work the incremental engine did and how
/// much it avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// FIB updates applied via [`IncrementalVerifier::apply`].
    pub updates_applied: usize,
    /// Per-policy classes re-traced because they overlap an update.
    pub classes_recomputed: usize,
    /// Per-policy classes whose cached verdict was reused.
    pub classes_reused: usize,
    /// Forwarding traces executed (initial build + deltas).
    pub traces_run: usize,
    /// [`IncrementalVerifier::gate`] calls that found a violation and
    /// rolled the update back.
    pub gate_rollbacks: usize,
}

/// The cached outcome of checking one policy against one class.
#[derive(Clone, Debug)]
struct ClassResult {
    ec: EquivClass,
    violations: Vec<Violation>,
    traces: usize,
}

/// A verifier that stays resident between FIB updates, re-checking only
/// the equivalence classes an update can affect. See the module docs for
/// the batch-equivalence invariant and the soundness argument.
#[derive(Clone, Debug)]
pub struct IncrementalVerifier {
    topo: Topology,
    policies: Vec<Policy>,
    dp: DataPlane,
    /// Union of installed prefixes, refcounted across routers.
    installed: PrefixTrie<usize>,
    /// Verdict per (policy index, class owner). `BTreeMap` order equals
    /// batch job order: per policy, the scope class's owner (the scope)
    /// sorts before every owner it covers.
    verdicts: BTreeMap<(usize, Ipv4Prefix), ClassResult>,
    behavior: BehaviorCache,
    threads: usize,
    stats: IncrementalStats,
}

impl IncrementalVerifier {
    /// Builds the verifier from a data-plane snapshot, checking every
    /// class once, single-threaded.
    pub fn new(topo: Topology, dp: DataPlane, policies: Vec<Policy>) -> Self {
        Self::with_threads(topo, dp, policies, 1)
    }

    /// Like [`new`](Self::new), fanning the initial full check (and every
    /// later rebuild) across `threads` workers (`0` = one per core).
    /// Delta checks after a single update touch few classes and always
    /// run inline.
    pub fn with_threads(
        topo: Topology,
        dp: DataPlane,
        policies: Vec<Policy>,
        threads: usize,
    ) -> Self {
        let mut v = IncrementalVerifier {
            topo,
            policies,
            dp,
            installed: PrefixTrie::new(),
            verdicts: BTreeMap::new(),
            behavior: BehaviorCache::new(),
            threads,
            stats: IncrementalStats::default(),
        };
        v.rebuild();
        v
    }

    /// Recomputes everything from the current mirror: the union trie,
    /// every class, every verdict. Used at construction and after
    /// topology changes.
    pub fn rebuild(&mut self) {
        self.installed = self.dp.prefix_union();
        self.behavior.clear();
        let mut jobs: Vec<(usize, EquivClass)> = Vec::new();
        for (idx, policy) in self.policies.iter().enumerate() {
            for ec in classes_under(&self.installed, policy.prefix()) {
                jobs.push((idx, ec));
            }
        }
        let results = run_class_checks(&self.topo, &self.dp, &self.policies, &jobs, self.threads);
        self.verdicts.clear();
        for ((idx, ec), (violations, traces)) in jobs.into_iter().zip(results) {
            self.stats.classes_recomputed += 1;
            self.stats.traces_run += traces;
            self.verdicts.insert(
                (idx, ec.prefix),
                ClassResult {
                    ec,
                    violations,
                    traces,
                },
            );
        }
    }

    /// Applies one FIB update to the mirror and re-checks only the
    /// classes it can affect. The returned report covers exactly the
    /// re-checked classes and equals
    /// [`verify_incremental`](crate::verify_incremental) on the post-update
    /// data plane with `changed = [update.prefix]`.
    pub fn apply(&mut self, update: &FibUpdate) -> VerifyReport {
        self.stats.updates_applied += 1;
        let prev = self.dp.fib(update.router).get(&update.prefix).copied();
        self.dp.fib_mut(update.router).apply(update);
        self.behavior.invalidate(update);

        // Maintain the refcounted union; the owner set only shifts when a
        // prefix's network-wide count crosses zero, and the owner diff
        // below handles shifted and unshifted cases uniformly.
        match update.kind {
            UpdateKind::Install if prev.is_none() => match self.installed.get_mut(&update.prefix) {
                Some(c) => *c += 1,
                None => {
                    self.installed.insert(update.prefix, 1);
                }
            },
            UpdateKind::Remove if prev.is_some() => {
                let emptied = {
                    let count = self
                        .installed
                        .get_mut(&update.prefix)
                        .expect("union trie out of sync with mirror");
                    *count -= 1;
                    *count == 0
                };
                if emptied {
                    self.installed.remove(&update.prefix);
                }
            }
            // Replacing an existing entry or removing a missing one
            // leaves the union untouched.
            _ => {}
        }

        let mut jobs: Vec<(usize, EquivClass)> = Vec::new();
        let mut reused = 0usize;
        let mut fresh: BTreeMap<(usize, Ipv4Prefix), ClassResult> = BTreeMap::new();
        for (idx, policy) in self.policies.iter().enumerate() {
            let scope = policy.prefix();
            if !update.prefix.overlaps(&scope) {
                // No owner of this policy can overlap the update; keep
                // all its verdicts as-is.
                let kept = self
                    .verdicts
                    .range((idx, Ipv4Prefix::DEFAULT)..=(idx, Ipv4Prefix::from_bits(u32::MAX, 32)));
                for (k, v) in kept {
                    fresh.insert(*k, v.clone());
                    reused += 1;
                }
                continue;
            }
            // Owners disjoint from the update are reusable even when the
            // class structure shifted elsewhere; overlapping owners (and
            // any new owners) are re-checked. Skipping classes_under when
            // !structural would also work, but recomputing it keeps one
            // code path and it is trace-free.
            for ec in classes_under(&self.installed, scope) {
                if ec.prefix.overlaps(&update.prefix) {
                    jobs.push((idx, ec));
                } else {
                    let old = self
                        .verdicts
                        .get(&(idx, ec.prefix))
                        .expect("disjoint class must already have a verdict");
                    debug_assert_eq!(old.ec, ec, "disjoint class changed shape");
                    fresh.insert((idx, ec.prefix), old.clone());
                    reused += 1;
                }
            }
        }
        let results = run_class_checks(&self.topo, &self.dp, &self.policies, &jobs, 1);
        let mut report = VerifyReport {
            ecs_checked: jobs.len(),
            ..VerifyReport::default()
        };
        for ((idx, ec), (violations, traces)) in jobs.into_iter().zip(results) {
            report.traces_run += traces;
            report.violations.extend(violations.iter().cloned());
            fresh.insert(
                (idx, ec.prefix),
                ClassResult {
                    ec,
                    violations,
                    traces,
                },
            );
        }
        self.stats.classes_recomputed += report.ecs_checked;
        self.stats.classes_reused += reused;
        self.stats.traces_run += report.traces_run;
        self.verdicts = fresh;
        report
    }

    /// Tentatively applies `update`: if the delta check passes the update
    /// stays and `Ok(report)` is returned; otherwise the update is rolled
    /// back (mirror, union, and verdicts all restored) and the offending
    /// report comes back as `Err`.
    pub fn gate(&mut self, update: &FibUpdate) -> Result<VerifyReport, VerifyReport> {
        let prev = self.dp.fib(update.router).get(&update.prefix).copied();
        let report = self.apply(update);
        if report.ok() {
            return Ok(report);
        }
        // Roll back through the same delta machinery so every cache stays
        // consistent.
        match prev {
            Some(entry) => {
                self.apply(&FibUpdate {
                    router: update.router,
                    prefix: update.prefix,
                    kind: UpdateKind::Install,
                    action: entry.action,
                    at: entry.installed_at,
                });
            }
            None if update.kind == UpdateKind::Install => {
                self.apply(&FibUpdate {
                    router: update.router,
                    prefix: update.prefix,
                    kind: UpdateKind::Remove,
                    action: update.action,
                    at: update.at,
                });
            }
            // Removing a missing entry changed nothing; no inverse.
            None => {}
        }
        self.stats.gate_rollbacks += 1;
        Err(report)
    }

    /// The full current report, batch-equivalent to
    /// [`verify`](crate::verify) on [`dataplane`](Self::dataplane).
    pub fn report(&self) -> VerifyReport {
        let mut report = VerifyReport {
            ecs_checked: self.verdicts.len(),
            ..VerifyReport::default()
        };
        for result in self.verdicts.values() {
            report.traces_run += result.traces;
            report.violations.extend(result.violations.iter().cloned());
        }
        report
    }

    /// True if no policy is currently violated.
    pub fn ok(&self) -> bool {
        self.verdicts.values().all(|r| r.violations.is_empty())
    }

    /// The current `(policy index, class)` pairs in check order.
    pub fn classes(&self) -> Vec<(usize, EquivClass)> {
        self.verdicts
            .iter()
            .map(|((idx, _), r)| (*idx, r.ec.clone()))
            .collect()
    }

    /// The §6 behavior classes of the mirrored data plane, served from a
    /// cache invalidated only in regions touched by applied updates.
    pub fn behavior_classes(&mut self) -> BTreeMap<Vec<String>, Vec<Ipv4Prefix>> {
        self.behavior.classes(&self.dp)
    }

    /// The mirrored data-plane snapshot.
    pub fn dataplane(&self) -> &DataPlane {
        &self.dp
    }

    /// The policies being enforced.
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// Replaces the topology and rebuilds: traces depend on link and
    /// peer state, so cached verdicts are all stale after a topology
    /// change.
    pub fn set_topology(&mut self, topo: Topology) {
        self.topo = topo;
        self.rebuild();
    }

    /// Work counters since construction.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{behavior_classes, verify, verify_incremental};
    use cpvr_dataplane::{FibAction, FibEntry};
    use cpvr_topo::builder::shapes;
    use cpvr_types::{RouterId, SimTime};

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn entry(action: FibAction) -> FibEntry {
        FibEntry {
            action,
            installed_at: SimTime::ZERO,
        }
    }

    fn setup() -> (Topology, DataPlane, Vec<Policy>) {
        let (topo, e1, e2) = shapes::paper_triangle();
        let mut dp = DataPlane::new(3);
        let l12 = topo.link_between(RouterId(0), RouterId(1)).unwrap().id;
        let l23 = topo.link_between(RouterId(1), RouterId(2)).unwrap().id;
        dp.fib_mut(RouterId(0))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l12)));
        dp.fib_mut(RouterId(1))
            .install(p("8.8.8.0/24"), entry(FibAction::Exit(e2)));
        dp.fib_mut(RouterId(2))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l23)));
        let policies = vec![
            Policy::PreferredExit {
                prefix: p("8.8.8.0/24"),
                primary: e2,
                backup: e1,
            },
            Policy::Reachable {
                prefix: p("8.8.8.0/24"),
            },
        ];
        (topo, dp, policies)
    }

    fn assert_batch_equivalent(iv: &IncrementalVerifier, topo: &Topology, policies: &[Policy]) {
        let batch = verify(topo, iv.dataplane(), policies);
        let live = iv.report();
        assert_eq!(live.violations, batch.violations);
        assert_eq!(live.ecs_checked, batch.ecs_checked);
        assert_eq!(live.traces_run, batch.traces_run);
    }

    #[test]
    fn build_matches_batch() {
        let (topo, dp, policies) = setup();
        let iv = IncrementalVerifier::new(topo.clone(), dp, policies.clone());
        assert!(iv.ok());
        assert_batch_equivalent(&iv, &topo, &policies);
    }

    #[test]
    fn parallel_build_matches_batch() {
        let (topo, dp, policies) = setup();
        for threads in [0, 2, 4] {
            let iv = IncrementalVerifier::with_threads(
                topo.clone(),
                dp.clone(),
                policies.clone(),
                threads,
            );
            assert_batch_equivalent(&iv, &topo, &policies);
        }
    }

    #[test]
    fn apply_equals_verify_incremental_and_stays_batch_equivalent() {
        let (topo, dp, policies) = setup();
        let mut iv = IncrementalVerifier::new(topo.clone(), dp.clone(), policies.clone());
        // Hijack half the space on R1 with a /25 null route.
        let u = FibUpdate {
            router: RouterId(0),
            prefix: p("8.8.8.0/25"),
            kind: UpdateKind::Install,
            action: FibAction::Drop,
            at: SimTime::from_millis(1),
        };
        let delta = iv.apply(&u);
        let mut mirror = dp;
        mirror.fib_mut(u.router).apply(&u);
        let inc = verify_incremental(&topo, &mirror, &policies, &[u.prefix]);
        assert_eq!(delta.violations, inc.violations);
        assert_eq!(delta.ecs_checked, inc.ecs_checked);
        assert_eq!(delta.traces_run, inc.traces_run);
        assert!(!delta.ok(), "the /25 drop must violate");
        assert_batch_equivalent(&iv, &topo, &policies);
    }

    #[test]
    fn disjoint_update_reuses_everything() {
        let (topo, dp, policies) = setup();
        let mut iv = IncrementalVerifier::new(topo.clone(), dp, policies.clone());
        let before = iv.stats();
        let u = FibUpdate {
            router: RouterId(0),
            prefix: p("99.0.0.0/8"),
            kind: UpdateKind::Install,
            action: FibAction::Drop,
            at: SimTime::from_millis(1),
        };
        let delta = iv.apply(&u);
        assert_eq!(delta.traces_run, 0, "no policy class overlaps 99/8");
        assert_eq!(iv.stats().traces_run, before.traces_run);
        assert!(iv.stats().classes_reused > before.classes_reused);
        assert_batch_equivalent(&iv, &topo, &policies);
    }

    #[test]
    fn gate_rolls_back_violating_update() {
        let (topo, dp, policies) = setup();
        let mut iv = IncrementalVerifier::new(topo.clone(), dp.clone(), policies.clone());
        let u = FibUpdate {
            router: RouterId(1),
            prefix: p("8.8.8.0/24"),
            kind: UpdateKind::Remove,
            action: FibAction::Drop,
            at: SimTime::from_millis(1),
        };
        let res = iv.gate(&u);
        assert!(res.is_err(), "removing the exit route must be blocked");
        // State fully restored: mirror equals the original and the live
        // report is clean and batch-equivalent.
        assert_eq!(
            iv.dataplane().fib(RouterId(1)).get(&p("8.8.8.0/24")),
            dp.fib(RouterId(1)).get(&p("8.8.8.0/24"))
        );
        assert!(iv.ok());
        assert_batch_equivalent(&iv, &topo, &policies);
        // A compliant update passes and sticks.
        let fine = FibUpdate {
            router: RouterId(0),
            prefix: p("99.0.0.0/8"),
            kind: UpdateKind::Install,
            action: FibAction::Drop,
            at: SimTime::from_millis(2),
        };
        assert!(iv.gate(&fine).is_ok());
        assert!(iv
            .dataplane()
            .fib(RouterId(0))
            .get(&p("99.0.0.0/8"))
            .is_some());
    }

    #[test]
    fn behavior_cache_matches_batch_after_updates() {
        let (topo, dp, policies) = setup();
        let mut iv = IncrementalVerifier::new(topo, dp, policies);
        assert_eq!(iv.behavior_classes(), behavior_classes(iv.dataplane()));
        let u = FibUpdate {
            router: RouterId(2),
            prefix: p("8.8.8.0/24"),
            kind: UpdateKind::Install,
            action: FibAction::Drop,
            at: SimTime::from_millis(3),
        };
        iv.apply(&u);
        assert_eq!(iv.behavior_classes(), behavior_classes(iv.dataplane()));
    }

    #[test]
    fn topology_change_rebuilds() {
        let (topo, dp, policies) = setup();
        let mut iv = IncrementalVerifier::new(topo.clone(), dp, policies.clone());
        assert!(iv.ok());
        // Down the preferred uplink: the cached verdicts are stale until
        // set_topology rebuilds them.
        let mut t2 = topo;
        let e2 = match &policies[0] {
            Policy::PreferredExit { primary, .. } => *primary,
            _ => unreachable!(),
        };
        t2.set_ext_peer_state(e2, cpvr_topo::LinkState::Down);
        iv.set_topology(t2.clone());
        assert!(!iv.ok(), "exit via a downed peer must now violate");
        assert_batch_equivalent(&iv, &t2, &policies);
    }
}
