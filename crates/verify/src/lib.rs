//! A data-plane verifier in the HSA / VeriFlow tradition.
//!
//! Data-plane verifiers "sidestep the complexity of the control plane by
//! verifying the control plane's output" (§1). This crate implements that
//! layer from scratch:
//!
//! * [`ec`] — equivalence-class slicing: carve the destination address
//!   space into classes whose members are forwarded identically, so each
//!   class is verified once (VeriFlow's trick). Also computes
//!   *behavioral* classes (prefixes treated identically network-wide),
//!   the §6 notion under which 100K-prefix networks collapse to <15
//!   classes.
//! * [`policy`] — the policy language: reachability, loop freedom,
//!   blackhole freedom, waypointing, and the paper's running example
//!   ("exit via R2 while its uplink is up, else R1") as
//!   [`Policy::PreferredExit`].
//! * [`verifier`] — the checker: full and incremental (delta-scoped)
//!   verification over a [`DataPlane`](cpvr_dataplane::DataPlane)
//!   snapshot.
//! * [`distributed`] — the §5 sketch of distributed verification: routers
//!   exchange partial per-EC results instead of centralizing the
//!   snapshot; this module models the message/work tradeoff.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
pub mod ec;
pub mod policy;
pub mod verifier;

pub use ec::{behavior_classes, equivalence_classes, EquivClass};
pub use policy::{Policy, Violation};
pub use verifier::{verify, verify_incremental, VerifyReport};
