//! A data-plane verifier in the HSA / VeriFlow tradition.
//!
//! Data-plane verifiers "sidestep the complexity of the control plane by
//! verifying the control plane's output" (§1). This crate implements that
//! layer from scratch:
//!
//! * [`ec`] — equivalence-class slicing: carve the destination address
//!   space into classes whose members are forwarded identically, so each
//!   class is verified once (VeriFlow's trick). Also computes
//!   *behavioral* classes (prefixes treated identically network-wide),
//!   the §6 notion under which 100K-prefix networks collapse to <15
//!   classes.
//! * [`policy`] — the policy language: reachability, loop freedom,
//!   blackhole freedom, waypointing, and the paper's running example
//!   ("exit via R2 while its uplink is up, else R1") as
//!   [`Policy::PreferredExit`].
//! * [`verifier`] — the checker: full ([`verify`]), parallel
//!   ([`verify_parallel`]), and incremental (delta-scoped,
//!   [`verify_incremental`]) verification over a
//!   [`DataPlane`](cpvr_dataplane::DataPlane) snapshot.
//! * [`incremental`] — the resident engine: [`IncrementalVerifier`]
//!   keeps the equivalence classes and per-class verdicts live across a
//!   stream of FIB updates, re-checking only classes whose address space
//!   intersects each update.
//! * [`replay`] — replay-validated repair gating: [`ReplayGate`]
//!   re-executes a repair proof's deterministic transcript against a
//!   shadow clone of the resident verifier and returns
//!   REPRODUCED/DIVERGED/ERROR; the blocking verdicts roll back the
//!   tentative apply by discarding the shadow.
//! * [`distributed`] — the §5 sketch of distributed verification: routers
//!   exchange partial per-EC results instead of centralizing the
//!   snapshot; this module models the message/work tradeoff.
//!
//! # Batch-equivalence invariant
//!
//! Every fast path in this crate is defined by equivalence to the slow
//! one. [`verify_parallel`] at any thread count returns bit-for-bit the
//! report [`verify`] returns. [`IncrementalVerifier::report`] after any
//! sequence of applied updates equals [`verify`] run from scratch on the
//! same snapshot — same violations in the same order, same `ecs_checked`,
//! same `traces_run`. The property tests in `tests/prop_incremental.rs`
//! pin both under randomized install/remove sequences; performance work
//! must never buy speed with a weaker verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
pub mod ec;
pub mod incremental;
pub mod policy;
pub mod replay;
pub mod verifier;

pub use distributed::{distributed_verify, distributed_verify_delta, DistStats};
pub use ec::{
    behavior_classes, class_of, equivalence_classes, equivalence_classes_in, BehaviorCache,
    EquivClass,
};
pub use incremental::{IncrementalStats, IncrementalVerifier};
pub use policy::{Policy, Violation};
pub use replay::{violation_sigs, ReplayGate, ReplayTranscript, ReplayVerdict, ViolationSig};
pub use verifier::{
    policy_equivalence_classes, verify, verify_incremental, verify_parallel, VerifyReport,
};
