//! The policy language and violation reports.

use cpvr_topo::ExtPeerId;
use cpvr_types::{Ipv4Prefix, RouterId};
use std::fmt;

/// An operator intent the data plane must satisfy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Traffic for `prefix` injected at any router must reach *somewhere*
    /// (exit the domain or be delivered locally) — no loops, no
    /// blackholes.
    Reachable {
        /// The destination prefix.
        prefix: Ipv4Prefix,
    },
    /// Traffic for `prefix` must never loop, from any ingress.
    LoopFree {
        /// The destination prefix.
        prefix: Ipv4Prefix,
    },
    /// Traffic for `prefix` from any ingress must exit via this external
    /// peer.
    ExitsVia {
        /// The destination prefix.
        prefix: Ipv4Prefix,
        /// The required exit.
        peer: ExtPeerId,
    },
    /// The paper's running policy: exit via `primary` while its uplink is
    /// up; otherwise via `backup`.
    PreferredExit {
        /// The destination prefix.
        prefix: Ipv4Prefix,
        /// Preferred exit (R2's uplink in the paper).
        primary: ExtPeerId,
        /// Fallback exit (R1's uplink).
        backup: ExtPeerId,
    },
    /// Traffic for `prefix` from `from` must traverse `via` (e.g. a
    /// firewall router) before leaving the network.
    Waypoint {
        /// Ingress router.
        from: RouterId,
        /// The destination prefix.
        prefix: Ipv4Prefix,
        /// The router that must appear on the path.
        via: RouterId,
    },
    /// Traffic for `prefix` must never leave through this external peer
    /// (e.g. a peering link contractually barred from carrying transit).
    Isolation {
        /// The destination prefix.
        prefix: Ipv4Prefix,
        /// The forbidden exit.
        forbidden: ExtPeerId,
    },
}

impl Policy {
    /// The prefix the policy constrains (used for incremental
    /// verification scoping).
    pub fn prefix(&self) -> Ipv4Prefix {
        match self {
            Policy::Reachable { prefix }
            | Policy::LoopFree { prefix }
            | Policy::ExitsVia { prefix, .. }
            | Policy::PreferredExit { prefix, .. }
            | Policy::Waypoint { prefix, .. }
            | Policy::Isolation { prefix, .. } => *prefix,
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Reachable { prefix } => write!(f, "{prefix} reachable"),
            Policy::LoopFree { prefix } => write!(f, "{prefix} loop-free"),
            Policy::ExitsVia { prefix, peer } => write!(f, "{prefix} exits via {peer}"),
            Policy::PreferredExit {
                prefix,
                primary,
                backup,
            } => {
                write!(f, "{prefix} exits via {primary} (else {backup})")
            }
            Policy::Waypoint { from, prefix, via } => {
                write!(f, "{prefix} from {from} waypoints {via}")
            }
            Policy::Isolation { prefix, forbidden } => {
                write!(f, "{prefix} never exits via {forbidden}")
            }
        }
    }
}

/// A detected policy violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which policy (index into the checked policy list).
    pub policy_idx: usize,
    /// The policy itself, for self-contained reports.
    pub policy: Policy,
    /// The ingress router whose traffic violates it.
    pub ingress: RouterId,
    /// The representative destination that was traced.
    pub representative: std::net::Ipv4Addr,
    /// What actually happened.
    pub observed: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VIOLATION [{}] from {}: {} (probe {})",
            self.policy, self.ingress, self.observed, self.representative
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn policy_prefix_extraction() {
        let pol = Policy::PreferredExit {
            prefix: p("8.8.8.0/24"),
            primary: ExtPeerId(1),
            backup: ExtPeerId(0),
        };
        assert_eq!(pol.prefix(), p("8.8.8.0/24"));
        assert_eq!(
            Policy::Reachable {
                prefix: p("9.9.9.0/24")
            }
            .prefix(),
            p("9.9.9.0/24")
        );
    }

    #[test]
    fn display_forms() {
        let pol = Policy::ExitsVia {
            prefix: p("8.8.8.0/24"),
            peer: ExtPeerId(1),
        };
        assert_eq!(pol.to_string(), "8.8.8.0/24 exits via Ext1");
        let w = Policy::Waypoint {
            from: RouterId(0),
            prefix: p("8.8.8.0/24"),
            via: RouterId(2),
        };
        assert_eq!(w.to_string(), "8.8.8.0/24 from R1 waypoints R3");
    }

    #[test]
    fn violation_display() {
        let v = Violation {
            policy_idx: 0,
            policy: Policy::LoopFree {
                prefix: p("8.8.8.0/24"),
            },
            ingress: RouterId(1),
            representative: "8.8.8.1".parse().unwrap(),
            observed: "loop at R1".into(),
        };
        let s = v.to_string();
        assert!(s.contains("VIOLATION"));
        assert!(s.contains("loop at R1"));
        assert!(s.contains("from R2"));
    }
}
