//! Replay-validated repair gating (REPRODUCED / DIVERGED / ERROR).
//!
//! A repair is only as trustworthy as the evidence behind it. The
//! [`ReplayTranscript`] is that evidence in executable form: the
//! violations observed when the repair was minted, a digest of the FIB
//! entries the root cause touched, and two deterministic step lists
//! derived from the (time,id) fold — `undo` (revert the root cause's
//! FIB consequences) and `redo` (reapply them). [`ReplayGate`]
//! re-executes the transcript against a **clone** of the resident
//! [`IncrementalVerifier`] — the shadow state — so the tentative apply
//! is rolled back for free by discarding the clone, and returns:
//!
//! * [`ReplayVerdict::Reproduced`] — the live state matches the
//!   transcript's base, the undo steps clear every base violation, and
//!   the redo steps bring both the violations and the FIB digest back
//!   to base. The repair's causal story checks out; committing it is
//!   safe.
//! * [`ReplayVerdict::Diverged`] — the replay executed but the
//!   outcomes differ (stale base state, undo fails to clear the
//!   violation, redo fails to reproduce it). The repair is blocked.
//! * [`ReplayVerdict::Error`] — the transcript is structurally unsound
//!   (empty, or references routers outside the topology). The repair
//!   is blocked; nothing was replayed.
//!
//! Verdicts are deterministic: the same verifier state and transcript
//! always yield the same verdict, which is what lets a crash-recovered
//! collector re-gate a journaled proof to a bit-identical decision.

use std::collections::BTreeSet;

use cpvr_dataplane::{DataPlane, FibUpdate};
use cpvr_types::hash::Fnv1a64;
use cpvr_types::{Ipv4Prefix, RouterId};

use crate::incremental::IncrementalVerifier;
use crate::policy::Violation;

/// A canonical, serializable signature of one [`Violation`] — enough to
/// compare violation *sets* across replay without carrying the full
/// policy AST in every transcript.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ViolationSig {
    /// Index of the violated policy in the verifier's policy list.
    pub policy_idx: usize,
    /// The ingress router the violating trace started from.
    pub ingress: RouterId,
    /// The representative destination address, rendered.
    pub representative: String,
    /// What the trace observed (loop, blackhole, wrong exit, ...).
    pub observed: String,
}

impl ViolationSig {
    /// The signature of one violation.
    pub fn of(v: &Violation) -> Self {
        ViolationSig {
            policy_idx: v.policy_idx,
            ingress: v.ingress,
            representative: v.representative.to_string(),
            observed: v.observed.clone(),
        }
    }
}

/// The canonical (sorted, deduplicated) signature set of a violation
/// list — the form transcripts store and the gate compares.
pub fn violation_sigs(violations: &[Violation]) -> Vec<ViolationSig> {
    let mut sigs: Vec<ViolationSig> = violations.iter().map(ViolationSig::of).collect();
    sigs.sort();
    sigs.dedup();
    sigs
}

/// The deterministic replay transcript carried by a repair proof.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayTranscript {
    /// Violations observed on the live state when the repair was
    /// minted, in canonical order (see [`violation_sigs`]).
    pub base_violations: Vec<ViolationSig>,
    /// [`ReplayTranscript::state_digest`] over the touched
    /// (router, prefix) pairs at mint time.
    pub base_digest: u64,
    /// FIB deltas that revert the root cause's consequences, in
    /// (time,id) fold order. Applying them to base state must clear
    /// every base violation.
    pub undo: Vec<FibUpdate>,
    /// FIB deltas that reapply the consequences. Applying them after
    /// `undo` must reproduce `base_violations` and return the touched
    /// entries to `base_digest`.
    pub redo: Vec<FibUpdate>,
}

impl ReplayTranscript {
    /// Every (router, prefix) pair the transcript touches, sorted and
    /// deduplicated — the footprint the state digest covers.
    pub fn touched_pairs(&self) -> Vec<(RouterId, Ipv4Prefix)> {
        let set: BTreeSet<(RouterId, Ipv4Prefix)> = self
            .undo
            .iter()
            .chain(self.redo.iter())
            .map(|u| (u.router, u.prefix))
            .collect();
        set.into_iter().collect()
    }

    /// A deterministic digest of `dp`'s entries for `pairs`: presence
    /// and forwarding action per pair, in pair order. Install times are
    /// deliberately excluded — they are capture bookkeeping, not
    /// forwarding behavior.
    pub fn state_digest(dp: &DataPlane, pairs: &[(RouterId, Ipv4Prefix)]) -> u64 {
        let mut h = Fnv1a64::new();
        for &(router, prefix) in pairs {
            h.update_u64(u64::from(router.0));
            h.update_u64(u64::from(prefix.bits()));
            h.update(&[prefix.len()]);
            match dp.fib(router).get(&prefix) {
                Some(e) => {
                    h.update(b"some");
                    h.update(format!("{:?}", e.action).as_bytes());
                }
                None => h.update(b"none"),
            }
        }
        h.finish()
    }

    /// The digest of the transcript's own footprint on `dp`.
    pub fn digest_on(&self, dp: &DataPlane) -> u64 {
        Self::state_digest(dp, &self.touched_pairs())
    }
}

/// The outcome of re-executing a [`ReplayTranscript`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// The transcript replayed exactly: base state matched, undo
    /// cleared the violations, redo reproduced them.
    Reproduced,
    /// The replay executed but its outcome differs from the
    /// transcript's claims; the reason says where.
    Diverged(String),
    /// The transcript is structurally unsound and was not replayed;
    /// the reason says why.
    Error(String),
}

impl ReplayVerdict {
    /// Whether the verdict permits committing the repair.
    pub fn is_reproduced(&self) -> bool {
        matches!(self, ReplayVerdict::Reproduced)
    }

    /// The lowercase label used in metrics and journal records.
    pub fn label(&self) -> &'static str {
        match self {
            ReplayVerdict::Reproduced => "reproduced",
            ReplayVerdict::Diverged(_) => "diverged",
            ReplayVerdict::Error(_) => "error",
        }
    }

    /// Compact numeric code for journal records (0/1/2 in label order).
    pub fn code(&self) -> u8 {
        match self {
            ReplayVerdict::Reproduced => 0,
            ReplayVerdict::Diverged(_) => 1,
            ReplayVerdict::Error(_) => 2,
        }
    }
}

/// Re-executes replay transcripts against a shadow of the resident
/// verifier.
pub struct ReplayGate;

impl ReplayGate {
    /// Replays `t` against a clone of `verifier` and judges it.
    ///
    /// The live `verifier` is never mutated: the tentative apply runs
    /// on the clone, and every exit path — including REPRODUCED —
    /// discards it, which *is* the rollback the blocking verdicts
    /// require. Committing a REPRODUCED repair is the caller's move.
    pub fn execute(verifier: &IncrementalVerifier, t: &ReplayTranscript) -> ReplayVerdict {
        // Structural soundness first: these are ERRORs, not
        // divergences, because nothing can be replayed at all.
        if t.undo.is_empty() && t.redo.is_empty() {
            return ReplayVerdict::Error("empty transcript: no undo or redo steps".into());
        }
        let n = verifier.dataplane().num_routers();
        for u in t.undo.iter().chain(t.redo.iter()) {
            if u.router.index() >= n {
                return ReplayVerdict::Error(format!(
                    "transcript references router {} outside the {n}-router topology",
                    u.router.0
                ));
            }
        }

        // Base-state checks: the transcript claims the live state looks
        // like it did at mint time. A mismatch means the world moved on
        // (or the proof was tampered with) — the replay would not be
        // measuring what the proof claims, so the repair must block.
        let live = violation_sigs(&verifier.report().violations);
        if live != t.base_violations {
            return ReplayVerdict::Diverged(format!(
                "base violations differ: transcript has {}, live state has {}",
                t.base_violations.len(),
                live.len()
            ));
        }
        let pairs = t.touched_pairs();
        let live_digest = ReplayTranscript::state_digest(verifier.dataplane(), &pairs);
        if live_digest != t.base_digest {
            return ReplayVerdict::Diverged(format!(
                "base FIB digest differs: transcript {:#018x}, live {live_digest:#018x}",
                t.base_digest
            ));
        }

        // Shadow replay: undo must clear every base violation...
        let mut shadow = verifier.clone();
        for u in &t.undo {
            shadow.apply(u);
        }
        let after_undo = violation_sigs(&shadow.report().violations);
        for sig in &t.base_violations {
            if after_undo.contains(sig) {
                return ReplayVerdict::Diverged(format!(
                    "undo does not clear violation of policy {} at {}",
                    sig.policy_idx, sig.ingress
                ));
            }
        }

        // ...and redo must bring the violations and the footprint
        // digest back to base, proving the transcript captured the
        // actual cause rather than a coincidental state change.
        for u in &t.redo {
            shadow.apply(u);
        }
        let after_redo = violation_sigs(&shadow.report().violations);
        if after_redo != t.base_violations {
            return ReplayVerdict::Diverged(format!(
                "redo does not reproduce base violations: expected {}, got {}",
                t.base_violations.len(),
                after_redo.len()
            ));
        }
        let redo_digest = ReplayTranscript::state_digest(shadow.dataplane(), &pairs);
        if redo_digest != t.base_digest {
            return ReplayVerdict::Diverged(format!(
                "redo does not restore the FIB digest: expected {:#018x}, got {redo_digest:#018x}",
                t.base_digest
            ));
        }

        ReplayVerdict::Reproduced
    }
}

cpvr_types::impl_json_struct!(ViolationSig {
    policy_idx,
    ingress,
    representative,
    observed,
});

cpvr_types::impl_json_struct!(ReplayTranscript {
    base_violations,
    base_digest,
    undo,
    redo,
});

cpvr_types::impl_json_enum!(ReplayVerdict {
    Reproduced,
    Diverged(reason),
    Error(reason),
});
