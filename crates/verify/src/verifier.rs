//! The data-plane checker: full, parallel, and incremental verification.

use crate::ec::{class_of, EquivClass};
use crate::policy::{Policy, Violation};
use cpvr_dataplane::{DataPlane, TraceOutcome};
use cpvr_topo::Topology;
use cpvr_types::{Ipv4Prefix, PrefixTrie, RouterId};

/// The result of a verification pass.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// All violations found.
    pub violations: Vec<Violation>,
    /// How many equivalence classes were examined.
    pub ecs_checked: usize,
    /// How many forwarding traces were executed.
    pub traces_run: usize,
}

impl VerifyReport {
    /// True if no policy was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verifies every policy against a data-plane snapshot.
///
/// For each policy, the destination space under the policy's prefix is
/// sliced into equivalence classes (including classes induced by
/// more-specific FIB entries), and one representative per class is traced
/// from every ingress (or the policy's named ingress).
///
/// ```
/// use cpvr_dataplane::{DataPlane, FibAction, FibEntry};
/// use cpvr_topo::builder::shapes;
/// use cpvr_types::{RouterId, SimTime};
/// use cpvr_verify::{verify, Policy};
///
/// let (topo, _e1, e2) = shapes::paper_triangle();
/// let mut dp = DataPlane::new(3);
/// // Only R2 has a route; other ingresses blackhole → Reachable fails.
/// dp.fib_mut(RouterId(1)).install(
///     "8.8.8.0/24".parse().unwrap(),
///     FibEntry { action: FibAction::Exit(e2), installed_at: SimTime::ZERO },
/// );
/// let report = verify(&topo, &dp, &[Policy::Reachable { prefix: "8.8.8.0/24".parse().unwrap() }]);
/// assert_eq!(report.violations.len(), 2);
/// ```
pub fn verify(topo: &Topology, dp: &DataPlane, policies: &[Policy]) -> VerifyReport {
    verify_parallel(topo, dp, policies, 1)
}

/// Like [`verify`], but fans the independent per-class checks across
/// `threads` scoped worker threads (`0` = one per available core).
///
/// Each (policy, class) pair traces its own representative through an
/// immutable data-plane snapshot, so the checks share no state; results
/// are concatenated in job order, making the report identical to the
/// sequential one.
pub fn verify_parallel(
    topo: &Topology,
    dp: &DataPlane,
    policies: &[Policy],
    threads: usize,
) -> VerifyReport {
    let union = dp.prefix_union();
    let mut jobs: Vec<(usize, EquivClass)> = Vec::new();
    for (idx, policy) in policies.iter().enumerate() {
        for ec in classes_under(&union, policy.prefix()) {
            jobs.push((idx, ec));
        }
    }
    let mut report = VerifyReport {
        ecs_checked: jobs.len(),
        ..VerifyReport::default()
    };
    for (violations, traces) in run_class_checks(topo, dp, policies, &jobs, threads) {
        report.traces_run += traces;
        report.violations.extend(violations);
    }
    report
}

/// The equivalence classes a policy with scope `scope` must check, given
/// the union trie of installed prefixes: the scope's own class (the part
/// of `scope` no installed more-specific prefix covers) followed by the
/// classes of every installed prefix under the scope, in prefix order.
///
/// This is exactly the class set the original sort-and-scan computed
/// from `installed ∩ overlapping(scope) ∪ {scope}` filtered to owners
/// inside `scope`: installed prefixes *above* the scope never own a kept
/// class and never shrink one (their space lies outside every kept
/// owner's children).
pub(crate) fn classes_under<V>(trie: &PrefixTrie<V>, scope: Ipv4Prefix) -> Vec<EquivClass> {
    let mut out = Vec::new();
    if let Some(ec) = class_of(trie, scope) {
        out.push(ec);
    }
    for (p, _) in trie.covered_by(&scope) {
        if p == scope {
            continue; // already emitted as the scope's own class
        }
        if let Some(ec) = class_of(trie, p) {
            out.push(ec);
        }
    }
    out
}

/// The equivalence classes a policy scoped to `scope` would check against
/// this data plane. Exposed for tests and tooling that want to inspect
/// the slicing without running traces.
pub fn policy_equivalence_classes(dp: &DataPlane, scope: Ipv4Prefix) -> Vec<EquivClass> {
    classes_under(&dp.prefix_union(), scope)
}

/// Runs `(policy index, class)` jobs, each yielding its violations and
/// trace count, preserving job order. `threads == 0` uses one thread per
/// available core; `threads <= 1` runs inline.
pub(crate) fn run_class_checks(
    topo: &Topology,
    dp: &DataPlane,
    policies: &[Policy],
    jobs: &[(usize, EquivClass)],
    threads: usize,
) -> Vec<(Vec<Violation>, usize)> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(jobs.len().max(1));
    if threads <= 1 {
        return jobs
            .iter()
            .map(|(idx, ec)| check_class(topo, dp, *idx, &policies[*idx], ec))
            .collect();
    }
    // Contiguous chunks + in-order joins keep the concatenation equal to
    // the sequential result (same idiom as `infer_hbg_parallel`).
    let chunk = jobs.len().div_ceil(threads);
    let mut out = Vec::with_capacity(jobs.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    part.iter()
                        .map(|(idx, ec)| check_class(topo, dp, *idx, &policies[*idx], ec))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("class-check worker panicked"));
        }
    });
    out
}

/// Incremental verification: like [`verify`], but re-checks only the
/// equivalence classes whose owning prefix overlaps one of the `changed`
/// prefixes — the VeriFlow-style fast path used when gating a single FIB
/// update. A class whose owner is disjoint from every changed prefix
/// kept both its shape (its children are inside the owner) and its
/// forwarding vector (its representative's LPM never consults a disjoint
/// prefix), so skipping it cannot hide a new violation.
pub fn verify_incremental(
    topo: &Topology,
    dp: &DataPlane,
    policies: &[Policy],
    changed: &[Ipv4Prefix],
) -> VerifyReport {
    let union = dp.prefix_union();
    let mut jobs: Vec<(usize, EquivClass)> = Vec::new();
    for (idx, policy) in policies.iter().enumerate() {
        for ec in classes_under(&union, policy.prefix()) {
            if changed.iter().any(|c| c.overlaps(&ec.prefix)) {
                jobs.push((idx, ec));
            }
        }
    }
    let mut report = VerifyReport {
        ecs_checked: jobs.len(),
        ..VerifyReport::default()
    };
    for (violations, traces) in run_class_checks(topo, dp, policies, &jobs, 1) {
        report.traces_run += traces;
        report.violations.extend(violations);
    }
    report
}

/// Checks one policy against one equivalence class, returning the
/// violations found and the number of traces run.
pub(crate) fn check_class(
    topo: &Topology,
    dp: &DataPlane,
    idx: usize,
    policy: &Policy,
    ec: &EquivClass,
) -> (Vec<Violation>, usize) {
    let mut violations = Vec::new();
    let mut traces = 0usize;
    let ingresses: Vec<RouterId> = match policy {
        Policy::Waypoint { from, .. } => vec![*from],
        _ => (0..dp.num_routers() as u32).map(RouterId).collect(),
    };
    for ingress in ingresses {
        let trace = dp.trace(topo, ingress, ec.representative);
        traces += 1;
        let bad: Option<String> = match policy {
            Policy::Reachable { .. } => {
                if trace.outcome.is_delivered() {
                    None
                } else {
                    Some(trace.outcome.to_string())
                }
            }
            Policy::LoopFree { .. } => match trace.outcome {
                TraceOutcome::Loop(_) => Some(trace.outcome.to_string()),
                _ => None,
            },
            Policy::ExitsVia { peer, .. } => match trace.outcome {
                TraceOutcome::Exited(p) if p == *peer => None,
                _ => Some(trace.outcome.to_string()),
            },
            Policy::PreferredExit {
                primary, backup, ..
            } => {
                let want = if topo.ext_peer(*primary).state.is_up() {
                    Some(*primary)
                } else if topo.ext_peer(*backup).state.is_up() {
                    Some(*backup)
                } else {
                    None // both uplinks down: vacuously satisfied
                };
                match want {
                    None => None,
                    Some(want) => match trace.outcome {
                        TraceOutcome::Exited(p) if p == want => None,
                        _ => Some(format!("{} (wanted exit {})", trace.outcome, want)),
                    },
                }
            }
            Policy::Waypoint { via, .. } => {
                if !trace.outcome.is_delivered() {
                    Some(trace.outcome.to_string())
                } else if trace.router_path().contains(via) {
                    None
                } else {
                    Some(format!(
                        "path {:?} skips waypoint {via}",
                        trace.router_path()
                    ))
                }
            }
            Policy::Isolation { forbidden, .. } => match trace.outcome {
                TraceOutcome::Exited(p) if p == *forbidden => {
                    Some(format!("exited via forbidden peer {p}"))
                }
                _ => None,
            },
        };
        if let Some(observed) = bad {
            violations.push(Violation {
                policy_idx: idx,
                policy: policy.clone(),
                ingress,
                representative: ec.representative,
                observed,
            });
        }
    }
    (violations, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpvr_dataplane::{FibAction, FibEntry};
    use cpvr_topo::builder::shapes;
    use cpvr_topo::{ExtPeerId, LinkState};
    use cpvr_types::SimTime;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn entry(action: FibAction) -> FibEntry {
        FibEntry {
            action,
            installed_at: SimTime::ZERO,
        }
    }

    /// Paper triangle with all traffic for P exiting via R2's uplink.
    fn good_paper_dp() -> (cpvr_topo::Topology, DataPlane, ExtPeerId, ExtPeerId) {
        let (topo, e1, e2) = shapes::paper_triangle();
        let mut dp = DataPlane::new(3);
        let l12 = topo.link_between(RouterId(0), RouterId(1)).unwrap().id;
        let l23 = topo.link_between(RouterId(1), RouterId(2)).unwrap().id;
        dp.fib_mut(RouterId(0))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l12)));
        dp.fib_mut(RouterId(1))
            .install(p("8.8.8.0/24"), entry(FibAction::Exit(e2)));
        dp.fib_mut(RouterId(2))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l23)));
        (topo, dp, e1, e2)
    }

    fn paper_policy(e1: ExtPeerId, e2: ExtPeerId) -> Policy {
        Policy::PreferredExit {
            prefix: p("8.8.8.0/24"),
            primary: e2,
            backup: e1,
        }
    }

    #[test]
    fn compliant_dataplane_passes() {
        let (topo, dp, e1, e2) = good_paper_dp();
        let report = verify(&topo, &dp, &[paper_policy(e1, e2)]);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.ecs_checked, 1);
        assert_eq!(report.traces_run, 3);
    }

    #[test]
    fn wrong_exit_is_violation() {
        let (topo, mut dp, e1, e2) = good_paper_dp();
        // R2 now exits via... wait, R1 exits directly via its own uplink:
        // the Fig. 2 violation (traffic leaves via R1 while R2's uplink is
        // up).
        dp.fib_mut(RouterId(0))
            .install(p("8.8.8.0/24"), entry(FibAction::Exit(e1)));
        let report = verify(&topo, &dp, &[paper_policy(e1, e2)]);
        assert!(!report.ok());
        assert!(report.violations.iter().any(|v| v.ingress == RouterId(0)));
        assert!(report.violations[0].observed.contains("wanted exit Ext1"));
    }

    #[test]
    fn preferred_exit_fails_over_when_primary_down() {
        let (mut topo, mut dp, e1, e2) = good_paper_dp();
        topo.set_ext_peer_state(e2, LinkState::Down);
        // Everything now points at R1's uplink: compliant with the backup
        // clause.
        let l21 = topo.link_between(RouterId(1), RouterId(0)).unwrap().id;
        let l31 = topo.link_between(RouterId(2), RouterId(0)).unwrap().id;
        dp.fib_mut(RouterId(0))
            .install(p("8.8.8.0/24"), entry(FibAction::Exit(e1)));
        dp.fib_mut(RouterId(1))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l21)));
        dp.fib_mut(RouterId(2))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l31)));
        let report = verify(&topo, &dp, &[paper_policy(e1, e2)]);
        assert!(report.ok(), "{:?}", report.violations);
        // Both uplinks down → vacuous.
        topo.set_ext_peer_state(e1, LinkState::Down);
        let report = verify(&topo, &dp, &[paper_policy(e1, e2)]);
        assert!(report.ok());
    }

    #[test]
    fn loop_detection() {
        let (topo, mut dp, _e1, _e2) = good_paper_dp();
        // Make R2 point back at R1 → R1→R2→R1 loop.
        let l12 = topo.link_between(RouterId(0), RouterId(1)).unwrap().id;
        dp.fib_mut(RouterId(1))
            .install(p("8.8.8.0/24"), entry(FibAction::Forward(l12)));
        let report = verify(
            &topo,
            &dp,
            &[Policy::LoopFree {
                prefix: p("8.8.8.0/24"),
            }],
        );
        assert!(!report.ok());
        assert!(report.violations[0].observed.contains("loop"));
    }

    #[test]
    fn blackhole_detection_via_reachable() {
        let (topo, mut dp, _e1, _e2) = good_paper_dp();
        dp.fib_mut(RouterId(1)).remove(&p("8.8.8.0/24"));
        let report = verify(
            &topo,
            &dp,
            &[Policy::Reachable {
                prefix: p("8.8.8.0/24"),
            }],
        );
        assert!(!report.ok());
        assert!(report
            .violations
            .iter()
            .any(|v| v.observed.contains("blackhole")));
    }

    #[test]
    fn waypoint_enforced() {
        let (topo, dp, _e1, _e2) = good_paper_dp();
        // R1's path to the exit is R1→R2: waypoint R3 is skipped.
        let pol = Policy::Waypoint {
            from: RouterId(0),
            prefix: p("8.8.8.0/24"),
            via: RouterId(2),
        };
        let report = verify(&topo, &dp, &[pol]);
        assert!(!report.ok());
        assert!(report.violations[0].observed.contains("skips waypoint"));
        // R3's own traffic goes R3→R2 — from R3 the waypoint IS on the
        // path.
        let pol = Policy::Waypoint {
            from: RouterId(2),
            prefix: p("8.8.8.0/24"),
            via: RouterId(2),
        };
        assert!(verify(&topo, &dp, &[pol]).ok());
    }

    #[test]
    fn more_specific_prefix_induces_second_class() {
        let (topo, mut dp, e1, e2) = good_paper_dp();
        // A more-specific /25 on R1 hijacks half the space to Ext0.
        dp.fib_mut(RouterId(0))
            .install(p("8.8.8.0/25"), entry(FibAction::Exit(e1)));
        let report = verify(&topo, &dp, &[paper_policy(e1, e2)]);
        assert_eq!(report.ecs_checked, 2, "the /25 must split the /24's class");
        // Violations only for the hijacked half, only from R1.
        assert!(!report.ok());
        for v in &report.violations {
            assert!(p("8.8.8.0/25").contains_addr(v.representative));
        }
    }

    #[test]
    fn parallel_verify_matches_sequential() {
        let (topo, mut dp, e1, e2) = good_paper_dp();
        dp.fib_mut(RouterId(0))
            .install(p("8.8.8.0/25"), entry(FibAction::Exit(e1)));
        let policies = vec![
            paper_policy(e1, e2),
            Policy::Reachable {
                prefix: p("8.8.8.0/24"),
            },
            Policy::LoopFree {
                prefix: p("8.8.8.0/24"),
            },
        ];
        let seq = verify(&topo, &dp, &policies);
        for threads in [0, 2, 4, 8] {
            let par = verify_parallel(&topo, &dp, &policies, threads);
            assert_eq!(par.violations, seq.violations, "threads={threads}");
            assert_eq!(par.ecs_checked, seq.ecs_checked);
            assert_eq!(par.traces_run, seq.traces_run);
        }
    }

    #[test]
    fn policy_classes_scope_first_then_specifics() {
        let (_, mut dp, e1, _) = good_paper_dp();
        dp.fib_mut(RouterId(0))
            .install(p("8.8.8.0/25"), entry(FibAction::Exit(e1)));
        let ecs = policy_equivalence_classes(&dp, p("8.8.8.0/24"));
        assert_eq!(ecs.len(), 2);
        assert_eq!(ecs[0].prefix, p("8.8.8.0/24"));
        // The scope's own class dodges the /25 hijack.
        assert!(!p("8.8.8.0/25").contains_addr(ecs[0].representative));
        assert_eq!(ecs[1].prefix, p("8.8.8.0/25"));
        // A scope with no installed routes still gets its own class.
        let bare = policy_equivalence_classes(&dp, p("9.9.9.0/24"));
        assert_eq!(bare.len(), 1);
        assert_eq!(bare[0].prefix, p("9.9.9.0/24"));
    }

    #[test]
    fn incremental_skips_unrelated_policies() {
        let (topo, dp, e1, e2) = good_paper_dp();
        let policies = vec![
            paper_policy(e1, e2),
            Policy::Reachable {
                prefix: p("9.9.9.0/24"),
            },
        ];
        let full = verify(&topo, &dp, &policies);
        let inc = verify_incremental(&topo, &dp, &policies, &[p("8.8.8.0/24")]);
        // Incremental does strictly less tracing work.
        assert!(inc.traces_run < full.traces_run);
        assert!(inc.ok());
        // A change overlapping nothing verifies nothing.
        let none = verify_incremental(&topo, &dp, &policies, &[p("7.7.7.0/24")]);
        assert_eq!(none.traces_run, 0);
    }

    #[test]
    fn incremental_preserves_original_policy_indices() {
        let (topo, mut dp, e1, e2) = good_paper_dp();
        dp.fib_mut(RouterId(0))
            .install(p("8.8.8.0/24"), entry(FibAction::Drop));
        let policies = vec![
            Policy::Reachable {
                prefix: p("9.9.9.0/24"),
            },
            paper_policy(e1, e2),
        ];
        let inc = verify_incremental(&topo, &dp, &policies, &[p("8.8.8.0/24")]);
        assert!(!inc.ok());
        assert_eq!(inc.violations[0].policy_idx, 1);
    }

    #[test]
    fn policy_with_no_installed_routes_blackholes_everywhere() {
        let (topo, _, e1, e2) = good_paper_dp();
        let dp = DataPlane::new(3);
        let report = verify(&topo, &dp, &[paper_policy(e1, e2)]);
        assert_eq!(report.violations.len(), 3, "every ingress blackholes");
    }

    #[test]
    fn isolation_forbids_an_exit() {
        let (topo, dp, _e1, e2) = good_paper_dp();
        // Everything exits via e2; forbidding e2 violates, forbidding a
        // different peer does not.
        let bad = Policy::Isolation {
            prefix: p("8.8.8.0/24"),
            forbidden: e2,
        };
        let report = verify(&topo, &dp, &[bad]);
        assert!(!report.ok());
        assert!(report.violations[0].observed.contains("forbidden"));
        let fine = Policy::Isolation {
            prefix: p("8.8.8.0/24"),
            forbidden: ExtPeerId(0),
        };
        assert!(verify(&topo, &dp, &[fine]).ok());
        // Blackholed traffic trivially satisfies isolation.
        let empty = DataPlane::new(3);
        assert!(verify(
            &topo,
            &empty,
            &[Policy::Isolation {
                prefix: p("8.8.8.0/24"),
                forbidden: e2
            }]
        )
        .ok());
    }
}
