//! Property-based tests of equivalence-class slicing: the soundness
//! property behind "verify one representative per class".

use cpvr_types::Ipv4Prefix;
use cpvr_verify::ec::equivalence_classes_of;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    // Narrow pool so nesting happens often.
    (0u32..16, 8u8..=28).prop_map(|(i, len)| {
        Ipv4Prefix::from_bits(
            u32::from(Ipv4Addr::new(10, (i % 4) as u8, (i / 4) as u8, 0)),
            len,
        )
    })
}

/// The LPM owner of `addr` among `prefixes` (longest covering prefix).
fn lpm_owner(prefixes: &[Ipv4Prefix], addr: Ipv4Addr) -> Option<Ipv4Prefix> {
    prefixes
        .iter()
        .filter(|p| p.contains_addr(addr))
        .max_by_key(|p| p.len())
        .copied()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn representative_is_owned_by_its_class(prefixes in prop::collection::vec(arb_prefix(), 1..12)) {
        let ecs = equivalence_classes_of(&prefixes);
        for ec in &ecs {
            // The representative's LPM owner must be exactly the class's
            // owning prefix — otherwise tracing it would exercise a
            // different class.
            prop_assert_eq!(lpm_owner(&prefixes, ec.representative), Some(ec.prefix));
        }
    }

    #[test]
    fn one_class_per_owner(prefixes in prop::collection::vec(arb_prefix(), 1..12)) {
        let ecs = equivalence_classes_of(&prefixes);
        let mut owners: Vec<Ipv4Prefix> = ecs.iter().map(|e| e.prefix).collect();
        let n = owners.len();
        owners.sort();
        owners.dedup();
        prop_assert_eq!(owners.len(), n, "no owner may contribute two classes");
    }

    #[test]
    fn every_covered_address_has_a_class_with_same_owner(
        prefixes in prop::collection::vec(arb_prefix(), 1..12),
        probe_bits in any::<u32>(),
    ) {
        // Soundness: any address covered by some input prefix behaves
        // like the representative of the class owned by its LPM owner.
        let addr = Ipv4Addr::from(
            u32::from(Ipv4Addr::new(10, 0, 0, 0)) | (probe_bits & 0x0003_ffff),
        );
        if let Some(owner) = lpm_owner(&prefixes, addr) {
            let ecs = equivalence_classes_of(&prefixes);
            let class = ecs.iter().find(|e| e.prefix == owner);
            prop_assert!(
                class.is_some(),
                "address {addr} owned by {owner} but no class has that owner"
            );
        }
    }

    #[test]
    fn class_count_bounded_by_prefix_count(prefixes in prop::collection::vec(arb_prefix(), 0..16)) {
        let mut unique = prefixes.clone();
        unique.sort();
        unique.dedup();
        let ecs = equivalence_classes_of(&prefixes);
        prop_assert!(ecs.len() <= unique.len());
    }

    #[test]
    fn classes_are_insensitive_to_duplication_and_order(
        prefixes in prop::collection::vec(arb_prefix(), 1..10),
        dup in 0usize..10,
    ) {
        let mut noisy = prefixes.clone();
        noisy.push(prefixes[dup % prefixes.len()]);
        noisy.reverse();
        prop_assert_eq!(equivalence_classes_of(&prefixes), equivalence_classes_of(&noisy));
    }
}
