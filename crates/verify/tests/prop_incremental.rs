//! Property-based tests of the batch-equivalence invariant: an
//! [`IncrementalVerifier`] fed a randomized install/remove sequence must,
//! after every single update, report exactly what a from-scratch batch
//! [`verify`] reports on a mirror data plane — same violations in the
//! same order, same classes, same trace counts — and its delta report
//! must equal [`verify_incremental`] scoped to the updated prefix.

use cpvr_dataplane::{DataPlane, FibAction, FibUpdate, UpdateKind};
use cpvr_topo::builder::shapes;
use cpvr_topo::Topology;
use cpvr_types::{Ipv4Prefix, RouterId, SimTime};
use cpvr_verify::{verify, verify_incremental, IncrementalVerifier, Policy};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Narrow prefix pool around 10.0.0.0/8 so nesting and collisions happen
/// often.
fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (0u32..16, 8u8..=28).prop_map(|(i, len)| {
        Ipv4Prefix::from_bits(
            u32::from(Ipv4Addr::new(10, (i % 4) as u8, (i / 4) as u8, 0)),
            len,
        )
    })
}

/// One step of the update stream: who, what, install-or-remove, and an
/// action selector (exit via one of the two uplinks, forward on a link,
/// or drop).
fn arb_step() -> impl Strategy<Value = (u32, Ipv4Prefix, bool, u8)> {
    (0u32..3, arb_prefix(), any::<bool>(), 0u8..4)
}

fn fixture() -> (Topology, Vec<Policy>) {
    let (topo, e1, e2) = shapes::paper_triangle();
    let policies = vec![
        Policy::Reachable {
            prefix: "10.0.0.0/8".parse().unwrap(),
        },
        Policy::PreferredExit {
            prefix: "10.1.0.0/16".parse().unwrap(),
            primary: e2,
            backup: e1,
        },
        Policy::LoopFree {
            prefix: "10.0.0.0/10".parse().unwrap(),
        },
    ];
    (topo, policies)
}

fn step_to_update(topo: &Topology, step: &(u32, Ipv4Prefix, bool, u8), at: usize) -> FibUpdate {
    let (router, prefix, install, sel) = *step;
    let router = RouterId(router);
    let action = match sel {
        0 => FibAction::Exit(topo.ext_peers()[0].id),
        1 => FibAction::Exit(topo.ext_peers()[1].id),
        2 => {
            // Forward on a link actually attached to this router.
            let attached: Vec<_> = topo
                .links()
                .iter()
                .filter(|l| l.a.0 == router || l.b.0 == router)
                .collect();
            FibAction::Forward(attached[at % attached.len()].id)
        }
        _ => FibAction::Drop,
    };
    FibUpdate {
        router,
        prefix,
        kind: if install {
            UpdateKind::Install
        } else {
            UpdateKind::Remove
        },
        action,
        at: SimTime::from_millis(at as u64 + 1),
    }
}

fn assert_reports_equal(
    live: &cpvr_verify::VerifyReport,
    batch: &cpvr_verify::VerifyReport,
    what: &str,
) {
    assert_eq!(live.violations, batch.violations, "{what}: violations");
    assert_eq!(live.ecs_checked, batch.ecs_checked, "{what}: ecs_checked");
    assert_eq!(live.traces_run, batch.traces_run, "{what}: traces_run");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_equals_batch_under_random_update_streams(
        steps in prop::collection::vec(arb_step(), 1..40),
    ) {
        let (topo, policies) = fixture();
        let mut iv = IncrementalVerifier::new(topo.clone(), DataPlane::new(3), policies.clone());
        let mut mirror = DataPlane::new(3);
        for (at, step) in steps.iter().enumerate() {
            let update = step_to_update(&topo, step, at);
            let delta = iv.apply(&update);
            mirror.fib_mut(update.router).apply(&update);
            // Delta report == scoped incremental verify on the mirror.
            let scoped = verify_incremental(&topo, &mirror, &policies, &[update.prefix]);
            assert_reports_equal(&delta, &scoped, "delta vs verify_incremental");
            // Full live report == from-scratch batch verify.
            let batch = verify(&topo, &mirror, &policies);
            assert_reports_equal(&iv.report(), &batch, "report vs batch verify");
            prop_assert_eq!(iv.ok(), batch.ok());
        }
    }

    #[test]
    fn gate_preserves_batch_equivalence(
        steps in prop::collection::vec(arb_step(), 1..24),
    ) {
        let (topo, policies) = fixture();
        let mut iv = IncrementalVerifier::new(topo.clone(), DataPlane::new(3), policies.clone());
        let mut mirror = DataPlane::new(3);
        for (at, step) in steps.iter().enumerate() {
            let update = step_to_update(&topo, step, at);
            // The gate admits an update iff its delta check is clean;
            // blocked updates must leave no trace on the mirror state.
            match iv.gate(&update) {
                Ok(delta) => {
                    prop_assert!(delta.ok());
                    mirror.fib_mut(update.router).apply(&update);
                }
                Err(delta) => prop_assert!(!delta.ok()),
            }
            let batch = verify(&topo, &mirror, &policies);
            assert_reports_equal(&iv.report(), &batch, "gated report vs batch");
        }
    }
}

/// Regression: remove a covering prefix (whose space a more-specific
/// prefix partially shadows), then reinstall it. The remove must merge
/// the shadowed class back into nothing (the /16 keeps its own class, the
/// /8's class vanishes), and the reinstall must resplit — with verdicts
/// identical to batch at every step. An earlier design that diffed owners
/// only on refcount transitions missed the resplit when another router
/// still held the /16.
#[test]
fn remove_then_reinstall_covering_prefix() {
    let (topo, policies) = fixture();
    let p8: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    let p16: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
    let e2 = topo.ext_peers()[1].id;

    let mut iv = IncrementalVerifier::new(topo.clone(), DataPlane::new(3), policies.clone());
    let mut mirror = DataPlane::new(3);
    let mut at = 0u64;
    let mut step = |iv: &mut IncrementalVerifier,
                    mirror: &mut DataPlane,
                    router: u32,
                    prefix: Ipv4Prefix,
                    kind: UpdateKind| {
        at += 1;
        let u = FibUpdate {
            router: RouterId(router),
            prefix,
            kind,
            action: FibAction::Exit(e2),
            at: SimTime::from_millis(at),
        };
        iv.apply(&u);
        mirror.fib_mut(u.router).apply(&u);
    };

    // Install the /8 on all routers and the /16 on router 1 only.
    for r in 0..3 {
        step(&mut iv, &mut mirror, r, p8, UpdateKind::Install);
    }
    step(&mut iv, &mut mirror, 1, p16, UpdateKind::Install);
    let split = verify(&topo, &mirror, &policies);
    assert_eq!(iv.report().ecs_checked, split.ecs_checked);

    // Remove the covering /8 everywhere: its classes disappear, the /16
    // class survives.
    for r in 0..3 {
        step(&mut iv, &mut mirror, r, p8, UpdateKind::Remove);
    }
    let removed = verify(&topo, &mirror, &policies);
    assert_eq!(iv.report().violations, removed.violations);
    assert_eq!(iv.report().ecs_checked, removed.ecs_checked);
    assert_eq!(iv.report().traces_run, removed.traces_run);

    // Reinstall the /8 on one router: the split must come back exactly.
    step(&mut iv, &mut mirror, 0, p8, UpdateKind::Install);
    let resplit = verify(&topo, &mirror, &policies);
    assert_eq!(iv.report().violations, resplit.violations);
    assert_eq!(iv.report().ecs_checked, resplit.ecs_checked);
    assert_eq!(iv.report().traces_run, resplit.traces_run);
}
