//! Distributed verification, distributed provenance, and a live
//! federation of collectors (§5).
//!
//! Instead of hauling every FIB and every log record to one box, routers
//! keep their own transfer functions and happens-before subgraphs and
//! exchange partial results. This example runs the in-process cost
//! models for both distributed schemes, then folds the very same trace
//! through a *real* federation: three collectors over loopback TCP,
//! each owning a subset of the routers, exchanging frontiers, boundary
//! edges, and partial verdicts over the wire codec's peer frames. If
//! the live federation cannot launch (no loopback, no scratch dir), the
//! in-process models above stand as the fallback.
//!
//! Run with: `cargo run --example distributed_analysis`

use cpvr::bgp::{ConfigChange, PeerRef, RouteMap, SetAction};
use cpvr::collector::wal::{wait_for, TempDir};
use cpvr::collector::SocketSink;
use cpvr::core::distributed::{distributed_root_causes, partition};
use cpvr::core::FederationPlan;
use cpvr::federation::Federation;
use cpvr::sim::scenario::two_exit_scenario;
use cpvr::sim::{CaptureProfile, IoEvent, IoKind, LatencyProfile};
use cpvr::types::{RouterId, SimTime};
use cpvr::verify::distributed::distributed_verify;
use cpvr::verify::Policy;
use std::time::Duration;

fn main() {
    // An 8-router line with exits at both ends, fully converged, then a
    // fault: the right exit's import gets a rock-bottom local preference.
    let (mut sim, left, right) =
        two_exit_scenario(8, LatencyProfile::fast(), CaptureProfile::ideal(), 5);
    let p: cpvr::types::Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    sim.start();
    sim.run_to_quiescence(500_000);
    sim.schedule_ext_announce(sim.now() + SimTime::from_millis(1), left, &[p]);
    sim.schedule_ext_announce(sim.now() + SimTime::from_millis(40), right, &[p]);
    sim.run_to_quiescence(500_000);

    // --- distributed data-plane verification (in-process cost model) ---
    let policy = Policy::PreferredExit {
        prefix: p,
        primary: right,
        backup: left,
    };
    let (report, stats) = distributed_verify(
        sim.topology(),
        sim.dataplane(),
        std::slice::from_ref(&policy),
    );
    println!("distributed verification of '{policy}':");
    println!(
        "  verdict                  : {}",
        if report.ok() { "compliant" } else { "VIOLATED" }
    );
    println!("  partial-result messages  : {}", stats.dist_messages);
    println!(
        "  busiest node lookups     : {} (centralized does all {})",
        stats.dist_max_node_work, stats.central_work
    );
    println!(
        "  snapshot entries avoided : {}",
        stats.central_snapshot_entries
    );

    // --- inject the fault and do distributed provenance ----------------
    let t_change = sim.now() + SimTime::from_millis(10);
    let change = ConfigChange::SetImport {
        peer: PeerRef::External(right),
        map: RouteMap::set_all(vec![SetAction::LocalPref(1)]),
    };
    sim.schedule_config(t_change, RouterId(7), change);
    sim.run_to_quiescence(500_000);

    // The problematic FIB update: R1 reprogramming P after the change.
    let trace = sim.trace().clone();
    let bad = trace
        .events
        .iter()
        .filter(|e| e.router == RouterId(0) && e.time >= t_change)
        .filter(|e| matches!(&e.kind, IoKind::FibInstall { prefix, .. } if *prefix == p))
        .map(|e| e.id)
        .max()
        .expect("R1 reprogrammed P");

    let subs = partition(&trace);
    let (causes, pstats) = distributed_root_causes(&trace, &subs, bad);
    println!(
        "\ndistributed provenance from {}:",
        trace.events[bad.index()]
    );
    println!("  partial-path messages    : {}", pstats.messages);
    println!(
        "  routers involved         : {} of 8",
        pstats.routers_involved
    );
    println!("  root causes:");
    for c in &causes {
        println!("    {c}");
    }

    // --- the same trace through a *real* federation --------------------
    match run_federated(&trace.events) {
        Ok(()) => {}
        Err(e) => println!(
            "\nlive federation unavailable ({e}); the in-process \
             distributed models above are the fallback"
        ),
    }
}

/// Folds the captured trace through a live 3-member federation and
/// prints what actually crossed the collector↔collector links.
fn run_federated(events: &[IoEvent]) -> std::io::Result<()> {
    const MEMBERS: u32 = 3;
    let n_routers = events.iter().map(|e| e.router.0).max().unwrap() + 1;
    let tmp = TempDir::new("distributed-analysis-fed")?;
    let fed = Federation::launch(FederationPlan::uniform(MEMBERS), n_routers, tmp.path())?;
    println!("\nlive federation: {MEMBERS} collectors over loopback TCP");
    for m in 0..fed.members() {
        let owned: Vec<u32> = (0..n_routers)
            .filter(|&r| fed.plan().of_router(RouterId(r)) == m)
            .collect();
        println!("  member {m} on {} owns routers {owned:?}", fed.addr(m));
    }

    let mut sinks: Vec<SocketSink> = (0..n_routers)
        .map(|r| {
            let r = RouterId(r);
            SocketSink::connect(fed.addr_of_router(r), r, n_routers)
        })
        .collect::<std::io::Result<_>>()?;
    for sink in &mut sinks {
        let mut mine: Vec<&IoEvent> = events
            .iter()
            .filter(|e| e.router == sink.source())
            .collect();
        mine.sort_by_key(|e| (e.time, e.id));
        for e in mine {
            sink.send(e)?;
        }
        if !sink.drain(Duration::from_secs(10))? {
            return Err(std::io::Error::other("stream never drained"));
        }
    }
    let end = events
        .iter()
        .map(|e| e.arrived_at.unwrap_or(e.time))
        .max()
        .unwrap();
    let mut t = SimTime::ZERO;
    while t < end + SimTime::from_millis(10) {
        t += SimTime::from_millis(10);
        for sink in &mut sinks {
            sink.watermark(t)?;
        }
    }
    for sink in &mut sinks {
        sink.bye()?;
    }
    for m in 0..fed.members() {
        if !wait_for(Duration::from_secs(10), || {
            fed.handle(m).stats().watermark == Some(SimTime::MAX)
        }) {
            return Err(std::io::Error::other(format!(
                "member {m} never folded to the final horizon"
            )));
        }
    }
    drop(sinks);

    let report = fed.shutdown()?;
    let g = &report.global;
    let (waits, resolved) = g.wait_stats();
    println!(
        "  global fold: {} events, {} HBG edges, {waits} WaitFor issued \
         / {resolved} resolved, verdict {}",
        g.events(),
        g.canonical_edges().len(),
        if g.status().is_consistent() {
            "consistent"
        } else {
            "WAITING"
        }
    );
    let mut total_boundary = 0u64;
    let mut total_bytes = 0u64;
    for member in &report.members {
        if let Some(snap) = &member.metrics {
            total_boundary += snap.counter_total("cpvr_boundary_events_sent_total");
            total_bytes += snap.counter_total("cpvr_boundary_bytes_sent_total");
        }
    }
    println!(
        "  inter-collector cost: {total_boundary} boundary events shipped, \
         {total_bytes} B of peer frames — instead of the full {}-event trace \
         on one box",
        events.len()
    );
    Ok(())
}
