//! Distributed verification and distributed provenance (§5).
//!
//! Instead of hauling every FIB and every log record to one box, routers
//! keep their own transfer functions and happens-before subgraphs and
//! exchange partial results. This example runs both distributed schemes
//! and prints the cost comparison against their centralized twins.
//!
//! Run with: `cargo run --example distributed_analysis`

use cpvr::bgp::{ConfigChange, PeerRef, RouteMap, SetAction};
use cpvr::core::distributed::{distributed_root_causes, partition};
use cpvr::sim::scenario::two_exit_scenario;
use cpvr::sim::{CaptureProfile, IoKind, LatencyProfile};
use cpvr::types::{RouterId, SimTime};
use cpvr::verify::distributed::distributed_verify;
use cpvr::verify::Policy;

fn main() {
    // An 8-router line with exits at both ends, fully converged, then a
    // fault: the right exit's import gets a rock-bottom local preference.
    let (mut sim, left, right) =
        two_exit_scenario(8, LatencyProfile::fast(), CaptureProfile::ideal(), 5);
    let p: cpvr::types::Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    sim.start();
    sim.run_to_quiescence(500_000);
    sim.schedule_ext_announce(sim.now() + SimTime::from_millis(1), left, &[p]);
    sim.schedule_ext_announce(sim.now() + SimTime::from_millis(40), right, &[p]);
    sim.run_to_quiescence(500_000);

    // --- distributed data-plane verification --------------------------
    let policy = Policy::PreferredExit {
        prefix: p,
        primary: right,
        backup: left,
    };
    let (report, stats) = distributed_verify(
        sim.topology(),
        sim.dataplane(),
        std::slice::from_ref(&policy),
    );
    println!("distributed verification of '{policy}':");
    println!(
        "  verdict                  : {}",
        if report.ok() { "compliant" } else { "VIOLATED" }
    );
    println!("  partial-result messages  : {}", stats.dist_messages);
    println!(
        "  busiest node lookups     : {} (centralized does all {})",
        stats.dist_max_node_work, stats.central_work
    );
    println!(
        "  snapshot entries avoided : {}",
        stats.central_snapshot_entries
    );

    // --- inject the fault and do distributed provenance ----------------
    let t_change = sim.now() + SimTime::from_millis(10);
    let change = ConfigChange::SetImport {
        peer: PeerRef::External(right),
        map: RouteMap::set_all(vec![SetAction::LocalPref(1)]),
    };
    sim.schedule_config(t_change, RouterId(7), change);
    sim.run_to_quiescence(500_000);

    // The problematic FIB update: R1 reprogramming P after the change.
    let trace = sim.trace().clone();
    let bad = trace
        .events
        .iter()
        .filter(|e| e.router == RouterId(0) && e.time >= t_change)
        .filter(|e| matches!(&e.kind, IoKind::FibInstall { prefix, .. } if *prefix == p))
        .map(|e| e.id)
        .max()
        .expect("R1 reprogrammed P");

    let subs = partition(&trace);
    let (causes, pstats) = distributed_root_causes(&trace, &subs, bad);
    println!(
        "\ndistributed provenance from {}:",
        trace.events[bad.index()]
    );
    println!("  partial-path messages    : {}", pstats.messages);
    println!(
        "  routers involved         : {} of 8",
        pstats.routers_involved
    );
    println!("  root causes:");
    for c in &causes {
        println!("    {c}");
    }
}
