//! The paper's Fig. 3 loop, live: a guarded network detects an
//! ill-considered localpref change on a consistent snapshot, walks the
//! happens-before graph to the root cause, and rolls it back
//! automatically.
//!
//! Run with: `cargo run --example guarded_network`

use cpvr::bgp::{ConfigChange, PeerRef, RouteMap, SetAction};
use cpvr::core::{ControlLoop, GuardAction};
use cpvr::sim::scenario::paper_scenario;
use cpvr::sim::{CaptureProfile, LatencyProfile};
use cpvr::types::{RouterId, SimTime};
use cpvr::verify::Policy;

fn main() {
    // Converge the paper network with both uplink routes present.
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), 7);
    s.sim.start();
    s.sim.run_to_quiescence(100_000);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(50),
        s.ext_r2,
        &[s.prefix],
    );
    s.sim.run_to_quiescence(100_000);
    println!("network converged; policy: exit via R2's uplink while it is up\n");

    // An operator fat-fingers local-pref 10 on R2's uplink (Fig. 2a).
    let change = ConfigChange::SetImport {
        peer: PeerRef::External(s.ext_r2),
        map: RouteMap::set_all(vec![SetAction::LocalPref(10)]),
    };
    println!("operator applies on R2: {change}\n");
    s.sim
        .schedule_config(s.sim.now() + SimTime::from_millis(20), RouterId(1), change);

    // The guard: verify continuously, trace violations to root causes,
    // revert what can be reverted.
    let guard = ControlLoop::new(vec![Policy::PreferredExit {
        prefix: s.prefix,
        primary: s.ext_r2,
        backup: s.ext_r1,
    }]);
    let report = guard.run(&mut s.sim, SimTime::from_secs(2));

    println!("guard timeline:");
    print!("{}", report.render());

    let repaired = report
        .timeline
        .iter()
        .any(|(_, a)| matches!(a, GuardAction::Repaired { .. }));
    println!(
        "\nsummary: {} repair(s), {} wait(s), final state {}",
        report.repairs(),
        report.waits(),
        if report.final_ok {
            "compliant"
        } else {
            "VIOLATING"
        }
    );
    assert!(repaired && report.final_ok, "the demo should end repaired");

    // Show the final forwarding state: back out R2's uplink.
    let dst = "8.8.8.8".parse().unwrap();
    let t = s.sim.dataplane().trace(s.sim.topology(), RouterId(2), dst);
    println!("R3's traffic for {dst} now: {}", t.outcome);
}
