//! Quickstart: simulate the paper's three-router network, converge BGP
//! over OSPF, inspect the data plane, and verify a policy.
//!
//! Run with: `cargo run --example quickstart`

use cpvr::sim::scenario::paper_scenario;
use cpvr::sim::{CaptureProfile, LatencyProfile};
use cpvr::types::{RouterId, SimTime};
use cpvr::verify::{verify, Policy};

fn main() {
    // 1. Build the Fig. 1 network: R1–R3 in one AS, full iBGP mesh, two
    //    uplinks (R1 at local-pref 20, R2 at 30).
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), 42);

    // 2. Boot the IGP and let it converge.
    s.sim.start();
    s.sim.run_to_quiescence(100_000);

    // 3. Both uplinks announce the external prefix P.
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(5), s.ext_r2, &[s.prefix]);
    s.sim.run_to_quiescence(100_000);

    // 4. Where does traffic for 8.8.8.8 go from each router?
    let dst = "8.8.8.8".parse().unwrap();
    println!("forwarding paths for {dst}:");
    for r in 0..3u32 {
        let trace = s.sim.dataplane().trace(s.sim.topology(), RouterId(r), dst);
        let path: Vec<String> = trace.router_path().iter().map(|r| r.to_string()).collect();
        println!(
            "  from R{}: {} => {}",
            r + 1,
            path.join(" -> "),
            trace.outcome
        );
    }

    // 5. Verify the paper's policy: exit via R2's uplink while it is up.
    let policy = Policy::PreferredExit {
        prefix: s.prefix,
        primary: s.ext_r2,
        backup: s.ext_r1,
    };
    let report = verify(s.sim.topology(), s.sim.dataplane(), &[policy]);
    println!(
        "\npolicy check: {} ({} equivalence classes, {} traces)",
        if report.ok() { "COMPLIANT" } else { "VIOLATED" },
        report.ecs_checked,
        report.traces_run
    );
    for v in &report.violations {
        println!("  {v}");
    }

    // 6. Everything that just happened was captured as control-plane I/O.
    println!(
        "\ncaptured {} control-plane I/O events; first five:",
        s.sim.trace().len()
    );
    for e in s.sim.trace().by_time().iter().take(5) {
        println!("  {e}");
    }
}
