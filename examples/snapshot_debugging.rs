//! Why data-plane verifiers need happens-before information (Fig. 1c).
//!
//! The network converges from "exit via R1" to "exit via R2" while the
//! verifier's capture feed is skewed (syslog-style delays). A naive
//! verifier assembles whatever records arrived and reports a forwarding
//! loop that never existed; the HBG-gated verifier notices its view is
//! not causally closed and waits.
//!
//! Run with: `cargo run --example snapshot_debugging`

use cpvr::core::snapshot::{consistency_check, naive_verify_at, verify_when_consistent};
use cpvr::core::SnapshotStatus;
use cpvr::sim::scenario::paper_scenario;
use cpvr::sim::{CaptureProfile, LatencyProfile};
use cpvr::types::SimTime;
use cpvr::verify::Policy;

fn main() {
    // Cisco-scale latencies, syslog-scale capture skew.
    for seed in 0..20u64 {
        let mut s = paper_scenario(LatencyProfile::cisco(), CaptureProfile::syslog(), seed);
        s.sim.start();
        s.sim.run_to_quiescence(200_000);
        s.sim.schedule_ext_announce(
            s.sim.now() + SimTime::from_millis(10),
            s.ext_r1,
            &[s.prefix],
        );
        s.sim.run_to_quiescence(200_000);
        let t_start = s.sim.now();
        s.sim
            .schedule_ext_announce(t_start + SimTime::from_millis(10), s.ext_r2, &[s.prefix]);
        s.sim.run_to_quiescence(200_000);
        let t_end = s.sim.now() + SimTime::from_millis(150);

        let policy = Policy::LoopFree { prefix: s.prefix };
        let mut t = t_start;
        while t <= t_end {
            let naive = naive_verify_at(
                s.sim.trace(),
                s.sim.topology(),
                std::slice::from_ref(&policy),
                t,
            );
            if !naive.ok() {
                println!("seed {seed}, horizon {t}:");
                println!("  naive verifier : {}", naive.violations[0]);
                match consistency_check(s.sim.trace(), t) {
                    SnapshotStatus::WaitFor(rs) => {
                        let names: Vec<String> = rs.iter().map(|r| r.to_string()).collect();
                        println!(
                            "  HBG verifier   : snapshot not causally closed — waiting for {}",
                            names.join(", ")
                        );
                    }
                    SnapshotStatus::Consistent => {
                        println!("  HBG verifier   : (view already consistent)");
                    }
                }
                let (at, rep) = verify_when_consistent(
                    s.sim.trace(),
                    s.sim.topology(),
                    std::slice::from_ref(&policy),
                    t,
                    t_end + SimTime::from_secs(2),
                    SimTime::from_millis(5),
                )
                .expect("consistency is eventually reached");
                println!(
                    "  HBG verifier   : verified at {at} instead: {}",
                    if rep.ok() {
                        "no loop — the alarm was false"
                    } else {
                        "loop confirmed"
                    }
                );
                return;
            }
            t += SimTime::from_millis(5);
        }
    }
    println!("no skew artifact in these seeds — rerun with more seeds");
}
