//! Vendor-specific BGP decision differences (§2): the same inputs,
//! arriving in the same order, select different best paths on Cisco vs
//! standard/Juniper profiles — exactly the implementation detail
//! model-based verifiers tend to miss.
//!
//! Run with: `cargo run --example vendor_quirks`

use cpvr::bgp::{
    BgpConfig, BgpInstance, BgpRoute, BgpUpdate, PeerRef, SessionCfg, StaticIgpView, VendorProfile,
};
use cpvr::topo::ExtPeerId;
use cpvr::types::{AsNum, Ipv4Prefix, RouterId};

fn main() {
    let prefix: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    let igp = StaticIgpView::default();

    println!("two eBGP sessions announce {prefix} with identical attributes;");
    println!("the route from the HIGHER-id originator arrives FIRST.\n");

    for vendor in [
        VendorProfile::Cisco,
        VendorProfile::Juniper,
        VendorProfile::Standard,
    ] {
        let mut cfg = BgpConfig::new(RouterId(2), AsNum(65000));
        cfg.vendor = vendor;
        cfg.sessions
            .push(SessionCfg::new(PeerRef::External(ExtPeerId(0))));
        cfg.sessions
            .push(SessionCfg::new(PeerRef::External(ExtPeerId(1))));
        let mut speaker = BgpInstance::new(cfg);

        // Older route from originator R2 (higher id), then newer from R1.
        let mut older = BgpRoute::external(prefix, ExtPeerId(1), AsNum(100), RouterId(1));
        older.originator = RouterId(1);
        let _ = speaker.recv_update(
            PeerRef::External(ExtPeerId(1)),
            BgpUpdate {
                announce: vec![older],
                withdraw: vec![],
            },
            &igp,
        );
        let mut newer = BgpRoute::external(prefix, ExtPeerId(0), AsNum(100), RouterId(0));
        newer.originator = RouterId(0);
        let _ = speaker.recv_update(
            PeerRef::External(ExtPeerId(0)),
            BgpUpdate {
                announce: vec![newer],
                withdraw: vec![],
            },
            &igp,
        );

        let rib = speaker.loc_rib();
        let best = rib.get(&prefix).expect("a best path exists");
        let why = match vendor {
            VendorProfile::Cisco => "Cisco keeps the OLDEST eBGP route",
            _ => "standard rule: lowest originator router-id wins",
        };
        println!(
            "  {vendor:?}: best path originator = {} ({why})",
            best.originator
        );
    }

    println!("\nweight is Cisco-only: give the worse route weight 100 and only");
    println!("the Cisco profile prefers it over a higher local-preference.\n");
    for vendor in [VendorProfile::Cisco, VendorProfile::Standard] {
        let mut cfg = BgpConfig::new(RouterId(2), AsNum(65000));
        cfg.vendor = vendor;
        cfg.sessions.push(SessionCfg {
            peer: PeerRef::External(ExtPeerId(0)),
            import: cpvr::bgp::RouteMap::set_all(vec![cpvr::bgp::SetAction::LocalPref(10)]),
            export: cpvr::bgp::RouteMap::permit_any(),
            weight: 100,
            ebgp: true,
            rr_client: false,
        });
        cfg.sessions.push(SessionCfg {
            peer: PeerRef::External(ExtPeerId(1)),
            import: cpvr::bgp::RouteMap::set_all(vec![cpvr::bgp::SetAction::LocalPref(200)]),
            export: cpvr::bgp::RouteMap::permit_any(),
            weight: 0,
            ebgp: true,
            rr_client: false,
        });
        let mut speaker = BgpInstance::new(cfg);
        for peer in [0u32, 1] {
            let route =
                BgpRoute::external(prefix, ExtPeerId(peer), AsNum(100 + peer), RouterId(peer));
            let _ = speaker.recv_update(
                PeerRef::External(ExtPeerId(peer)),
                BgpUpdate {
                    announce: vec![route],
                    withdraw: vec![],
                },
                &igp,
            );
        }
        let rib = speaker.loc_rib();
        let best = rib.get(&prefix).unwrap();
        println!(
            "  {vendor:?}: selected LP={} via {:?}",
            best.local_pref, best.next_hop
        );
    }
}
