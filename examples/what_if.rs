//! What-if analysis before a maintenance window (§8 / CrystalNet-style
//! replay): test a planned configuration change against a replayed copy
//! of the network before touching production.
//!
//! Run with: `cargo run --example what_if`

use cpvr::bgp::{ConfigChange, PeerRef, RouteMap, SetAction};
use cpvr::core::whatif::what_if;
use cpvr::sim::scenario::paper_scenario;
use cpvr::sim::{CaptureProfile, LatencyProfile, Simulation};
use cpvr::types::{RouterId, SimTime};
use cpvr::verify::Policy;

/// Rebuilds "production" deterministically: same scenario, same seed.
fn production() -> (
    Simulation,
    cpvr::types::Ipv4Prefix,
    cpvr::topo::ExtPeerId,
    cpvr::topo::ExtPeerId,
) {
    let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), 1234);
    s.sim.start();
    s.sim.run_to_quiescence(100_000);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(5), s.ext_r2, &[s.prefix]);
    s.sim.run_to_quiescence(100_000);
    (s.sim, s.prefix, s.ext_r1, s.ext_r2)
}

fn main() {
    let (_live, prefix, ext_r1, ext_r2) = production();
    let policy = Policy::PreferredExit {
        prefix,
        primary: ext_r2,
        backup: ext_r1,
    };

    // Planned changes for tonight's window:
    let candidates: Vec<(&str, ConfigChange)> = vec![
        (
            "raise LP on R2's uplink to 40",
            ConfigChange::SetImport {
                peer: PeerRef::External(ext_r2),
                map: RouteMap::set_all(vec![SetAction::LocalPref(40)]),
            },
        ),
        (
            "lower LP on R2's uplink to 10",
            ConfigChange::SetImport {
                peer: PeerRef::External(ext_r2),
                map: RouteMap::set_all(vec![SetAction::LocalPref(10)]),
            },
        ),
        (
            "deny-all import on R2's uplink",
            ConfigChange::SetImport {
                peer: PeerRef::External(ext_r2),
                map: RouteMap::deny_any(),
            },
        ),
    ];

    println!("what-if results against a replayed copy of production:\n");
    for (desc, change) in candidates {
        let result = what_if(
            || production().0,
            |sim| {
                sim.schedule_config(
                    sim.now() + SimTime::from_millis(1),
                    RouterId(1),
                    change.clone(),
                )
            },
            std::slice::from_ref(&policy),
            200_000,
        );
        println!(
            "  {desc:<38} -> {}",
            if result.report.ok() {
                "SAFE (policy holds after convergence)".to_string()
            } else {
                format!("WOULD VIOLATE: {}", result.report.violations[0])
            }
        );
    }
}
