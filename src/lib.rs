//! Umbrella crate for the CPVR workspace.
//!
//! Re-exports every sub-crate under one namespace so examples and
//! integration tests can use a single dependency.

pub use cpvr_bgp as bgp;
pub use cpvr_collector as collector;
pub use cpvr_core as core;
pub use cpvr_dataplane as dataplane;
pub use cpvr_federation as federation;
pub use cpvr_igp as igp;
pub use cpvr_sim as sim;
pub use cpvr_topo as topo;
pub use cpvr_types as types;
pub use cpvr_verify as verify;
