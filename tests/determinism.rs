//! §8: repair correctness depends on deterministic (memoryless)
//! control-plane execution. These tests demonstrate both sides:
//!
//! * Cisco's oldest-route tie-break makes BGP outcomes depend on arrival
//!   history, so a revert does NOT necessarily restore the pre-fault
//!   state;
//! * the standard (router-id) tie-break — and the soft-reconfiguration
//!   path, which preserves Adj-RIB-In — are memoryless, so rollback
//!   restores exactly the previous state.

use cpvr::bgp::{
    BgpConfig, BgpInstance, BgpRoute, BgpUpdate, ConfigChange, PeerRef, RouteMap, SessionCfg,
    SetAction, StaticIgpView, VendorProfile,
};
use cpvr::sim::scenario::paper_scenario;
use cpvr::sim::{CaptureProfile, LatencyProfile};
use cpvr::topo::ExtPeerId;
use cpvr::types::{AsNum, Ipv4Prefix, RouterId, SimTime};

fn speaker(vendor: VendorProfile) -> BgpInstance {
    let mut cfg = BgpConfig::new(RouterId(9), AsNum(65000));
    cfg.vendor = vendor;
    cfg.sessions
        .push(SessionCfg::new(PeerRef::External(ExtPeerId(0))));
    cfg.sessions
        .push(SessionCfg::new(PeerRef::External(ExtPeerId(1))));
    BgpInstance::new(cfg)
}

fn announce(inst: &mut BgpInstance, peer: u32, originator: u32, prefix: Ipv4Prefix) {
    let igp = StaticIgpView::default();
    let mut r = BgpRoute::external(prefix, ExtPeerId(peer), AsNum(100), RouterId(originator));
    r.originator = RouterId(originator);
    let _ = inst.recv_update(
        PeerRef::External(ExtPeerId(peer)),
        BgpUpdate {
            announce: vec![r],
            withdraw: vec![],
        },
        &igp,
    );
}

#[test]
fn cisco_oldest_route_is_history_dependent() {
    let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    let igp = StaticIgpView::default();
    let mut inst = speaker(VendorProfile::Cisco);
    // Peer 1's route (originator R2) arrives first: it is oldest → best.
    announce(&mut inst, 1, 1, p);
    announce(&mut inst, 0, 0, p);
    assert_eq!(inst.loc_rib()[&p].originator, RouterId(1));
    // Session to peer 1 flaps: the route is lost and re-learned. Same
    // final set of routes — but now peer 0's route is the older one.
    let _ = inst.peer_down(PeerRef::External(ExtPeerId(1)), &igp);
    announce(&mut inst, 1, 1, p);
    assert_eq!(
        inst.loc_rib()[&p].originator,
        RouterId(0),
        "identical route set, different history, different selection"
    );
}

#[test]
fn standard_tiebreak_is_memoryless() {
    let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    let igp = StaticIgpView::default();
    let mut inst = speaker(VendorProfile::Standard);
    announce(&mut inst, 1, 1, p);
    announce(&mut inst, 0, 0, p);
    assert_eq!(inst.loc_rib()[&p].originator, RouterId(0));
    let _ = inst.peer_down(PeerRef::External(ExtPeerId(1)), &igp);
    announce(&mut inst, 1, 1, p);
    assert_eq!(
        inst.loc_rib()[&p].originator,
        RouterId(0),
        "same inputs → same outcome, regardless of arrival order"
    );
}

#[test]
fn soft_reconfig_rollback_restores_exact_state() {
    // Because Adj-RIB-In stores raw routes, a config change + revert via
    // soft reconfiguration is exactly memoryless even on Cisco: no route
    // is relearned, so arrival order (and thus the oldest-route rule's
    // verdict) is preserved.
    let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    let igp = StaticIgpView::default();
    let mut inst = speaker(VendorProfile::Cisco);
    announce(&mut inst, 1, 1, p);
    announce(&mut inst, 0, 0, p);
    let before = inst.loc_rib()[&p].clone();
    // Break it: deny peer 1's route.
    let change = ConfigChange::SetImport {
        peer: PeerRef::External(ExtPeerId(1)),
        map: RouteMap::deny_any(),
    };
    let inverse = change.inverse(inst.config()).unwrap();
    let _ = inst.apply_config(&change, &igp);
    assert_eq!(inst.loc_rib()[&p].originator, RouterId(0));
    // Revert: the previously selected (older) route returns to being best.
    let _ = inst.apply_config(&inverse, &igp);
    assert_eq!(inst.loc_rib()[&p], &before);
    assert_eq!(inst.loc_rib()[&p].originator, RouterId(1));
}

#[test]
fn full_simulation_rollback_restores_dataplane() {
    // Network-level version: Fig. 2 change + inverse restores the exact
    // FIB contents everywhere.
    let run = |with_fault_and_revert: bool| {
        let mut s = paper_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), 88);
        s.sim.start();
        s.sim.run_to_quiescence(400_000);
        s.sim
            .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
        s.sim.schedule_ext_announce(
            s.sim.now() + SimTime::from_millis(50),
            s.ext_r2,
            &[s.prefix],
        );
        s.sim.run_to_quiescence(400_000);
        if with_fault_and_revert {
            let change = ConfigChange::SetImport {
                peer: PeerRef::External(s.ext_r2),
                map: RouteMap::set_all(vec![SetAction::LocalPref(10)]),
            };
            s.sim
                .schedule_config(s.sim.now() + SimTime::from_millis(10), RouterId(1), change);
            s.sim.run_to_quiescence(400_000);
            let revert = ConfigChange::SetImport {
                peer: PeerRef::External(s.ext_r2),
                map: RouteMap::set_all(vec![SetAction::LocalPref(30)]),
            };
            s.sim
                .schedule_config(s.sim.now() + SimTime::from_millis(10), RouterId(1), revert);
            s.sim.run_to_quiescence(400_000);
        }
        // Extract FIB action maps.
        (0..3u32)
            .map(|r| {
                s.sim
                    .dataplane()
                    .fib(RouterId(r))
                    .entries()
                    .into_iter()
                    .map(|(p, e)| (p, e.action))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    let clean = run(false);
    let reverted = run(true);
    assert_eq!(
        clean, reverted,
        "fault + rollback must restore the exact data plane"
    );
}
