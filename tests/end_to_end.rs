//! Workspace-level end-to-end tests: the full paper pipeline across all
//! three IGP underlays and both capture regimes.

use cpvr::bgp::{ConfigChange, PeerRef, RouteMap, SetAction};
use cpvr::core::{ControlLoop, GuardAction};
use cpvr::dataplane::TraceOutcome;
use cpvr::sim::scenario::{paper_scenario_with_igp, PaperScenario};
use cpvr::sim::{CaptureProfile, IgpKind, IoKind, LatencyProfile, Proto};
use cpvr::types::{RouterId, SimTime};
use cpvr::verify::{verify, Policy};

const MAX_EVENTS: usize = 400_000;

fn converged(igp: IgpKind, seed: u64) -> PaperScenario {
    let mut s = paper_scenario_with_igp(LatencyProfile::fast(), CaptureProfile::ideal(), seed, igp);
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(50),
        s.ext_r2,
        &[s.prefix],
    );
    s.sim.run_to_quiescence(MAX_EVENTS);
    s
}

#[test]
fn paper_pipeline_works_over_every_igp() {
    for igp in [IgpKind::Ospf, IgpKind::Rip, IgpKind::Eigrp] {
        let mut s = converged(igp, 61);
        // Converged state satisfies the policy over each underlay.
        let policy = Policy::PreferredExit {
            prefix: s.prefix,
            primary: s.ext_r2,
            backup: s.ext_r1,
        };
        let pre = verify(
            s.sim.topology(),
            s.sim.dataplane(),
            std::slice::from_ref(&policy),
        );
        assert!(pre.ok(), "{igp:?} pre-change: {:?}", pre.violations);
        // Inject Fig. 2's bad change; the guard must repair it.
        let change = ConfigChange::SetImport {
            peer: PeerRef::External(s.ext_r2),
            map: RouteMap::set_all(vec![SetAction::LocalPref(10)]),
        };
        s.sim
            .schedule_config(s.sim.now() + SimTime::from_millis(20), RouterId(1), change);
        let guard = ControlLoop::new(vec![policy]);
        let report = guard.run(&mut s.sim, SimTime::from_secs(2));
        assert!(report.repairs() >= 1, "{igp:?}:\n{}", report.render());
        assert!(report.final_ok, "{igp:?}:\n{}", report.render());
    }
}

#[test]
fn eigrp_underlay_emits_fib_before_send() {
    // §4.1's protocol-specific rule, observed in a real trace: every
    // EIGRP per-prefix advertisement follows that prefix's FIB event on
    // the same router.
    let s = converged(IgpKind::Eigrp, 62);
    let trace = s.sim.trace();
    let mut checked = 0;
    for e in &trace.events {
        if let IoKind::SendAdvert {
            proto: Proto::Eigrp,
            prefix: Some(p),
            ..
        } = &e.kind
        {
            // Find the latest FIB event for p on e.router before e.
            let fib_before = trace.events.iter().any(|f| {
                f.router == e.router
                    && f.time <= e.time
                    && matches!(&f.kind,
                        IoKind::FibInstall { prefix, .. } | IoKind::FibRemove { prefix } if prefix == p)
            });
            if fib_before {
                checked += 1;
            }
        }
    }
    assert!(
        checked > 0,
        "no EIGRP advert followed a FIB event — rule not exercised"
    );
}

#[test]
fn rip_underlay_converges_internal_reachability() {
    let s = converged(IgpKind::Rip, 63);
    for r in 0..3u32 {
        for other in 0..3u32 {
            if r == other {
                continue;
            }
            let lb = s.sim.topology().router(RouterId(other)).loopback;
            let t = s.sim.dataplane().trace(s.sim.topology(), RouterId(r), lb);
            assert_eq!(
                t.outcome,
                TraceOutcome::DeliveredLocal(RouterId(other)),
                "RIP underlay: R{}→R{}",
                r + 1,
                other + 1
            );
        }
    }
}

#[test]
fn skewed_capture_still_ends_repaired() {
    // The full pipeline under realistic latencies AND skewed capture: the
    // guard may wait, but must still converge to detection and repair.
    let mut s = paper_scenario_with_igp(
        LatencyProfile::fast(),
        CaptureProfile::syslog(),
        64,
        IgpKind::Ospf,
    );
    s.sim.start();
    s.sim.run_to_quiescence(MAX_EVENTS);
    s.sim
        .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
    s.sim.schedule_ext_announce(
        s.sim.now() + SimTime::from_millis(50),
        s.ext_r2,
        &[s.prefix],
    );
    s.sim.run_to_quiescence(MAX_EVENTS);
    let change = ConfigChange::SetImport {
        peer: PeerRef::External(s.ext_r2),
        map: RouteMap::set_all(vec![SetAction::LocalPref(10)]),
    };
    s.sim
        .schedule_config(s.sim.now() + SimTime::from_millis(20), RouterId(1), change);
    let guard = ControlLoop::new(vec![Policy::PreferredExit {
        prefix: s.prefix,
        primary: s.ext_r2,
        backup: s.ext_r1,
    }]);
    let report = guard.run(&mut s.sim, SimTime::from_secs(5));
    assert!(report.final_ok, "{}", report.render());
    assert!(report.repairs() >= 1, "{}", report.render());
}

#[test]
fn guard_reports_waits_under_skew() {
    // Under skewed capture the guard must sometimes defer — and never
    // fire a repair while its view is inconsistent.
    let mut any_wait = false;
    for seed in 0..6u64 {
        let mut s = paper_scenario_with_igp(
            LatencyProfile::cisco(),
            CaptureProfile::syslog(),
            seed,
            IgpKind::Ospf,
        );
        s.sim.start();
        s.sim.run_to_quiescence(MAX_EVENTS);
        s.sim
            .schedule_ext_announce(s.sim.now() + SimTime::from_millis(1), s.ext_r1, &[s.prefix]);
        s.sim.schedule_ext_announce(
            s.sim.now() + SimTime::from_millis(100),
            s.ext_r2,
            &[s.prefix],
        );
        let guard = ControlLoop {
            policies: vec![Policy::LoopFree { prefix: s.prefix }],
            min_confidence: 0.8,
            interval: SimTime::from_millis(10),
        };
        let report = guard.run(&mut s.sim, SimTime::from_secs(1));
        assert_eq!(
            report.repairs(),
            0,
            "seed {seed}: no repair is ever warranted here"
        );
        assert!(report.final_ok);
        if report.waits() > 0 {
            any_wait = true;
        }
        let premature = report
            .timeline
            .iter()
            .any(|(_, a)| matches!(a, GuardAction::Detected { .. }));
        assert!(
            !premature,
            "seed {seed}: detected a phantom violation:\n{}",
            report.render()
        );
    }
    assert!(
        any_wait,
        "skewed capture should cause at least one wait across seeds"
    );
}
