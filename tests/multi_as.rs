//! Inter-domain (multi-AS) tests: eBGP between in-domain routers, AS-path
//! accumulation, loop prevention across the boundary, and the guarded
//! repair loop working across ASes.

use cpvr::bgp::{ConfigChange, PeerRef, RouteMap};
use cpvr::core::ControlLoop;
use cpvr::dataplane::TraceOutcome;
use cpvr::sim::scenario::two_as_scenario;
use cpvr::sim::{CaptureProfile, LatencyProfile, Simulation};
use cpvr::topo::ExtPeerId;
use cpvr::types::{AsNum, Ipv4Prefix, RouterId, SimTime};
use cpvr::verify::Policy;

const MAX_EVENTS: usize = 400_000;
const DST: &str = "8.8.8.8";

fn converged(seed: u64) -> (Simulation, ExtPeerId, Ipv4Prefix) {
    let (mut sim, provider) =
        two_as_scenario(LatencyProfile::fast(), CaptureProfile::ideal(), seed);
    let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    sim.start();
    sim.run_to_quiescence(MAX_EVENTS);
    sim.schedule_ext_announce(sim.now() + SimTime::from_millis(1), provider, &[p]);
    sim.run_to_quiescence(MAX_EVENTS);
    (sim, provider, p)
}

#[test]
fn route_propagates_across_the_as_boundary() {
    let (sim, provider, p) = converged(101);
    // Every router (including AS 65000's R1, two AS hops away) delivers
    // traffic out the provider at R4.
    for r in 0..4u32 {
        let t = sim
            .dataplane()
            .trace(sim.topology(), RouterId(r), DST.parse().unwrap());
        assert_eq!(
            t.outcome,
            TraceOutcome::Exited(provider),
            "R{}: {:?}",
            r + 1,
            t.router_path()
        );
    }
    // R1's path walks the whole line.
    let t = sim
        .dataplane()
        .trace(sim.topology(), RouterId(0), DST.parse().unwrap());
    assert_eq!(
        t.router_path(),
        vec![RouterId(0), RouterId(1), RouterId(2), RouterId(3)]
    );
    let _ = p;
}

#[test]
fn as_path_accumulates_per_hop() {
    let (sim, _provider, p) = converged(102);
    // R4 learned from the provider: path = [200].
    let rib4 = sim.router(RouterId(3)).bgp.loc_rib();
    assert_eq!(rib4[&p].as_path, vec![AsNum(200)]);
    // R3 over iBGP: path unchanged.
    let rib3 = sim.router(RouterId(2)).bgp.loc_rib();
    assert_eq!(rib3[&p].as_path, vec![AsNum(200)]);
    // R2 over eBGP from AS 65001: path = [65001, 200].
    let rib2 = sim.router(RouterId(1)).bgp.loc_rib();
    assert_eq!(rib2[&p].as_path, vec![AsNum(65001), AsNum(200)]);
    // R1 over iBGP: same as R2's.
    let rib1 = sim.router(RouterId(0)).bgp.loc_rib();
    assert_eq!(rib1[&p].as_path, vec![AsNum(65001), AsNum(200)]);
}

#[test]
fn next_hop_self_applies_at_each_border() {
    let (sim, _provider, p) = converged(103);
    use cpvr::bgp::NextHop;
    // R1's next hop is its own border router R2 (not R3 or R4).
    let rib1 = sim.router(RouterId(0)).bgp.loc_rib();
    assert_eq!(rib1[&p].next_hop, NextHop::Router(RouterId(1)));
    // R2's next hop is the eBGP neighbor R3.
    let rib2 = sim.router(RouterId(1)).bgp.loc_rib();
    assert_eq!(rib2[&p].next_hop, NextHop::Router(RouterId(2)));
}

#[test]
fn withdrawal_crosses_the_boundary() {
    let (mut sim, provider, p) = converged(104);
    sim.schedule_ext_withdraw(sim.now() + SimTime::from_millis(5), provider, &[p]);
    sim.run_to_quiescence(MAX_EVENTS);
    for r in 0..4u32 {
        assert!(
            sim.router(RouterId(r)).bgp.loc_rib().is_empty(),
            "R{} must lose the route",
            r + 1
        );
        let t = sim
            .dataplane()
            .trace(sim.topology(), RouterId(r), DST.parse().unwrap());
        assert!(matches!(t.outcome, TraceOutcome::Blackhole(_)));
    }
}

#[test]
fn guard_repairs_across_as_boundaries() {
    // A deny-all import filter on R2's eBGP session cuts AS 65000 off;
    // the guard's provenance crosses the boundary and reverts it.
    let (mut sim, _provider, p) = converged(105);
    let change = ConfigChange::SetImport {
        peer: PeerRef::Internal(RouterId(2)),
        map: RouteMap::deny_any(),
    };
    sim.schedule_config(sim.now() + SimTime::from_millis(20), RouterId(1), change);
    let guard = ControlLoop::new(vec![Policy::Reachable { prefix: p }]);
    let report = guard.run(&mut sim, SimTime::from_secs(2));
    assert!(report.repairs() >= 1, "{}", report.render());
    assert!(report.final_ok, "{}", report.render());
}

#[test]
fn ebgp_loop_prevention_across_boundary() {
    // After convergence, R3 must not have accepted any route whose path
    // contains its own AS (65001) from R2 — i.e. its own prefix never
    // came back.
    let (sim, _provider, p) = converged(106);
    let rib3 = sim.router(RouterId(2)).bgp.loc_rib();
    assert_eq!(
        rib3[&p].as_path,
        vec![AsNum(200)],
        "R3 must keep the direct path, never a boomeranged one"
    );
}
