//! Route reflection (RFC 4456, single level): hub-and-spoke iBGP with no
//! full mesh. The spokes peer only with the reflector; routes still reach
//! everyone, next hops stay on the border router, and the guarded repair
//! loop keeps working.

use cpvr::bgp::{BgpConfig, ConfigChange, NextHop, PeerRef, RouteMap, SessionCfg};
use cpvr::core::ControlLoop;
use cpvr::dataplane::TraceOutcome;
use cpvr::sim::{CaptureProfile, IgpKind, LatencyProfile, RouterConfig, Simulation};
use cpvr::topo::{ExtPeerId, TopologyBuilder};
use cpvr::types::{AsNum, Ipv4Prefix, RouterId, SimTime};
use cpvr::verify::Policy;

const MAX_EVENTS: usize = 400_000;

/// Star topology: R1 is the hub/reflector; R2–R4 are spokes with iBGP
/// sessions only to R1. External provider at R2.
fn star(with_reflection: bool, seed: u64) -> (Simulation, ExtPeerId) {
    let asn = AsNum(65000);
    let mut b = TopologyBuilder::new(asn);
    let hub = b.router("R1");
    let spokes: Vec<RouterId> = (2..=4).map(|i| b.router(&format!("R{i}"))).collect();
    for s in &spokes {
        b.link(hub, *s, 10);
    }
    let provider = b.external_peer("Provider", AsNum(200), spokes[0]);
    let topo = b.build();

    let mut hub_cfg = BgpConfig::new(hub, asn);
    for s in &spokes {
        hub_cfg.sessions.push(if with_reflection {
            SessionCfg::ibgp_client(*s)
        } else {
            SessionCfg::new(PeerRef::Internal(*s))
        });
    }
    let mut configs = vec![RouterConfig {
        bgp: hub_cfg,
        igp: IgpKind::Ospf,
    }];
    for s in &spokes {
        let mut cfg = BgpConfig::new(*s, asn);
        cfg.sessions.push(SessionCfg::new(PeerRef::Internal(hub)));
        if *s == spokes[0] {
            cfg.sessions
                .push(SessionCfg::new(PeerRef::External(provider)));
        }
        configs.push(RouterConfig {
            bgp: cfg,
            igp: IgpKind::Ospf,
        });
    }
    (
        Simulation::new(
            topo,
            configs,
            LatencyProfile::fast(),
            CaptureProfile::ideal(),
            seed,
        ),
        provider,
    )
}

fn converge(sim: &mut Simulation, provider: ExtPeerId, p: Ipv4Prefix) {
    sim.start();
    sim.run_to_quiescence(MAX_EVENTS);
    sim.schedule_ext_announce(sim.now() + SimTime::from_millis(1), provider, &[p]);
    sim.run_to_quiescence(MAX_EVENTS);
}

#[test]
fn without_reflection_spokes_stay_blind() {
    // Negative control: plain iBGP over a star (no mesh, no reflection)
    // leaves the far spokes without the route — the well-known reason
    // full mesh or RR is mandatory.
    let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    let (mut sim, provider) = star(false, 201);
    converge(&mut sim, provider, p);
    // The hub learns it (R2 advertises its eBGP route to the hub)...
    assert!(sim.router(RouterId(0)).bgp.loc_rib().contains_key(&p));
    // ...but the other spokes never do.
    for r in [2u32, 3] {
        assert!(
            !sim.router(RouterId(r)).bgp.loc_rib().contains_key(&p),
            "R{} must be blind without reflection",
            r + 1
        );
    }
}

#[test]
fn reflection_distributes_routes_with_correct_next_hop() {
    let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    let (mut sim, provider) = star(true, 202);
    converge(&mut sim, provider, p);
    // All spokes (and the hub) now hold the route; the next hop is the
    // border spoke R2, NOT the reflector.
    for r in 0..4u32 {
        let rib = sim.router(RouterId(r)).bgp.loc_rib();
        let route = rib
            .get(&p)
            .unwrap_or_else(|| panic!("R{} missing route", r + 1));
        if r == 1 {
            assert_eq!(route.next_hop, NextHop::External(provider));
        } else {
            assert_eq!(
                route.next_hop,
                NextHop::Router(RouterId(1)),
                "R{}: reflection must preserve the border next hop",
                r + 1
            );
        }
    }
    // And traffic actually flows: spoke R4 → hub → R2 → provider.
    let t = sim
        .dataplane()
        .trace(sim.topology(), RouterId(3), "8.8.8.8".parse().unwrap());
    assert_eq!(t.outcome, TraceOutcome::Exited(provider));
    assert_eq!(t.router_path(), vec![RouterId(3), RouterId(0), RouterId(1)]);
}

#[test]
fn reflection_withdraw_propagates() {
    let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    let (mut sim, provider) = star(true, 203);
    converge(&mut sim, provider, p);
    sim.schedule_ext_withdraw(sim.now() + SimTime::from_millis(5), provider, &[p]);
    sim.run_to_quiescence(MAX_EVENTS);
    for r in 0..4u32 {
        assert!(
            sim.router(RouterId(r)).bgp.loc_rib().is_empty(),
            "R{} kept a withdrawn route",
            r + 1
        );
    }
}

#[test]
fn guard_works_over_a_reflected_fabric() {
    // The paper's machinery must not depend on full mesh: break the
    // fabric with a deny-all import on the hub's client session to R2 and
    // let the guard roll it back.
    let p: Ipv4Prefix = "8.8.8.0/24".parse().unwrap();
    let (mut sim, provider) = star(true, 204);
    converge(&mut sim, provider, p);
    let change = ConfigChange::SetImport {
        peer: PeerRef::Internal(RouterId(1)),
        map: RouteMap::deny_any(),
    };
    sim.schedule_config(sim.now() + SimTime::from_millis(20), RouterId(0), change);
    let guard = ControlLoop::new(vec![Policy::Reachable { prefix: p }]);
    let report = guard.run(&mut sim, SimTime::from_secs(2));
    assert!(report.repairs() >= 1, "{}", report.render());
    assert!(report.final_ok, "{}", report.render());
}
