//! Stress tests: larger random topologies, many prefixes, churn — the
//! whole stack at once, with invariants that must hold regardless of
//! scale.

use cpvr::bgp::{BgpConfig, PeerRef, SessionCfg};
use cpvr::core::infer::{evaluate, infer_hbg, InferConfig};
use cpvr::core::snapshot::consistency_check;
use cpvr::dataplane::TraceOutcome;
use cpvr::sim::workload::{churn_plan, prefix_block, random_topology};
use cpvr::sim::{CaptureProfile, IgpKind, LatencyProfile, RouterConfig, Simulation};
use cpvr::types::{AsNum, RouterId, SimTime};
use cpvr::verify::{equivalence_classes, verify, Policy};

const MAX_EVENTS: usize = 2_000_000;

/// Builds a random-topology simulation with full iBGP mesh and the given
/// uplink count.
fn build(
    n: usize,
    extra: usize,
    uplinks: usize,
    seed: u64,
) -> (Simulation, Vec<cpvr::topo::ExtPeerId>) {
    let (topo, peers) = random_topology(n, extra, uplinks, seed);
    let asn = AsNum(65000);
    let mut configs = Vec::new();
    for r in 0..n as u32 {
        let mut bgp = BgpConfig::new(RouterId(r), asn);
        for other in 0..n as u32 {
            if other != r {
                bgp.sessions
                    .push(SessionCfg::new(PeerRef::Internal(RouterId(other))));
            }
        }
        configs.push(RouterConfig {
            bgp,
            igp: IgpKind::Ospf,
        });
    }
    for peer in &peers {
        let attach = topo.ext_peer(*peer).attach.0;
        configs[attach.index()]
            .bgp
            .sessions
            .push(SessionCfg::new(PeerRef::External(*peer)));
    }
    // The jittered (Cisco-calibrated) profile: realistic timestamp
    // spread. The zero-jitter `fast` profile makes large batches of
    // events share timestamps, which honestly degrades inference
    // precision (timestamps only *filter*, §4.2) but is not how router
    // logs look.
    (
        Simulation::new(
            topo,
            configs,
            LatencyProfile::cisco(),
            CaptureProfile::ideal(),
            seed,
        ),
        peers,
    )
}

#[test]
fn twenty_routers_converge_and_verify() {
    let (mut sim, peers) = build(20, 12, 3, 7);
    sim.start();
    sim.run_to_quiescence(MAX_EVENTS);
    let prefixes = prefix_block(30);
    for (i, chunk) in prefixes.chunks(10).enumerate() {
        sim.schedule_ext_announce(
            sim.now() + SimTime::from_millis(i as u64 + 1),
            peers[i % peers.len()],
            chunk,
        );
    }
    sim.run_to_quiescence(MAX_EVENTS);
    // Every prefix reachable from every router.
    let policies: Vec<Policy> = prefixes
        .iter()
        .map(|p| Policy::Reachable { prefix: *p })
        .collect();
    let report = verify(sim.topology(), sim.dataplane(), &policies);
    assert!(
        report.ok(),
        "violations: {:?}",
        &report.violations[..report.violations.len().min(3)]
    );
    // Loop-free everywhere, too.
    let loops: Vec<Policy> = prefixes
        .iter()
        .map(|p| Policy::LoopFree { prefix: *p })
        .collect();
    assert!(verify(sim.topology(), sim.dataplane(), &loops).ok());
    // The trace is large but the snapshot is consistent at quiescence,
    // and the rule-inferred HBG stays useful. Note the measured
    // degradation vs the 3-router case (~0.87/1.00): in a 20-router
    // full mesh, concurrent updates for the same prefix interleave
    // *between* a recv and the RIB change it causes, so the
    // nearest-predecessor heuristic sometimes picks a sibling — exactly
    // the inference imprecision the paper warns about (§4.2) and the
    // reason it attaches confidences and thresholds to HBRs.
    assert!(consistency_check(sim.trace(), sim.now()).is_consistent());
    let g = infer_hbg(
        sim.trace(),
        &InferConfig {
            rules: true,
            patterns: None,
            min_confidence: 0.0,
            proximate: false,
        },
    );
    let st = evaluate(&g, sim.trace(), 0.5);
    assert!(
        st.recall > 0.6,
        "recall {:.3} on {} events",
        st.recall,
        sim.trace().len()
    );
    assert!(
        st.precision > 0.55,
        "precision {:.3} on {} events",
        st.precision,
        sim.trace().len()
    );
}

#[test]
fn churn_storm_ends_consistent() {
    let (mut sim, peers) = build(10, 6, 2, 9);
    sim.start();
    sim.run_to_quiescence(MAX_EVENTS);
    let prefixes = prefix_block(12);
    let plan = churn_plan(60, peers.len(), prefixes.len(), 13);
    let base = sim.now();
    for (t_ms, peer_idx, prefix_idx, announce) in plan {
        let at = base + SimTime::from_millis(t_ms);
        if announce {
            sim.schedule_ext_announce(at, peers[peer_idx], &[prefixes[prefix_idx]]);
        } else {
            sim.schedule_ext_withdraw(at, peers[peer_idx], &[prefixes[prefix_idx]]);
        }
    }
    sim.run_to_quiescence(MAX_EVENTS);
    // After the storm: no loops anywhere, all installed prefixes deliver.
    for p in &prefixes {
        let rep = verify(
            sim.topology(),
            sim.dataplane(),
            &[Policy::LoopFree { prefix: *p }],
        );
        assert!(rep.ok(), "loop after churn on {p}");
    }
    for p in sim.dataplane().all_prefixes() {
        for r in 0..10u32 {
            let t = sim
                .dataplane()
                .trace(sim.topology(), RouterId(r), p.first_addr());
            assert!(
                !matches!(t.outcome, TraceOutcome::Loop(_)),
                "loop from R{} to {p}",
                r + 1
            );
        }
    }
    assert!(consistency_check(sim.trace(), sim.now()).is_consistent());
}

#[test]
fn link_failures_never_leave_loops() {
    let (mut sim, peers) = build(12, 8, 2, 21);
    sim.start();
    sim.run_to_quiescence(MAX_EVENTS);
    let prefixes = prefix_block(6);
    sim.schedule_ext_announce(
        sim.now() + SimTime::from_millis(1),
        peers[0],
        &prefixes[..3],
    );
    sim.schedule_ext_announce(
        sim.now() + SimTime::from_millis(2),
        peers[1],
        &prefixes[3..],
    );
    sim.run_to_quiescence(MAX_EVENTS);
    // Fail three random-ish links (deterministically chosen), one by one,
    // re-converging each time.
    let n_links = sim.topology().num_links();
    for k in 0..3usize {
        let link = cpvr::topo::LinkId(((k * 7 + 3) % n_links) as u32);
        sim.schedule_link_change(sim.now() + SimTime::from_millis(5), link, false);
        sim.run_to_quiescence(MAX_EVENTS);
        for p in sim.dataplane().all_prefixes() {
            for r in 0..12u32 {
                let t = sim
                    .dataplane()
                    .trace(sim.topology(), RouterId(r), p.first_addr());
                assert!(
                    !matches!(t.outcome, TraceOutcome::Loop(_)),
                    "loop after failing {link}: R{} to {p}",
                    r + 1
                );
            }
        }
    }
}

#[test]
fn ec_count_scales_with_prefixes_not_events() {
    let (mut sim, peers) = build(8, 4, 2, 33);
    sim.start();
    sim.run_to_quiescence(MAX_EVENTS);
    let prefixes = prefix_block(100);
    sim.schedule_ext_announce(sim.now() + SimTime::from_millis(1), peers[0], &prefixes);
    sim.run_to_quiescence(MAX_EVENTS);
    let ecs = equivalence_classes(sim.dataplane());
    // Forwarding ECs ≈ announced prefixes + internal prefixes; certainly
    // bounded by total distinct prefixes.
    let total = sim.dataplane().all_prefixes().len();
    assert_eq!(ecs.len(), total, "disjoint prefixes: one EC each");
}
